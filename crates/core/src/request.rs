//! `SpecRequest` — the specialization request API.
//!
//! The original `brew_*`-shaped interface split a request across two
//! values: a [`RewriteConfig`] holding *parameter specs* by index and a
//! positional `&[ArgValue]` slice holding the *trace values*. Nothing tied
//! the two together, so a spec and its value could silently drift apart
//! (wrong index, wrong count, wrong slot class). A [`SpecRequest`] binds
//! treatment and value per parameter at the same call site:
//!
//! ```
//! use brew_core::{RetKind, Rewriter, SpecRequest};
//! # let mut img = brew_image::Image::new();
//! # let prog = brew_minic::compile_into(
//! #     "int madd(int a, int b, int c) { return a * b + c; }", &mut img).unwrap();
//! # let f = prog.func("madd").unwrap();
//! let req = SpecRequest::new()
//!     .unknown_int()   // a: varies at runtime
//!     .known_int(7)    // b: baked in
//!     .unknown_int()   // c: varies at runtime
//!     .ret(RetKind::Int);
//! let spec = Rewriter::new(&mut img).rewrite(f, &req).unwrap();
//! # assert!(spec.code_len > 0);
//! ```
//!
//! The request also carries everything else a rewrite needs — known-memory
//! ranges, per-function options, budgets, hooks and the optimization-pass
//! selection — so one value fully describes one specialization, and the
//! [`fingerprint`](SpecRequest::fingerprint) over that value is the
//! variant-cache key used by [`crate::manager::SpecializationManager`].

use crate::config::{ArgValue, FuncOpts, ParamSpec, RetKind, RewriteConfig};
use crate::error::RewriteError;
use crate::passes::PassConfig;
use std::ops::Range;

/// A complete, self-contained specialization request: per-parameter
/// treatment *and* trace value, plus the rewrite configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRequest {
    pub(crate) cfg: RewriteConfig,
    pub(crate) args: Vec<ArgValue>,
    pub(crate) passes: PassConfig,
}

impl Default for SpecRequest {
    fn default() -> Self {
        Self::new()
    }
}

impl SpecRequest {
    /// Fresh request: no parameters bound yet, integer return, default
    /// options, budgets and passes.
    pub fn new() -> Self {
        SpecRequest {
            cfg: RewriteConfig::new(),
            args: Vec::new(),
            passes: PassConfig::default(),
        }
    }

    /// Adopt an existing `(config, args)` pair from the deprecated split
    /// API. Fails with [`RewriteError::BadConfig`] when specs and values
    /// don't line up one-to-one — the drift the builder makes
    /// unrepresentable.
    pub fn from_config(
        cfg: &RewriteConfig,
        args: &[ArgValue],
        passes: &PassConfig,
    ) -> Result<Self, RewriteError> {
        if cfg.params.len() > args.len() {
            return Err(RewriteError::BadConfig(format!(
                "parameter {} has a spec but no trace value ({} specs, {} arguments)",
                args.len(),
                cfg.params.len(),
                args.len()
            )));
        }
        if args.len() > cfg.params.len() {
            return Err(RewriteError::BadConfig(format!(
                "argument {} has no parameter spec ({} arguments, {} specs); \
                 bind every parameter explicitly (SpecRequest::unknown_int for \
                 runtime-varying ones)",
                cfg.params.len(),
                args.len(),
                cfg.params.len()
            )));
        }
        Ok(SpecRequest {
            cfg: cfg.clone(),
            args: args.to_vec(),
            passes: *passes,
        })
    }

    fn push(mut self, spec: ParamSpec, arg: ArgValue) -> Self {
        let idx = self.args.len();
        self.cfg.set_param(idx, spec);
        self.args.push(arg);
        self
    }

    /// Next parameter: integer/pointer whose value varies at runtime.
    pub fn unknown_int(self) -> Self {
        self.push(ParamSpec::Unknown, ArgValue::Int(0))
    }

    /// Next parameter: integer/pointer fixed to `v` for all future calls
    /// (`BREW_KNOWN`).
    pub fn known_int(self, v: i64) -> Self {
        self.push(ParamSpec::Known, ArgValue::Int(v))
    }

    /// Next parameter: double whose value varies at runtime.
    pub fn unknown_f64(self) -> Self {
        self.push(ParamSpec::Unknown, ArgValue::F64(0.0))
    }

    /// Next parameter: double fixed to `v` for all future calls.
    pub fn known_f64(self, v: f64) -> Self {
        self.push(ParamSpec::Known, ArgValue::F64(v))
    }

    /// Next parameter: pointer fixed to `addr`, with `len` bytes behind it
    /// immutable known data (`BREW_PTR_TO_KNOWN`).
    pub fn ptr_to_known(self, addr: u64, len: u64) -> Self {
        self.push(ParamSpec::PtrToKnown { len }, ArgValue::Int(addr as i64))
    }

    /// Set the return class.
    pub fn ret(mut self, ret: RetKind) -> Self {
        self.cfg.set_ret(ret);
        self
    }

    /// Declare `range` as known immutable memory (`brew_setmem`).
    pub fn known_mem(mut self, range: Range<u64>) -> Self {
        self.cfg.set_mem_known(range);
        self
    }

    /// Adjust the options for the function at `addr`.
    pub fn func(mut self, addr: u64, f: impl FnOnce(&mut FuncOpts)) -> Self {
        f(self.cfg.func(addr));
        self
    }

    /// Adjust the options applied to functions without explicit options.
    pub fn default_opts(mut self, f: impl FnOnce(&mut FuncOpts)) -> Self {
        f(&mut self.cfg.default_opts);
        self
    }

    /// Inject a call to `handler` at function entry (§III.D).
    pub fn entry_hook(mut self, handler: u64) -> Self {
        self.cfg.entry_hook = Some(handler);
        self
    }

    /// Inject a call to `handler` before every return.
    pub fn exit_hook(mut self, handler: u64) -> Self {
        self.cfg.exit_hook = Some(handler);
        self
    }

    /// Inject a call to `handler` before unknown-address memory accesses.
    pub fn mem_access_hook(mut self, handler: u64) -> Self {
        self.cfg.mem_access_hook = Some(handler);
        self
    }

    /// Cap traced guest instructions.
    pub fn max_trace_insts(mut self, n: u64) -> Self {
        self.cfg.max_trace_insts = n;
        self
    }

    /// Cap captured basic blocks.
    pub fn max_blocks(mut self, n: usize) -> Self {
        self.cfg.max_blocks = n;
        self
    }

    /// Cap emitted code bytes.
    pub fn max_code_bytes(mut self, n: usize) -> Self {
        self.cfg.max_code_bytes = n;
        self
    }

    /// Select optimization passes (the A2 ablation; [`PassConfig::none`]
    /// reproduces the paper's pass-less prototype).
    pub fn passes(mut self, pc: PassConfig) -> Self {
        self.passes = pc;
        self
    }

    /// The underlying rewrite configuration.
    pub fn config(&self) -> &RewriteConfig {
        &self.cfg
    }

    /// The bound trace values, one per parameter.
    pub fn args(&self) -> &[ArgValue] {
        &self.args
    }

    /// The optimization-pass selection.
    pub fn pass_config(&self) -> &PassConfig {
        &self.passes
    }

    /// Dispatch conditions for a guarded stub over this request's variant:
    /// `(integer-register index, expected value)` per known parameter.
    /// Returns `None` when some known parameter cannot be guarded by an
    /// integer-register compare (a known double), or when nothing is known
    /// (the variant is unconditioned and must not shadow the original).
    pub fn guard_conditions(&self) -> Option<Vec<(usize, i64)>> {
        let mut conds = Vec::new();
        let mut int_idx = 0usize;
        for (spec, arg) in self.cfg.params.iter().zip(&self.args) {
            match arg {
                ArgValue::Int(v) => {
                    match spec {
                        ParamSpec::Unknown => {}
                        // PtrToKnown guards on the pointer value; the
                        // pointee is immutable by contract, so equal
                        // pointers imply equal known data.
                        ParamSpec::Known | ParamSpec::PtrToKnown { .. } => {
                            conds.push((int_idx, *v));
                        }
                    }
                    int_idx += 1;
                }
                ArgValue::F64(_) => {
                    if !matches!(spec, ParamSpec::Unknown) {
                        return None; // can't compare xmm args in a stub
                    }
                }
            }
        }
        if conds.is_empty() {
            None
        } else {
            Some(conds)
        }
    }

    /// Stable content hash of the whole request (FNV-1a): parameter specs
    /// and bound values, return class, known memory, per-function options,
    /// budgets, hooks and pass selection. Two requests with equal
    /// fingerprints ask for the same variant; together with the function
    /// address this is the variant-cache key.
    ///
    /// `PtrToKnown` hashes the pointer and declared extent, not the bytes
    /// behind it — that memory is immutable by contract.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for (i, spec) in self.cfg.params.iter().enumerate() {
            h.word(i as u64);
            match spec {
                ParamSpec::Unknown => h.word(0),
                ParamSpec::Known => h.word(1),
                ParamSpec::PtrToKnown { len } => {
                    h.word(2);
                    h.word(*len);
                }
            }
            match self.args.get(i) {
                Some(ArgValue::Int(v)) => {
                    h.word(3);
                    // Unknown values are placeholders, not cache-relevant.
                    if !matches!(spec, ParamSpec::Unknown) {
                        h.word(*v as u64);
                    }
                }
                Some(ArgValue::F64(v)) => {
                    h.word(4);
                    if !matches!(spec, ParamSpec::Unknown) {
                        h.word(v.to_bits());
                    }
                }
                None => h.word(5),
            }
        }
        h.word(match self.cfg.ret {
            RetKind::Int => 10,
            RetKind::F64 => 11,
            RetKind::Void => 12,
        });
        for r in &self.cfg.known_mem {
            h.word(r.start);
            h.word(r.end);
        }
        let mut opts: Vec<(&u64, &FuncOpts)> = self.cfg.func_opts.iter().collect();
        opts.sort_by_key(|(a, _)| **a);
        for (addr, o) in opts {
            h.word(*addr);
            h.opts(o);
        }
        h.opts(&self.cfg.default_opts);
        h.word(self.cfg.max_trace_insts);
        h.word(self.cfg.max_blocks as u64);
        h.word(self.cfg.max_code_bytes as u64);
        for hook in [
            self.cfg.mem_access_hook,
            self.cfg.entry_hook,
            self.cfg.exit_hook,
        ] {
            h.word(hook.map_or(u64::MAX, |a| a));
        }
        h.word(
            (self.passes.dead_store_elim as u64)
                | (self.passes.redundant_load_elim as u64) << 1
                | (self.passes.peephole as u64) << 2
                | (self.passes.slot_promotion as u64) << 3
                | (self.passes.frame_compression as u64) << 4
                | (self.passes.regalloc as u64) << 5,
        );
        h.finish()
    }
}

/// FNV-1a over 64-bit words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn opts(&mut self, o: &FuncOpts) {
        self.word(
            (o.inline as u64)
                | (o.fresh_unknown as u64) << 1
                | (o.branch_unknown as u64) << 2
                | (o.max_variants as u64) << 3,
        );
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_binds_spec_and_value_in_step() {
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(42)
            .ptr_to_known(0x60_0000, 24)
            .ret(RetKind::Void);
        assert_eq!(req.cfg.params.len(), 3);
        assert_eq!(req.args.len(), 3);
        assert_eq!(req.cfg.params[1], ParamSpec::Known);
        assert_eq!(req.args[1], ArgValue::Int(42));
        assert_eq!(req.cfg.params[2], ParamSpec::PtrToKnown { len: 24 });
        assert_eq!(req.args[2], ArgValue::Int(0x60_0000));
        assert!(!req.cfg.addr_known(0x60_0000, 8)); // added at rewrite time
        assert_eq!(req.cfg.ret, RetKind::Void);
    }

    #[test]
    fn fingerprint_distinguishes_values_and_specs() {
        let a = SpecRequest::new().known_int(7);
        let b = SpecRequest::new().known_int(8);
        let c = SpecRequest::new().unknown_int();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(
            a.fingerprint(),
            SpecRequest::new().known_int(7).fingerprint()
        );
    }

    #[test]
    fn fingerprint_ignores_unknown_placeholder_values() {
        // Unknown parameters contribute no value to the key: requests for
        // "specialize with b unknown" are one cache entry however the
        // placeholder was spelled.
        let a = SpecRequest::from_config(
            &{
                let mut c = RewriteConfig::new();
                c.set_param(0, ParamSpec::Unknown);
                c
            },
            &[ArgValue::Int(1)],
            &PassConfig::default(),
        )
        .unwrap();
        let b = SpecRequest::new().unknown_int();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_covers_options_and_passes() {
        let base = SpecRequest::new().known_int(1);
        let opts = base.clone().func(0x40_0000, |o| o.inline = false);
        let passes = base.clone().passes(PassConfig::none());
        let mem = base.clone().known_mem(0x1000..0x2000);
        assert_ne!(base.fingerprint(), opts.fingerprint());
        assert_ne!(base.fingerprint(), passes.fingerprint());
        assert_ne!(base.fingerprint(), mem.fingerprint());
    }

    #[test]
    fn from_config_rejects_arity_drift() {
        let mut cfg = RewriteConfig::new();
        cfg.set_param(2, ParamSpec::Known);
        let err = SpecRequest::from_config(&cfg, &[ArgValue::Int(0)], &PassConfig::default())
            .unwrap_err();
        assert!(matches!(err, RewriteError::BadConfig(_)));

        let cfg = RewriteConfig::new();
        let err = SpecRequest::from_config(&cfg, &[ArgValue::Int(0)], &PassConfig::default())
            .unwrap_err();
        let RewriteError::BadConfig(msg) = err else {
            panic!()
        };
        assert!(msg.contains("argument 0"), "{msg}");
    }

    #[test]
    fn guard_conditions_use_integer_register_indices() {
        // f(double x, int n, ptr p): xmm args don't consume int slots.
        let req = SpecRequest::new()
            .unknown_f64()
            .known_int(16)
            .ptr_to_known(0x60_0040, 8);
        assert_eq!(req.guard_conditions(), Some(vec![(0, 16), (1, 0x60_0040)]));

        // A known double can't be guarded by the stub.
        let req = SpecRequest::new().known_f64(1.5).known_int(3);
        assert_eq!(req.guard_conditions(), None);

        // Nothing known -> nothing to dispatch on.
        assert_eq!(SpecRequest::new().unknown_int().guard_conditions(), None);
    }
}
