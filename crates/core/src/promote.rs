//! Frame-slot promotion: replace a stack slot's loads and stores with a
//! free scratch register.
//!
//! The rewriter's input code (like any compiler's spill code) round-trips
//! values through frame slots; after specialization deletes the surrounding
//! computation, those round-trips often dominate. §IV of the paper argues
//! such cleanups "can be much simpler than corresponding compiler passes,
//! as being tailored to specific cases" — this pass is the register-pressure
//! half of that: no global allocation, just promotion of whole slots into
//! registers that are *provably unused* across the entire rewritten
//! function.
//!
//! Soundness conditions for promoting slot `k` into register `r`:
//! * the frame never escapes (no untracked access can alias the slot),
//! * every access to `k` is a plain 8-byte `mov`/`movsd` with frame
//!   metadata (no pushes, no RMW),
//! * no kept call exists anywhere (a callee could observe caller-saved
//!   registers... it may not legally, but it may *clobber* `r`),
//! * `r` is read/written by no instruction in any block, and is
//!   caller-saved (so the function's own ABI obligations are unaffected).

use crate::capture::{CapturedBlock, CapturedInst};
use brew_x86::prelude::*;
use std::collections::{HashMap, HashSet};

/// Run slot promotion; returns the number of instructions converted from
/// memory form to register form.
pub fn promote_slots(blocks: &mut [CapturedBlock], frame_escaped: bool) -> u64 {
    if frame_escaped {
        return 0;
    }

    // 1. Global scan: which registers are used at all, are there calls,
    //    and which slots are accessed exclusively by plain moves?
    let mut used_gpr = [false; 16];
    let mut used_xmm = [false; 16];
    let mut any_call = false;
    // slot -> (gpr_ok, xmm_ok, access count)
    let mut slots: HashMap<i64, (bool, bool, u64)> = HashMap::new();
    let mut disqualified: HashSet<i64> = HashSet::new();

    for b in blocks.iter() {
        for ci in &b.insts {
            defuse::for_each_read(&ci.inst, &mut |l| match l {
                defuse::Loc::Gpr(g) => used_gpr[g.number() as usize] = true,
                defuse::Loc::Xmm(x) => used_xmm[x.number() as usize] = true,
            });
            defuse::for_each_write(&ci.inst, &mut |l| match l {
                defuse::Loc::Gpr(g) => used_gpr[g.number() as usize] = true,
                defuse::Loc::Xmm(x) => used_xmm[x.number() as usize] = true,
            });
            if matches!(ci.inst, Inst::CallRel { .. } | Inst::CallInd { .. }) {
                any_call = true;
            }
            for off in [ci.frame_store, ci.frame_load].into_iter().flatten() {
                match classify(&ci.inst) {
                    Some(Class::Gpr) => {
                        let e = slots.entry(off).or_insert((true, true, 0));
                        e.1 = false; // not xmm
                        e.2 += 1;
                    }
                    Some(Class::Xmm) => {
                        let e = slots.entry(off).or_insert((true, true, 0));
                        e.0 = false; // not gpr
                        e.2 += 1;
                    }
                    None => {
                        disqualified.insert(off);
                    }
                }
            }
        }
    }
    if any_call {
        // A kept call clobbers caller-saved registers, and callee-saved
        // ones would need save/restore: skip promotion entirely.
        return 0;
    }

    // 2. Pick candidates: most-accessed slots first, one free register each.
    let mut cands: Vec<(i64, bool /*xmm*/, u64)> = slots
        .iter()
        .filter(|(off, (gpr_ok, xmm_ok, _))| !disqualified.contains(off) && (*gpr_ok ^ *xmm_ok))
        .map(|(off, (gpr_ok, _, n))| (*off, !*gpr_ok, *n))
        .filter(|&(_, _, n)| n >= 2)
        .collect();
    cands.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));

    // Caller-saved scratch pools, least likely to collide first.
    let gpr_pool = [Gpr::R11, Gpr::R10, Gpr::R9, Gpr::R8];
    let xmm_pool = [
        Xmm::Xmm15,
        Xmm::Xmm14,
        Xmm::Xmm13,
        Xmm::Xmm12,
        Xmm::Xmm11,
        Xmm::Xmm10,
        Xmm::Xmm9,
        Xmm::Xmm8,
    ];
    let mut gpr_map: HashMap<i64, Gpr> = HashMap::new();
    let mut xmm_map: HashMap<i64, Xmm> = HashMap::new();
    let mut gi = 0;
    let mut xi = 0;
    for (off, is_xmm, _) in cands {
        if is_xmm {
            while xi < xmm_pool.len() && used_xmm[xmm_pool[xi].number() as usize] {
                xi += 1;
            }
            if xi < xmm_pool.len() {
                xmm_map.insert(off, xmm_pool[xi]);
                xi += 1;
            }
        } else {
            while gi < gpr_pool.len() && used_gpr[gpr_pool[gi].number() as usize] {
                gi += 1;
            }
            if gi < gpr_pool.len() {
                gpr_map.insert(off, gpr_pool[gi]);
                gi += 1;
            }
        }
    }
    if gpr_map.is_empty() && xmm_map.is_empty() {
        return 0;
    }

    // 3. Rewrite accesses.
    let mut converted = 0;
    for b in blocks.iter_mut() {
        for ci in b.insts.iter_mut() {
            let off = match (ci.frame_store, ci.frame_load) {
                (Some(o), None) | (None, Some(o)) => o,
                _ => continue,
            };
            if let Some(&r) = gpr_map.get(&off) {
                let new = match ci.inst {
                    Inst::Mov {
                        w: Width::W64,
                        dst: Operand::Mem(_),
                        src,
                    } => Inst::Mov {
                        w: Width::W64,
                        dst: Operand::Reg(r),
                        src,
                    },
                    Inst::Mov {
                        w: Width::W64,
                        dst,
                        src: Operand::Mem(_),
                    } => Inst::Mov {
                        w: Width::W64,
                        dst,
                        src: Operand::Reg(r),
                    },
                    _ => continue,
                };
                *ci = CapturedInst::plain(new);
                converted += 1;
            } else if let Some(&x) = xmm_map.get(&off) {
                let new = match ci.inst {
                    Inst::MovSd {
                        dst: Operand::Mem(_),
                        src,
                    } => Inst::MovSd {
                        dst: Operand::Xmm(x),
                        src,
                    },
                    Inst::MovSd {
                        dst,
                        src: Operand::Mem(_),
                    } => Inst::MovSd {
                        dst,
                        src: Operand::Xmm(x),
                    },
                    _ => continue,
                };
                *ci = CapturedInst::plain(new);
                converted += 1;
            }
        }
    }
    converted
}

enum Class {
    Gpr,
    Xmm,
}

/// Is this frame access a promotable plain 8-byte move? `None` disqualifies
/// the slot (pushes, pops, RMW ALU on memory, stores of immediates are fine
/// for GPR; immediate stores keep their imm operand).
fn classify(inst: &Inst) -> Option<Class> {
    match inst {
        Inst::Mov {
            w: Width::W64,
            dst: Operand::Mem(_),
            src: Operand::Reg(_) | Operand::Imm(_),
        } => Some(Class::Gpr),
        Inst::Mov {
            w: Width::W64,
            dst: Operand::Reg(_),
            src: Operand::Mem(_),
        } => Some(Class::Gpr),
        Inst::MovSd {
            dst: Operand::Mem(_),
            src: Operand::Xmm(_),
        } => Some(Class::Xmm),
        Inst::MovSd {
            dst: Operand::Xmm(_),
            src: Operand::Mem(_),
        } => Some(Class::Xmm),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Terminator;

    fn block(insts: Vec<CapturedInst>) -> CapturedBlock {
        let mut b = CapturedBlock::pending(0x1000);
        b.insts = insts;
        b.term = Terminator::Ret;
        b.traced = true;
        b
    }

    fn fstore(off: i64, src: Xmm) -> CapturedInst {
        CapturedInst {
            inst: Inst::MovSd {
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, off as i32)),
                src: Operand::Xmm(src),
            },
            frame_store: Some(off),
            frame_load: None,
        }
    }

    fn fload(dst: Xmm, off: i64) -> CapturedInst {
        CapturedInst {
            inst: Inst::MovSd {
                dst: Operand::Xmm(dst),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, off as i32)),
            },
            frame_store: None,
            frame_load: Some(off),
        }
    }

    #[test]
    fn promotes_xmm_accumulator_round_trips() {
        let mut blocks = vec![block(vec![
            fstore(-16, Xmm::Xmm0),
            fload(Xmm::Xmm0, -16),
            fstore(-16, Xmm::Xmm0),
            fload(Xmm::Xmm0, -16),
        ])];
        let n = promote_slots(&mut blocks, false);
        assert_eq!(n, 4);
        // Every access became a register-register move (into xmm15).
        for ci in &blocks[0].insts {
            assert!(matches!(
                ci.inst,
                Inst::MovSd {
                    dst: Operand::Xmm(_),
                    src: Operand::Xmm(_)
                }
            ));
        }
    }

    #[test]
    fn respects_escape_and_calls() {
        let mut blocks = vec![block(vec![fstore(-16, Xmm::Xmm0), fload(Xmm::Xmm0, -16)])];
        assert_eq!(promote_slots(&mut blocks, true), 0);

        let mut blocks = vec![block(vec![
            fstore(-16, Xmm::Xmm0),
            CapturedInst::plain(Inst::CallRel { target: 0x400000 }),
            fload(Xmm::Xmm0, -16),
        ])];
        assert_eq!(promote_slots(&mut blocks, false), 0);
    }

    #[test]
    fn mixed_class_slot_not_promoted() {
        // Same slot accessed as both integer and double: leave it alone.
        let gpr_load = CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -16)),
            },
            frame_store: None,
            frame_load: Some(-16),
        };
        let mut blocks = vec![block(vec![fstore(-16, Xmm::Xmm0), gpr_load])];
        assert_eq!(promote_slots(&mut blocks, false), 0);
    }

    #[test]
    fn push_disqualifies_slot() {
        let push = CapturedInst {
            inst: Inst::Push {
                src: Operand::Reg(Gpr::Rax),
            },
            frame_store: Some(-16),
            frame_load: None,
        };
        let mut blocks = vec![block(vec![
            push,
            fload(Xmm::Xmm0, -16),
            fstore(-16, Xmm::Xmm0),
        ])];
        assert_eq!(promote_slots(&mut blocks, false), 0);
    }

    #[test]
    fn used_registers_are_not_recruited() {
        // Block already uses xmm8..xmm15: nothing free.
        let mut insts = vec![fstore(-16, Xmm::Xmm0), fload(Xmm::Xmm0, -16)];
        for x in [
            Xmm::Xmm8,
            Xmm::Xmm9,
            Xmm::Xmm10,
            Xmm::Xmm11,
            Xmm::Xmm12,
            Xmm::Xmm13,
            Xmm::Xmm14,
            Xmm::Xmm15,
        ] {
            insts.push(CapturedInst::plain(Inst::Sse {
                op: SseOp::Addsd,
                dst: x,
                src: Operand::Xmm(x),
            }));
        }
        let mut blocks = vec![block(insts)];
        assert_eq!(promote_slots(&mut blocks, false), 0);
    }

    #[test]
    fn gpr_slot_promotion() {
        let store = CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
                src: Operand::Reg(Gpr::Rax),
            },
            frame_store: Some(-8),
            frame_load: None,
        };
        let load = CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
            },
            frame_store: None,
            frame_load: Some(-8),
        };
        let mut blocks = vec![block(vec![store, load])];
        let n = promote_slots(&mut blocks, false);
        assert_eq!(n, 2);
        assert_eq!(
            blocks[0].insts[0].inst,
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::R11),
                src: Operand::Reg(Gpr::Rax)
            }
        );
        assert_eq!(
            blocks[0].insts[1].inst,
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Reg(Gpr::R11)
            }
        );
    }
}
