//! Post-rewrite register allocation (paper §IV: "register renaming" is the
//! prototype's named next step; ROADMAP item 1).
//!
//! Two phases, both driven by the `x86::defuse` sets validated
//! differentially against the emulator in PR 5:
//!
//! 1. **Slot allocation** — the CFG-aware generalization of
//!    [`crate::promote::promote_slots`]: per-block live-in/live-out for
//!    every remaining frame slot, a slot *extent* (the set of blocks the
//!    slot's value must survive across, including loop back-edge paths),
//!    and a linear scan over the caller-saved scratch pools that assigns a
//!    register whose own live range and uses are provably disjoint from
//!    the extent. Spill fallback is the identity: a slot with no free
//!    register simply stays in memory, so the pass can never make code
//!    worse. Unlike `promote_slots` it tolerates kept calls — a slot whose
//!    extent avoids every barrier block still allocates.
//!
//! 2. **Cleanup** — the rename work that makes phase 1 pay off. Promotion
//!    leaves chains of register-to-register moves, paired `rsp`
//!    adjustments around now-registerized temporaries, and
//!    address-computation triples. Five sub-passes run to a fixpoint, each
//!    justified by CFG register liveness (not the "everything is live-out"
//!    assumption the intra-block peephole must make):
//!    * cancellation of balanced `sub rsp, k` / `add rsp, k` pairs with no
//!      intervening `rsp` reference, gated on the removed ALU's flags
//!      being dead;
//!    * dead "pure load" elimination: a register write (including a load
//!      from an `rsp`-relative or absolute address, which cannot fault)
//!      whose destination is dead across the block boundary;
//!    * address folding: `mov a, b; add a, k; ... [a+d] ...` becomes
//!      `[b+d+k]` when `a` dies at the use;
//!    * backward copy coalescing: `mov d, s` where `s` dies is removed by
//!      renaming `s` to `d` across the window back to `s`'s full
//!      definition — deliberately walking *through* read-modify-write
//!      instructions of `s` (the accumulator pattern) to the real def;
//!    * forward copy propagation: `mov d, s` is removed by rewriting the
//!      downstream reads of `d` to `s` while `s` is unclobbered.
//!
//! XMM high lanes: register-to-register `movsd` and `cvtsi2sd` merge the
//! destination's upper 64 bits, so they are not full definitions — unless
//! the captured code is *scalar only* (no packed SSE, no `movupd`, no
//! kept calls), in which case no instruction can ever observe a high lane
//! and both count as full defs. The pass computes that predicate globally
//! and threads it through every liveness query.
//!
//! `frame_escaped` blocks phase 1 exactly as it blocks dead-store
//! elimination: an escaped frame address means untracked loads may alias
//! any slot. Phase 2 still runs — it touches only registers and balanced
//! `rsp` pairs. The output must (and does: see `tests/differential.rs` and
//! the verifier suites) stay bit-identical under the emulator and pass the
//! static verifier unchanged — rsp-pair removal is balanced so stack
//! discipline holds, and no transform introduces a memory write.

use crate::capture::{CapturedBlock, CapturedInst, Terminator};
use brew_x86::prelude::*;
use std::collections::{HashMap, HashSet};

/// Run the allocator; returns the number of instructions removed.
pub fn allocate(blocks: &mut [CapturedBlock], frame_escaped: bool) -> u64 {
    allocate_slots(blocks, frame_escaped);
    let mut removed = 0;
    loop {
        let so = scalar_only(blocks);
        let live_out = register_liveness(blocks, so);
        let flags_out = flags_liveness(blocks);
        let mut round = 0;
        for i in 0..blocks.len() {
            let b = &mut blocks[i];
            round += cancel_rsp_pairs(b, flags_out[i]);
            round += dead_loads(b, live_out[i], so);
            round += fold_addresses(b, live_out[i], flags_out[i], so);
            round += coalesce_backward(b, live_out[i], so);
            round += propagate_copies(b, live_out[i], so);
        }
        removed += round;
        if round == 0 {
            return removed;
        }
    }
}

// ---------------------------------------------------------------------------
// Register liveness over the captured CFG
// ---------------------------------------------------------------------------

/// Bitset of live registers (bit = hardware register number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LiveSet {
    gpr: u16,
    xmm: u16,
}

impl LiveSet {
    const EMPTY: LiveSet = LiveSet { gpr: 0, xmm: 0 };
    const ALL: LiveSet = LiveSet { gpr: !0, xmm: !0 };
    /// What an observer can read after `ret`: the integer and float return
    /// registers, the stack/frame pointers, and the callee-saved set. Our
    /// harnesses only compare `rax`/`xmm0` (plus `rdx:rax` and `xmm1` for
    /// wide returns), but the callee-saved registers are part of the
    /// contract with any real caller.
    const ABI_RET: LiveSet = LiveSet {
        gpr: (1 << 0) | (1 << 2) | (1 << 3) | (1 << 4) | (1 << 5) | 0xf000,
        xmm: 0b11,
    };

    fn has(self, l: Loc) -> bool {
        match l {
            Loc::Gpr(g) => self.gpr & (1 << g.number()) != 0,
            Loc::Xmm(x) => self.xmm & (1 << x.number()) != 0,
        }
    }
    fn set(&mut self, l: Loc) {
        match l {
            Loc::Gpr(g) => self.gpr |= 1 << g.number(),
            Loc::Xmm(x) => self.xmm |= 1 << x.number(),
        }
    }
    fn clear(&mut self, l: Loc) {
        match l {
            Loc::Gpr(g) => self.gpr &= !(1 << g.number()),
            Loc::Xmm(x) => self.xmm &= !(1 << x.number()),
        }
    }
    fn union(self, o: LiveSet) -> LiveSet {
        LiveSet {
            gpr: self.gpr | o.gpr,
            xmm: self.xmm | o.xmm,
        }
    }
}

/// No packed SSE, no 16-byte moves, no kept calls anywhere: XMM high
/// lanes are unobservable, so scalar moves may be treated as full defs.
fn scalar_only(blocks: &[CapturedBlock]) -> bool {
    !blocks.iter().any(|b| {
        b.insts.iter().any(|ci| {
            matches!(
                ci.inst,
                Inst::MovUpd { .. } | Inst::CallRel { .. } | Inst::CallInd { .. }
            ) || matches!(ci.inst, Inst::Sse { op, .. } if op.is_packed())
        })
    })
}

/// Does the instruction overwrite its destination register(s) completely?
/// Mirrors the peephole's notion, extended with the scalar-only cases.
fn full_def(inst: &Inst, so: bool) -> bool {
    match inst {
        Inst::Mov {
            w: Width::W32 | Width::W64,
            dst: Operand::Reg(_),
            ..
        }
        | Inst::MovAbs { .. }
        | Inst::Movsxd { .. }
        | Inst::Movzx8 { .. }
        | Inst::Lea { .. }
        | Inst::Imul { .. }
        | Inst::ImulImm { .. }
        | Inst::Cvttsd2si { .. }
        | Inst::Pop {
            dst: Operand::Reg(_),
        }
        | Inst::MovUpd {
            dst: Operand::Xmm(_),
            ..
        } => true,
        Inst::MovSd {
            dst: Operand::Xmm(_),
            src: Operand::Mem(_),
        } => true,
        // Register-to-register movsd / cvtsi2sd merge the high lane; with
        // no possible high-lane observer they define the register fully.
        Inst::MovSd {
            dst: Operand::Xmm(_),
            src: Operand::Xmm(_),
        }
        | Inst::Cvtsi2sd { .. } => so,
        Inst::Alu {
            op,
            w: Width::W32 | Width::W64,
            dst: Operand::Reg(_),
            ..
        } => op.writes_dst(),
        _ => false,
    }
}

/// `for_each_read`, minus the high-lane merge artifacts that stop being
/// reads in scalar-only code (`movsd d, s` and `cvtsi2sd d, r` "read" `d`
/// only to preserve its upper 64 bits).
fn for_each_read_so(inst: &Inst, so: bool, f: &mut impl FnMut(Loc)) {
    let skip = if so {
        match inst {
            Inst::MovSd {
                dst: Operand::Xmm(d),
                src: Operand::Xmm(s),
            } if d != s => Some(Loc::Xmm(*d)),
            Inst::Cvtsi2sd { dst, .. } => Some(Loc::Xmm(*dst)),
            _ => None,
        }
    } else {
        None
    };
    defuse::for_each_read(inst, &mut |l| {
        if Some(l) != skip {
            f(l)
        }
    });
}

fn references(inst: &Inst, l: Loc, so: bool) -> bool {
    let mut hit = false;
    for_each_read_so(inst, so, &mut |r| hit |= r == l);
    defuse::for_each_write(inst, &mut |w| hit |= w == l);
    hit
}

fn writes_loc(inst: &Inst, l: Loc) -> bool {
    let mut hit = false;
    defuse::for_each_write(inst, &mut |w| hit |= w == l);
    hit
}

/// Backward transfer of one instruction over a live set.
fn step_back(live: &mut LiveSet, inst: &Inst, so: bool) {
    if defuse::is_barrier(inst) {
        *live = LiveSet::ALL;
        return;
    }
    if full_def(inst, so) {
        defuse::for_each_write(inst, &mut |l| live.clear(l));
    }
    for_each_read_so(inst, so, &mut |l| live.set(l));
}

/// Liveness just after `b.insts[pos]` (i.e. before `pos + 1`).
fn live_after(b: &CapturedBlock, pos: usize, live_out: LiveSet, so: bool) -> LiveSet {
    let mut live = live_out;
    for ci in b.insts[pos + 1..].iter().rev() {
        step_back(&mut live, &ci.inst, so);
    }
    live
}

/// Per-block live-out register sets via backward fixpoint over the CFG.
fn register_liveness(blocks: &[CapturedBlock], so: bool) -> Vec<LiveSet> {
    let n = blocks.len();
    let mut live_in = vec![LiveSet::EMPTY; n];
    let mut live_out = vec![LiveSet::EMPTY; n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            let mut out = match blocks[i].term {
                Terminator::Ret => LiveSet::ABI_RET,
                _ => {
                    let mut o = LiveSet::EMPTY;
                    for s in blocks[i].term.successors() {
                        o = o.union(if s.0 < n { live_in[s.0] } else { LiveSet::ALL });
                    }
                    o
                }
            };
            // The stack and frame pointers are structural: never dead.
            out.set(Loc::Gpr(Gpr::Rsp));
            out.set(Loc::Gpr(Gpr::Rbp));
            let mut inn = out;
            for ci in blocks[i].insts.iter().rev() {
                step_back(&mut inn, &ci.inst, so);
            }
            changed |= out != live_out[i] || inn != live_in[i];
            live_out[i] = out;
            live_in[i] = inn;
        }
        if !changed {
            return live_out;
        }
    }
}

// ---------------------------------------------------------------------------
// Flags liveness
// ---------------------------------------------------------------------------

/// Only these define *every* arithmetic flag; the other flag writers
/// (shifts, imul, unary) leave some flags undefined or unchanged, so they
/// never count as kills.
fn kills_flags(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Alu { .. } | Inst::Test { .. } | Inst::Ucomisd { .. }
    )
}

/// Per-block "are flags read after the block's last instruction": true
/// when the terminator branches on them or a successor consumes them
/// before writing any. Backward fixpoint; unknown edges stay conservative.
fn flags_liveness(blocks: &[CapturedBlock]) -> Vec<bool> {
    let n = blocks.len();
    let mut f_in = vec![true; n];
    let mut f_out = vec![true; n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            let out = match blocks[i].term {
                Terminator::Jcc { .. } => true,
                Terminator::Ret => false,
                Terminator::Jmp(t) => t.0 >= n || f_in[t.0],
            };
            let mut inn = blocks[i].reads_flags_on_entry;
            if !inn {
                inn = out;
                for ci in &blocks[i].insts {
                    if ci.inst.reads_flags() {
                        inn = true;
                        break;
                    }
                    if kills_flags(&ci.inst) {
                        inn = false;
                        break;
                    }
                }
            }
            changed |= out != f_out[i] || inn != f_in[i];
            f_out[i] = out;
            f_in[i] = inn;
        }
        if !changed {
            return f_out;
        }
    }
}

/// Are the flags as left by `b.insts[pos - 1]` provably never read?
fn flags_dead_at(b: &CapturedBlock, pos: usize, flags_out: bool) -> bool {
    for ci in &b.insts[pos..] {
        if ci.inst.reads_flags() || defuse::is_barrier(&ci.inst) {
            return false;
        }
        if kills_flags(&ci.inst) {
            return true;
        }
    }
    !flags_out
}

// ---------------------------------------------------------------------------
// Phase 1: CFG-aware slot allocation
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Class {
    Gpr,
    Xmm,
}

/// Is this frame access an allocatable plain 8-byte move (same contract as
/// `promote::classify`)? `None` disqualifies the slot.
fn classify(inst: &Inst) -> Option<Class> {
    match inst {
        Inst::Mov {
            w: Width::W64,
            dst: Operand::Mem(_),
            src: Operand::Reg(_) | Operand::Imm(_),
        }
        | Inst::Mov {
            w: Width::W64,
            dst: Operand::Reg(_),
            src: Operand::Mem(_),
        } => Some(Class::Gpr),
        Inst::MovSd {
            dst: Operand::Mem(_),
            src: Operand::Xmm(_),
        }
        | Inst::MovSd {
            dst: Operand::Xmm(_),
            src: Operand::Mem(_),
        } => Some(Class::Xmm),
        _ => None,
    }
}

/// Promote remaining frame slots into scratch registers whose live ranges
/// provably avoid the slot's extent. Returns conversions (not removals).
fn allocate_slots(blocks: &mut [CapturedBlock], frame_escaped: bool) -> u64 {
    if frame_escaped || blocks.is_empty() {
        return 0;
    }
    let n = blocks.len();

    // Candidate slots: every access is a plain classified move of one class.
    let mut class: HashMap<i64, (Option<Class>, u64)> = HashMap::new();
    let mut disqualified: HashSet<i64> = HashSet::new();
    for b in blocks.iter() {
        for ci in &b.insts {
            for off in [ci.frame_store, ci.frame_load].into_iter().flatten() {
                match classify(&ci.inst) {
                    Some(c) => {
                        let e = class.entry(off).or_insert((Some(c), 0));
                        if e.0 != Some(c) {
                            disqualified.insert(off);
                        }
                        e.1 += 1;
                    }
                    None => {
                        disqualified.insert(off);
                    }
                }
            }
        }
    }
    let mut cands: Vec<(i64, Class, u64)> = class
        .iter()
        .filter(|(off, _)| !disqualified.contains(off))
        .filter_map(|(off, (c, cnt))| (*c).map(|c| (*off, c, *cnt)))
        .filter(|&(_, _, cnt)| cnt >= 2)
        .collect();
    if cands.is_empty() {
        return 0;
    }
    cands.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));

    // Per-block slot gen (read before write) / kill (written) sets, then a
    // backward fixpoint for slot live-in/out. The extent — every block the
    // slot's value must survive — is access ∪ live-through, which is what
    // a linearized interval would get wrong across loop back-edges.
    let offsets: Vec<i64> = cands.iter().map(|c| c.0).collect();
    let slot_ix: HashMap<i64, usize> = offsets.iter().enumerate().map(|(i, o)| (*o, i)).collect();
    let ns = offsets.len();
    let mut gen = vec![vec![false; ns]; n];
    let mut kill = vec![vec![false; ns]; n];
    let mut accessed = vec![vec![false; ns]; n];
    for (bi, b) in blocks.iter().enumerate() {
        for ci in &b.insts {
            if let Some(s) = ci.frame_load.and_then(|o| slot_ix.get(&o)) {
                accessed[bi][*s] = true;
                if !kill[bi][*s] {
                    gen[bi][*s] = true;
                }
            }
            if let Some(s) = ci.frame_store.and_then(|o| slot_ix.get(&o)) {
                accessed[bi][*s] = true;
                kill[bi][*s] = true;
            }
        }
    }
    let mut s_in = vec![vec![false; ns]; n];
    let mut s_out = vec![vec![false; ns]; n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            for s in 0..ns {
                let out = blocks[i].term.successors().any(|t| t.0 < n && s_in[t.0][s]);
                let inn = gen[i][s] || (out && !kill[i][s]);
                changed |= out != s_out[i][s] || inn != s_in[i][s];
                s_out[i][s] = out;
                s_in[i][s] = inn;
            }
        }
        if !changed {
            break;
        }
    }

    // Register availability per block: the registers referenced by any
    // instruction, plus block-boundary liveness, plus an "any barrier"
    // flag (a barrier makes every register live mid-block).
    let so = scalar_only(blocks);
    let live_out = register_liveness(blocks, so);
    let live_in_of = |i: usize, lo: &[LiveSet]| {
        // recompute live-in cheaply from live-out
        let mut l = lo[i];
        for ci in blocks[i].insts.iter().rev() {
            step_back(&mut l, &ci.inst, so);
        }
        l
    };
    let mut busy = vec![LiveSet::EMPTY; n];
    let mut has_barrier = vec![false; n];
    for (bi, b) in blocks.iter().enumerate() {
        let mut u = live_out[bi].union(live_in_of(bi, &live_out));
        for ci in &b.insts {
            defuse::for_each_read(&ci.inst, &mut |l| u.set(l));
            defuse::for_each_write(&ci.inst, &mut |l| u.set(l));
            has_barrier[bi] |= defuse::is_barrier(&ci.inst);
        }
        busy[bi] = u;
    }

    // Linear scan over the scratch pools, hottest slot first. A register
    // is free for a slot iff every extent block is barrier-free and the
    // register is neither referenced nor live across any of them.
    let gpr_pool = [Gpr::R11, Gpr::R10, Gpr::R9, Gpr::R8];
    let xmm_pool = [
        Xmm::Xmm15,
        Xmm::Xmm14,
        Xmm::Xmm13,
        Xmm::Xmm12,
        Xmm::Xmm11,
        Xmm::Xmm10,
        Xmm::Xmm9,
        Xmm::Xmm8,
    ];
    let mut gpr_map: HashMap<i64, Gpr> = HashMap::new();
    let mut xmm_map: HashMap<i64, Xmm> = HashMap::new();
    for (off, c, _) in &cands {
        let s = slot_ix[off];
        let extent: Vec<usize> = (0..n)
            .filter(|&i| accessed[i][s] || s_in[i][s] || s_out[i][s])
            .collect();
        if extent.iter().any(|&i| has_barrier[i]) {
            continue; // spill fallback: leave the slot in memory
        }
        let free = |l: Loc| extent.iter().all(|&i| !busy[i].has(l));
        match c {
            Class::Gpr => {
                if let Some(&r) = gpr_pool.iter().find(|&&r| free(Loc::Gpr(r))) {
                    gpr_map.insert(*off, r);
                    for &i in &extent {
                        busy[i].set(Loc::Gpr(r));
                    }
                }
            }
            Class::Xmm => {
                if let Some(&x) = xmm_pool.iter().find(|&&x| free(Loc::Xmm(x))) {
                    xmm_map.insert(*off, x);
                    for &i in &extent {
                        busy[i].set(Loc::Xmm(x));
                    }
                }
            }
        }
    }
    if gpr_map.is_empty() && xmm_map.is_empty() {
        return 0;
    }

    // Rewrite the accesses (same shapes promote_slots rewrites).
    let mut converted = 0;
    for b in blocks.iter_mut() {
        for ci in b.insts.iter_mut() {
            let off = match (ci.frame_store, ci.frame_load) {
                (Some(o), None) | (None, Some(o)) => o,
                _ => continue,
            };
            if let Some(&r) = gpr_map.get(&off) {
                let new = match ci.inst {
                    Inst::Mov {
                        w: Width::W64,
                        dst: Operand::Mem(_),
                        src,
                    } => Inst::Mov {
                        w: Width::W64,
                        dst: Operand::Reg(r),
                        src,
                    },
                    Inst::Mov {
                        w: Width::W64,
                        dst,
                        src: Operand::Mem(_),
                    } => Inst::Mov {
                        w: Width::W64,
                        dst,
                        src: Operand::Reg(r),
                    },
                    _ => continue,
                };
                *ci = CapturedInst::plain(new);
                converted += 1;
            } else if let Some(&x) = xmm_map.get(&off) {
                let new = match ci.inst {
                    Inst::MovSd {
                        dst: Operand::Mem(_),
                        src,
                    } => Inst::MovSd {
                        dst: Operand::Xmm(x),
                        src,
                    },
                    Inst::MovSd {
                        dst,
                        src: Operand::Mem(_),
                    } => Inst::MovSd {
                        dst,
                        src: Operand::Xmm(x),
                    },
                    _ => continue,
                };
                *ci = CapturedInst::plain(new);
                converted += 1;
            }
        }
    }
    converted
}

// ---------------------------------------------------------------------------
// Phase 2a: balanced rsp-pair cancellation
// ---------------------------------------------------------------------------

/// Net rsp delta of a pure adjustment, plus whether removing it drops a
/// flags write.
fn rsp_adjust(inst: &Inst) -> Option<(i64, bool)> {
    match inst {
        Inst::Alu {
            op: op @ (AluOp::Add | AluOp::Sub),
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rsp),
            src: Operand::Imm(k),
        } => Some((if *op == AluOp::Add { *k } else { -*k }, true)),
        Inst::Lea {
            dst: Gpr::Rsp,
            src:
                MemRef {
                    base: Some(Gpr::Rsp),
                    index: None,
                    disp,
                },
        } => Some((*disp as i64, false)),
        _ => None,
    }
}

fn cancel_rsp_pairs(b: &mut CapturedBlock, flags_out: bool) -> u64 {
    let nn = b.insts.len();
    let mut keep = vec![true; nn];
    let mut removed = 0;
    let mut i = 0;
    'outer: while i < nn {
        let Some((d1, f1)) = keep[i].then(|| rsp_adjust(&b.insts[i].inst)).flatten() else {
            i += 1;
            continue;
        };
        for j in i + 1..nn {
            if !keep[j] {
                continue;
            }
            let inst = &b.insts[j].inst;
            if let Some((d2, f2)) = rsp_adjust(inst) {
                if d1 + d2 == 0
                    && (!f1 || flags_dead_at(b, i + 1, flags_out))
                    && (!f2 || flags_dead_at(b, j + 1, flags_out))
                {
                    keep[i] = false;
                    keep[j] = false;
                    removed += 2;
                    i += 1;
                    continue 'outer;
                }
                // A different adjustment references rsp: the pair is open.
                i += 1;
                continue 'outer;
            }
            if defuse::is_barrier(inst) || references(inst, Loc::Gpr(Gpr::Rsp), false) {
                i += 1;
                continue 'outer;
            }
        }
        i += 1;
    }
    if removed > 0 {
        let mut it = keep.iter();
        b.insts.retain(|_| *it.next().unwrap());
    }
    removed
}

// ---------------------------------------------------------------------------
// Phase 2b: CFG-liveness dead "pure load" elimination
// ---------------------------------------------------------------------------

/// `rsp`-relative (frame) or absolute (pool) address: provably mapped, so
/// eliding the load cannot change fault behaviour.
fn trackable(m: &MemRef) -> bool {
    (m.base == Some(Gpr::Rsp) && m.index.is_none()) || (m.base.is_none() && m.index.is_none())
}

fn dead_loads(b: &mut CapturedBlock, live_out: LiveSet, so: bool) -> u64 {
    let mut live = live_out;
    let mut keep = vec![true; b.insts.len()];
    for (idx, ci) in b.insts.iter().enumerate().rev() {
        let inst = &ci.inst;
        if defuse::is_barrier(inst) {
            live = LiveSet::ALL;
            continue;
        }
        let removable = match inst {
            Inst::Mov {
                w: Width::W32 | Width::W64,
                dst: Operand::Reg(d),
                src: Operand::Reg(_) | Operand::Imm(_),
            } => *d != Gpr::Rsp,
            Inst::Mov {
                w: Width::W32 | Width::W64,
                dst: Operand::Reg(d),
                src: Operand::Mem(m),
            } => *d != Gpr::Rsp && trackable(m),
            Inst::MovAbs { dst, .. } => *dst != Gpr::Rsp,
            Inst::Lea { dst, .. } => *dst != Gpr::Rsp,
            Inst::MovSd {
                dst: Operand::Xmm(_),
                src: Operand::Xmm(_),
            } => true,
            Inst::MovSd {
                dst: Operand::Xmm(_),
                src: Operand::Mem(m),
            } => trackable(m),
            _ => false,
        };
        if removable {
            let mut all_dead = true;
            let mut any = false;
            defuse::for_each_write(inst, &mut |l| {
                any = true;
                all_dead &= !live.has(l);
            });
            if any && all_dead {
                keep[idx] = false;
                continue;
            }
        }
        step_back(&mut live, inst, so);
    }
    let before = b.insts.len();
    let mut it = keep.iter();
    b.insts.retain(|_| *it.next().unwrap());
    (before - b.insts.len()) as u64
}

// ---------------------------------------------------------------------------
// Phase 2c: address folding
// ---------------------------------------------------------------------------

/// If `inst`'s only reference to `a` is as the (index-free) base of its
/// single memory operand and it does not write `a`, return that operand.
fn sole_base_use(inst: &Inst, a: Gpr) -> Option<MemRef> {
    if writes_loc(inst, Loc::Gpr(a)) {
        return None;
    }
    let mut reads = 0u32;
    defuse::for_each_read(inst, &mut |l| {
        if l == Loc::Gpr(a) {
            reads += 1;
        }
    });
    if reads != 1 {
        return None;
    }
    let m = inst.mem_load().or_else(|| inst.mem_store())?;
    (m.base == Some(a) && m.index.is_none()).then_some(m)
}

/// Replace the single memory operand of `inst` with `m`.
fn replace_mem(inst: &Inst, m: MemRef) -> Option<Inst> {
    let sub = |op: &Operand| -> Operand {
        match op {
            Operand::Mem(_) => Operand::Mem(m),
            other => *other,
        }
    };
    Some(match inst {
        Inst::Mov { w, dst, src } => Inst::Mov {
            w: *w,
            dst: sub(dst),
            src: sub(src),
        },
        Inst::Movsxd { dst, src } => Inst::Movsxd {
            dst: *dst,
            src: sub(src),
        },
        Inst::Movzx8 { w, dst, src } => Inst::Movzx8 {
            w: *w,
            dst: *dst,
            src: sub(src),
        },
        Inst::Alu { op, w, dst, src } => Inst::Alu {
            op: *op,
            w: *w,
            dst: sub(dst),
            src: sub(src),
        },
        Inst::Test { w, a, b } => Inst::Test {
            w: *w,
            a: sub(a),
            b: sub(b),
        },
        Inst::Imul { w, dst, src } => Inst::Imul {
            w: *w,
            dst: *dst,
            src: sub(src),
        },
        Inst::ImulImm { w, dst, src, imm } => Inst::ImulImm {
            w: *w,
            dst: *dst,
            src: sub(src),
            imm: *imm,
        },
        Inst::MovSd { dst, src } => Inst::MovSd {
            dst: sub(dst),
            src: sub(src),
        },
        Inst::Sse { op, dst, src } => Inst::Sse {
            op: *op,
            dst: *dst,
            src: sub(src),
        },
        Inst::Ucomisd { a, b } => Inst::Ucomisd { a: *a, b: sub(b) },
        Inst::Cvtsi2sd { w, dst, src } => Inst::Cvtsi2sd {
            w: *w,
            dst: *dst,
            src: sub(src),
        },
        Inst::Cvttsd2si { w, dst, src } => Inst::Cvttsd2si {
            w: *w,
            dst: *dst,
            src: sub(src),
        },
        _ => return None,
    })
}

/// `mov a, b [; add/sub a, k] ; use [a+d]` → `use [b+d±k]` when `a` dies
/// at the use and the (removed) ALU's flags are dead.
fn fold_addresses(b: &mut CapturedBlock, live_out: LiveSet, flags_out: bool, so: bool) -> u64 {
    let mut removed = 0;
    let mut i = 0;
    while i < b.insts.len() {
        let Inst::Mov {
            w: Width::W64,
            dst: Operand::Reg(a),
            src: Operand::Reg(base),
        } = b.insts[i].inst
        else {
            i += 1;
            continue;
        };
        if a == base || a == Gpr::Rsp || base == Gpr::Rsp || a == Gpr::Rbp {
            i += 1;
            continue;
        }
        // Optional immediate adjustment of `a` right after the copy.
        let (delta, j) = match b.insts.get(i + 1).map(|ci| ci.inst) {
            Some(Inst::Alu {
                op: op @ (AluOp::Add | AluOp::Sub),
                w: Width::W64,
                dst: Operand::Reg(r),
                src: Operand::Imm(k),
            }) if r == a => (if op == AluOp::Add { k } else { -k }, i + 2),
            _ => (0, i + 1),
        };
        let needs_flags = j == i + 2;
        let fold = b.insts.get(j).and_then(|cj| {
            let m = sole_base_use(&cj.inst, a)?;
            let disp = i64::from(m.disp).checked_add(delta)?;
            let disp = i32::try_from(disp).ok()?;
            if live_after(b, j, live_out, so).has(Loc::Gpr(a)) {
                return None;
            }
            if needs_flags && !flags_dead_at(b, j, flags_out) {
                return None;
            }
            replace_mem(
                &cj.inst,
                MemRef {
                    base: Some(base),
                    index: None,
                    disp,
                },
            )
        });
        if let Some(new) = fold {
            let meta = b.insts[j];
            b.insts[j] = CapturedInst {
                inst: new,
                frame_store: meta.frame_store,
                frame_load: meta.frame_load,
            };
            b.insts.drain(i..j);
            removed += (j - i) as u64;
        } else {
            i += 1;
        }
    }
    removed
}

// ---------------------------------------------------------------------------
// Renaming machinery for the copy passes
// ---------------------------------------------------------------------------

fn map_mem_gpr(m: &MemRef, from: Gpr, to: Gpr) -> MemRef {
    MemRef {
        base: m.base.map(|b| if b == from { to } else { b }),
        index: m.index.map(|(r, s)| (if r == from { to } else { r }, s)),
        disp: m.disp,
    }
}

fn map_op_gpr(op: &Operand, from: Gpr, to: Gpr) -> Operand {
    match op {
        Operand::Reg(r) if *r == from => Operand::Reg(to),
        Operand::Mem(m) => Operand::Mem(map_mem_gpr(m, from, to)),
        other => *other,
    }
}

/// Structurally rename every occurrence of GPR `from` to `to`. `None`
/// means the instruction's shape (or an implicit register) cannot be
/// renamed safely — callers must abort their transform.
fn rename_gpr(inst: &Inst, from: Gpr, to: Gpr) -> Option<Inst> {
    if !references(inst, Loc::Gpr(from), false) {
        return Some(*inst);
    }
    let g = |r: &Gpr| if *r == from { to } else { *r };
    let o = |op: &Operand| map_op_gpr(op, from, to);
    Some(match inst {
        Inst::Mov { w, dst, src } => Inst::Mov {
            w: *w,
            dst: o(dst),
            src: o(src),
        },
        Inst::MovAbs { dst, imm } => Inst::MovAbs {
            dst: g(dst),
            imm: *imm,
        },
        Inst::Movsxd { dst, src } => Inst::Movsxd {
            dst: g(dst),
            src: o(src),
        },
        Inst::Movzx8 { w, dst, src } => Inst::Movzx8 {
            w: *w,
            dst: g(dst),
            src: o(src),
        },
        Inst::Lea { dst, src } => Inst::Lea {
            dst: g(dst),
            src: map_mem_gpr(src, from, to),
        },
        Inst::Alu { op, w, dst, src } => Inst::Alu {
            op: *op,
            w: *w,
            dst: o(dst),
            src: o(src),
        },
        Inst::Test { w, a, b } => Inst::Test {
            w: *w,
            a: o(a),
            b: o(b),
        },
        Inst::Imul { w, dst, src } => Inst::Imul {
            w: *w,
            dst: g(dst),
            src: o(src),
        },
        Inst::ImulImm { w, dst, src, imm } => Inst::ImulImm {
            w: *w,
            dst: g(dst),
            src: o(src),
            imm: *imm,
        },
        Inst::Unary { op, w, dst } => Inst::Unary {
            op: *op,
            w: *w,
            dst: o(dst),
        },
        Inst::Shift { op, w, dst, count } => {
            // The implicit CL count register cannot be renamed.
            if matches!(count, ShiftCount::Cl) && (from == Gpr::Rcx || to == Gpr::Rcx) {
                return None;
            }
            Inst::Shift {
                op: *op,
                w: *w,
                dst: o(dst),
                count: *count,
            }
        }
        Inst::Push { src } => Inst::Push { src: o(src) },
        Inst::Pop { dst } => Inst::Pop { dst: o(dst) },
        Inst::Setcc { cond, dst } => Inst::Setcc {
            cond: *cond,
            dst: o(dst),
        },
        Inst::MovSd { dst, src } => Inst::MovSd {
            dst: o(dst),
            src: o(src),
        },
        Inst::Sse { op, dst, src } => Inst::Sse {
            op: *op,
            dst: *dst,
            src: o(src),
        },
        Inst::Ucomisd { a, b } => Inst::Ucomisd { a: *a, b: o(b) },
        Inst::Cvtsi2sd { w, dst, src } => Inst::Cvtsi2sd {
            w: *w,
            dst: *dst,
            src: o(src),
        },
        Inst::Cvttsd2si { w, dst, src } => Inst::Cvttsd2si {
            w: *w,
            dst: g(dst),
            src: o(src),
        },
        // Cqo/Idiv reference RAX/RDX implicitly; barriers and everything
        // else unhandled: refuse.
        _ => return None,
    })
}

fn map_op_xmm(op: &Operand, from: Xmm, to: Xmm) -> Operand {
    match op {
        Operand::Xmm(x) if *x == from => Operand::Xmm(to),
        other => *other,
    }
}

/// XMM counterpart of [`rename_gpr`].
fn rename_xmm(inst: &Inst, from: Xmm, to: Xmm) -> Option<Inst> {
    if !references(inst, Loc::Xmm(from), false) {
        return Some(*inst);
    }
    let x = |r: &Xmm| if *r == from { to } else { *r };
    let o = |op: &Operand| map_op_xmm(op, from, to);
    Some(match inst {
        Inst::MovSd { dst, src } => Inst::MovSd {
            dst: o(dst),
            src: o(src),
        },
        Inst::MovUpd { dst, src } => Inst::MovUpd {
            dst: o(dst),
            src: o(src),
        },
        Inst::Sse { op, dst, src } => Inst::Sse {
            op: *op,
            dst: x(dst),
            src: o(src),
        },
        Inst::Ucomisd { a, b } => Inst::Ucomisd { a: x(a), b: o(b) },
        Inst::Cvtsi2sd { w, dst, src } => Inst::Cvtsi2sd {
            w: *w,
            dst: x(dst),
            src: *src,
        },
        Inst::Cvttsd2si { w, dst, src } => Inst::Cvttsd2si {
            w: *w,
            dst: *dst,
            src: o(src),
        },
        _ => return None,
    })
}

fn rename(inst: &Inst, from: Loc, to: Loc) -> Option<Inst> {
    match (from, to) {
        (Loc::Gpr(f), Loc::Gpr(t)) => rename_gpr(inst, f, t),
        (Loc::Xmm(f), Loc::Xmm(t)) => rename_xmm(inst, f, t),
        _ => None,
    }
}

/// The copy shapes both copy passes recognize: `(dst, src, width class)`.
fn as_copy(inst: &Inst, so: bool) -> Option<(Loc, Loc)> {
    match inst {
        Inst::Mov {
            w: Width::W64,
            dst: Operand::Reg(d),
            src: Operand::Reg(s),
        } if d != s && *d != Gpr::Rsp && *s != Gpr::Rsp && *d != Gpr::Rbp && *s != Gpr::Rbp => {
            Some((Loc::Gpr(*d), Loc::Gpr(*s)))
        }
        // Register movsd merges the high lane: only a real copy when no
        // high lane can be observed.
        Inst::MovSd {
            dst: Operand::Xmm(d),
            src: Operand::Xmm(s),
        } if so && d != s => Some((Loc::Xmm(*d), Loc::Xmm(*s))),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Phase 2d: backward copy coalescing
// ---------------------------------------------------------------------------

/// For a trailing copy `d ← s` where `s` dies, rename `s` to `d` across
/// the window back to `s`'s full definition and drop the copy. The walk
/// deliberately steps over read-modify-write instructions of `s` (e.g.
/// `addsd s, x`) to reach the real definition — that is what collapses
/// the accumulator pattern `mov s, d; op s, x; mov d, s` into `op d, x`.
fn coalesce_backward(b: &mut CapturedBlock, live_out: LiveSet, so: bool) -> u64 {
    let mut removed = 0;
    let mut j = b.insts.len();
    while j > 0 {
        j -= 1;
        let Some((d, s)) = as_copy(&b.insts[j].inst, so) else {
            continue;
        };
        if live_after(b, j, live_out, so).has(s) {
            continue;
        }
        // Walk back to s's full definition, collecting the rename window.
        let mut window: Vec<usize> = Vec::new();
        let mut def: Option<(usize, bool)> = None; // (index, drop as self-copy)
        for k in (0..j).rev() {
            let inst = &b.insts[k].inst;
            if defuse::is_barrier(inst) {
                break;
            }
            if full_def(inst, so) && writes_loc(inst, s) {
                // Only a definition that does not also *read* s ends the
                // walk — a read-modify-write like `imul s, x` or `addsd s,
                // x` merely extends the chain and must be renamed along
                // with it (fall through to the window logic below).
                let mut reads_s = false;
                for_each_read_so(inst, so, &mut |l| reads_s |= l == s);
                if !reads_s {
                    // `mov s, d` at the window start renames to a self-move.
                    let self_copy =
                        matches!(as_copy(inst, so), Some((cd, cs)) if cd == s && cs == d);
                    if !self_copy && references(inst, d, so) {
                        break;
                    }
                    def = Some((k, self_copy));
                    break;
                }
            }
            if references(inst, d, so) {
                break;
            }
            if references(inst, s, so) {
                window.push(k);
            }
        }
        let Some((w, drop_def)) = def else {
            continue;
        };
        // Every touched instruction must rename structurally.
        let ok = window
            .iter()
            .chain((!drop_def).then_some(&w))
            .all(|&k| rename(&b.insts[k].inst, s, d).is_some());
        if !ok {
            continue;
        }
        for &k in window.iter().chain((!drop_def).then_some(&w)) {
            b.insts[k].inst = rename(&b.insts[k].inst, s, d).unwrap();
        }
        b.insts.remove(j);
        removed += 1;
        if drop_def {
            b.insts.remove(w);
            removed += 1;
            j = j.saturating_sub(1);
        }
    }
    removed
}

// ---------------------------------------------------------------------------
// Phase 2e: forward copy propagation
// ---------------------------------------------------------------------------

/// For a copy `d ← s`, rewrite downstream pure reads of `d` to `s` (while
/// `s` is unclobbered) and drop the copy once `d` is fully redefined — or
/// dead at the block boundary.
fn propagate_copies(b: &mut CapturedBlock, live_out: LiveSet, so: bool) -> u64 {
    let mut removed = 0;
    let mut i = 0;
    'copies: while i < b.insts.len() {
        let Some((d, s)) = as_copy(&b.insts[i].inst, so) else {
            i += 1;
            continue;
        };
        let mut renames: Vec<usize> = Vec::new();
        let mut s_written = false;
        let mut closed = false; // d fully redefined downstream
        for k in i + 1..b.insts.len() {
            let inst = &b.insts[k].inst;
            if defuse::is_barrier(inst) {
                i += 1;
                continue 'copies;
            }
            let mut reads_d = false;
            for_each_read_so(inst, so, &mut |l| reads_d |= l == d);
            if reads_d {
                if s_written || rename(inst, d, s).is_none() {
                    i += 1;
                    continue 'copies;
                }
                renames.push(k);
            }
            if writes_loc(inst, d) {
                if full_def(inst, so) && !reads_d {
                    closed = true;
                    break;
                }
                // Partial redefinition (or a full one that also reads d —
                // renaming would corrupt the def): give up on this copy.
                i += 1;
                continue 'copies;
            }
            if writes_loc(inst, s) {
                s_written = true;
            }
        }
        if !closed && live_out.has(d) {
            i += 1;
            continue;
        }
        for &k in &renames {
            b.insts[k].inst = rename(&b.insts[k].inst, d, s).unwrap();
        }
        b.insts.remove(i);
        removed += 1;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::BlockId;

    fn block(insts: Vec<Inst>) -> CapturedBlock {
        let mut b = CapturedBlock::pending(0x1000);
        b.insts = insts.into_iter().map(CapturedInst::plain).collect();
        b.term = Terminator::Ret;
        b.traced = true;
        b
    }

    fn run(insts: Vec<Inst>) -> Vec<Inst> {
        let mut blocks = vec![block(insts)];
        allocate(&mut blocks, false);
        blocks[0].insts.iter().map(|ci| ci.inst).collect()
    }

    fn movsd_load(dst: Xmm, addr: i32) -> Inst {
        Inst::MovSd {
            dst: Operand::Xmm(dst),
            src: Operand::Mem(MemRef::abs(addr)),
        }
    }

    fn addsd(dst: Xmm, src: Xmm) -> Inst {
        Inst::Sse {
            op: SseOp::Addsd,
            dst,
            src: Operand::Xmm(src),
        }
    }

    #[test]
    fn rsp_pair_cancelled_when_flags_dead() {
        let out = run(vec![
            Inst::Alu {
                op: AluOp::Sub,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rsp),
                src: Operand::Imm(8),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(1),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rsp),
                src: Operand::Imm(8),
            },
        ]);
        assert_eq!(out.len(), 1, "pair removed, payload kept: {out:?}");
    }

    #[test]
    fn rsp_pair_kept_when_flags_read() {
        let insts = vec![
            Inst::Alu {
                op: AluOp::Sub,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rsp),
                src: Operand::Imm(8),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rsp),
                src: Operand::Imm(8),
            },
            Inst::Setcc {
                cond: Cond::E,
                dst: Operand::Reg(Gpr::Rax),
            },
        ];
        let out = run(insts);
        assert_eq!(out.len(), 3, "setcc reads the add's flags: {out:?}");
    }

    #[test]
    fn rsp_pair_kept_when_interior_references_rsp() {
        let out = run(vec![
            Inst::Alu {
                op: AluOp::Sub,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rsp),
                src: Operand::Imm(8),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Mem(MemRef::base(Gpr::Rsp)),
                src: Operand::Reg(Gpr::Rax),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rsp),
                src: Operand::Imm(8),
            },
        ]);
        assert_eq!(out.len(), 3, "interior store uses the slot: {out:?}");
    }

    #[test]
    fn accumulator_triple_coalesces_to_one_op() {
        // load xmm2 ; movsd xmm0, xmm15 ; addsd xmm0, xmm2 ;
        // movsd xmm15, xmm0 ; movsd xmm0, xmm15 (epilogue) — the copy
        // round-trips through xmm0 must collapse to a single addsd; the
        // exact accumulator register is the allocator's choice.
        let out = run(vec![
            movsd_load(Xmm::Xmm2, 0x601000),
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm0),
                src: Operand::Xmm(Xmm::Xmm15),
            },
            addsd(Xmm::Xmm0, Xmm::Xmm2),
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm15),
                src: Operand::Xmm(Xmm::Xmm0),
            },
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm0),
                src: Operand::Xmm(Xmm::Xmm15),
            },
        ]);
        let adds: Vec<&Inst> = out
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Sse {
                        op: SseOp::Addsd,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(adds.len(), 1, "one addsd survives: {out:?}");
        assert!(
            matches!(
                adds[0],
                Inst::Sse {
                    src: Operand::Xmm(Xmm::Xmm2),
                    ..
                }
            ),
            "{out:?}"
        );
        assert!(out.len() <= 3, "copy chain collapsed: {out:?}");
    }

    #[test]
    fn load_copy_pair_folds_into_direct_load() {
        // movsd xmm0, [abs] ; movsd xmm1, xmm0 ; (xmm0 redefined)
        let out = run(vec![
            movsd_load(Xmm::Xmm0, 0x601000),
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm1),
                src: Operand::Xmm(Xmm::Xmm0),
            },
            movsd_load(Xmm::Xmm0, 0x601008),
            addsd(Xmm::Xmm0, Xmm::Xmm1),
        ]);
        assert!(
            out.contains(&movsd_load(Xmm::Xmm1, 0x601000)),
            "load renamed into xmm1: {out:?}"
        );
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn address_triple_folds_into_base_disp() {
        // mov rax, r11 ; add rax, 0x10 ; movsd xmm0, [rax]  (rax then dead)
        let out = run(vec![
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::R11),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(0x10),
            },
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm0),
                src: Operand::Mem(MemRef::base(Gpr::Rax)),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(0),
            },
        ]);
        assert!(
            out.contains(&Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm0),
                src: Operand::Mem(MemRef::base_disp(Gpr::R11, 0x10)),
            }),
            "{out:?}"
        );
    }

    #[test]
    fn address_fold_blocked_when_base_live() {
        // Same triple but rax is the (int) return value: live-out.
        let out = run(vec![
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::R11),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(0x10),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Mem(MemRef::base(Gpr::Rax)),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Mem(MemRef::abs(0x601000)),
                src: Operand::Reg(Gpr::Rcx),
            },
        ]);
        assert!(
            out.contains(&Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::R11),
            }),
            "rax is live-out; the copy must survive: {out:?}"
        );
    }

    #[test]
    fn dead_absolute_load_removed_with_cfg_liveness() {
        // A pool load whose destination dies before the block ends.
        let out = run(vec![
            movsd_load(Xmm::Xmm3, 0x601000),
            movsd_load(Xmm::Xmm0, 0x601008),
        ]);
        assert_eq!(out, vec![movsd_load(Xmm::Xmm0, 0x601008)]);
    }

    #[test]
    fn untracked_base_load_survives_even_when_dead() {
        // [r11] could fault differently if elided: must stay.
        let load = Inst::MovSd {
            dst: Operand::Xmm(Xmm::Xmm3),
            src: Operand::Mem(MemRef::base(Gpr::R11)),
        };
        let out = run(vec![load, movsd_load(Xmm::Xmm0, 0x601008)]);
        assert!(out.contains(&load), "{out:?}");
    }

    #[test]
    fn live_out_register_not_removed() {
        // xmm0 is the float return register: its producer must survive.
        let out = run(vec![movsd_load(Xmm::Xmm0, 0x601000)]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cross_block_liveness_blocks_removal() {
        // Block 0 defines rcx, block 1 (loop target) reads it: the def in
        // block 0 is live across the edge even though block 0 never reads
        // it again.
        let mut b0 = block(vec![Inst::Mov {
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rcx),
            src: Operand::Imm(7),
        }]);
        b0.term = Terminator::Jmp(BlockId(1));
        let b1 = block(vec![Inst::Mov {
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rax),
            src: Operand::Reg(Gpr::Rcx),
        }]);
        let mut blocks = vec![b0, b1];
        allocate(&mut blocks, false);
        assert_eq!(blocks[0].insts.len(), 1, "def feeds the successor");
    }

    #[test]
    fn slot_allocated_across_blocks() {
        // A slot written in block 0 and read in block 1 — promote_slots
        // (single-pool, whole-function free registers) already handles
        // this, but here rcx is busy in block 2, which is outside the
        // slot's extent: the CFG-aware allocator must still promote.
        let store = CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
                src: Operand::Reg(Gpr::Rcx),
            },
            frame_store: Some(-8),
            frame_load: None,
        };
        let load = CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
            },
            frame_store: None,
            frame_load: Some(-8),
        };
        let mut b0 = block(vec![]);
        b0.insts.push(store);
        b0.term = Terminator::Jmp(BlockId(1));
        let mut b1 = block(vec![]);
        b1.insts.push(load);
        b1.term = Terminator::Ret;
        // Uses every pool register except r8 somewhere outside the extent?
        // No — extent is blocks 0 and 1; make r11 busy only in block 1 so
        // the allocator must skip it and pick r10.
        b1.insts.push(CapturedInst::plain(Inst::Mov {
            w: Width::W64,
            dst: Operand::Mem(MemRef::abs(0x601000)),
            src: Operand::Reg(Gpr::R11),
        }));
        let mut blocks = vec![b0, b1];
        allocate_slots(&mut blocks, false);
        assert_eq!(
            blocks[0].insts[0].inst,
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::R10),
                src: Operand::Reg(Gpr::Rcx),
            },
            "slot lives in r10: {:?}",
            blocks[0].insts
        );
        assert_eq!(
            blocks[1].insts[0].inst,
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::R10),
            }
        );
    }

    #[test]
    fn escaped_frame_blocks_slot_allocation() {
        let store = CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
                src: Operand::Reg(Gpr::Rcx),
            },
            frame_store: Some(-8),
            frame_load: None,
        };
        let load = CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
            },
            frame_store: None,
            frame_load: Some(-8),
        };
        let mut b = block(vec![]);
        b.insts = vec![store, load];
        let mut blocks = vec![b];
        assert_eq!(allocate_slots(&mut blocks, true), 0);
        assert!(matches!(
            blocks[0].insts[0].inst,
            Inst::Mov {
                dst: Operand::Mem(_),
                ..
            }
        ));
    }

    #[test]
    fn barrier_block_in_extent_spills() {
        // The slot's only blocks contain a call: spill fallback (identity).
        let store = CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
                src: Operand::Reg(Gpr::Rcx),
            },
            frame_store: Some(-8),
            frame_load: None,
        };
        let load = CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
            },
            frame_store: None,
            frame_load: Some(-8),
        };
        let mut b = block(vec![]);
        b.insts = vec![
            store,
            CapturedInst::plain(Inst::CallRel { target: 0x400000 }),
            load,
        ];
        let mut blocks = vec![b];
        assert_eq!(allocate_slots(&mut blocks, false), 0);
    }

    #[test]
    fn forward_copy_propagation_rewrites_reads() {
        // mov rcx, r11 ; mov rdx, [rcx+8] ; mov rcx, 0 → read goes to r11.
        let out = run(vec![
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Reg(Gpr::R11),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rdx),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rcx, 8)),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdx),
            },
        ]);
        assert!(
            out.contains(&Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rdx),
                src: Operand::Mem(MemRef::base_disp(Gpr::R11, 8)),
            }),
            "{out:?}"
        );
        assert!(
            !out.iter().any(|i| matches!(
                i,
                Inst::Mov {
                    dst: Operand::Reg(Gpr::Rcx),
                    ..
                }
            )),
            "copy removed: {out:?}"
        );
    }

    #[test]
    fn copy_not_propagated_past_source_clobber() {
        // mov rcx, rbx ; mov rbx, 0 ; mov rax, rcx — rax must end up with
        // rbx's PRE-clobber value. Coalescing may legally rewrite the
        // chain (e.g. to `mov rax, rbx ; mov rbx, 0`), but the rax def
        // must always precede the clobber and never source the constant.
        let out = run(vec![
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Reg(Gpr::Rbx),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rbx),
                src: Operand::Imm(0),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rcx),
            },
        ]);
        let rax_def = out
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Inst::Mov {
                        dst: Operand::Reg(Gpr::Rax),
                        ..
                    }
                )
            })
            .expect("rax still defined");
        let clobber = out
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Inst::Mov {
                        dst: Operand::Reg(Gpr::Rbx),
                        src: Operand::Imm(0),
                        ..
                    }
                )
            })
            .expect("rbx clobber is live-out and must stay");
        assert!(
            rax_def < clobber,
            "rax reads the pre-clobber value: {out:?}"
        );
        assert!(
            matches!(
                out[rax_def],
                Inst::Mov {
                    src: Operand::Reg(Gpr::Rbx) | Operand::Reg(Gpr::Rcx),
                    ..
                }
            ),
            "{out:?}"
        );
    }

    #[test]
    fn movsd_copies_untouched_with_packed_code_present() {
        // A movupd anywhere disables the scalar-only reasoning.
        let out = run(vec![
            Inst::MovUpd {
                dst: Operand::Xmm(Xmm::Xmm7),
                src: Operand::Mem(MemRef::abs(0x601000)),
            },
            movsd_load(Xmm::Xmm2, 0x601010),
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm0),
                src: Operand::Xmm(Xmm::Xmm15),
            },
            addsd(Xmm::Xmm0, Xmm::Xmm2),
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm15),
                src: Operand::Xmm(Xmm::Xmm0),
            },
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm0),
                src: Operand::Xmm(Xmm::Xmm15),
            },
        ]);
        assert!(
            out.contains(&addsd(Xmm::Xmm0, Xmm::Xmm2)),
            "no high-lane-unsafe rename: {out:?}"
        );
    }
}
