//! Block layout and final code emission (§III.G):
//!
//! *"Determination of the best order of generated blocks for the final
//! rewritten code. Generation of binary code from captured blocks. [...] Do
//! relocation of all needed jumps, given start addresses from the previous
//! step."*

use crate::capture::{BlockId, CapturedBlock, Terminator};
use crate::error::RewriteError;
use brew_image::Image;
use brew_x86::prelude::*;

/// Lowered terminator form, decided by layout (fall-through suppression).
enum TermForm {
    Nothing,
    Jmp(BlockId),
    Jcc(Cond, BlockId),
    JccJmp(Cond, BlockId, BlockId),
}

const JCC_LEN: usize = 6;
const JMP_LEN: usize = 5;

impl TermForm {
    fn len(&self) -> usize {
        match self {
            TermForm::Nothing => 0,
            TermForm::Jmp(_) => JMP_LEN,
            TermForm::Jcc(..) => JCC_LEN,
            TermForm::JccJmp(..) => JCC_LEN + JMP_LEN,
        }
    }
}

/// Order blocks for emission: depth-first from the entry, preferring the
/// fall-through successor so most branches become not-taken ("unless we
/// fall-through from the previously generated code...").
fn layout(blocks: &[CapturedBlock], entry: BlockId) -> Vec<BlockId> {
    let mut order = Vec::with_capacity(blocks.len());
    let mut seen = vec![false; blocks.len()];
    let mut stack = vec![entry];
    while let Some(b) = stack.pop() {
        if seen[b.0] {
            continue;
        }
        seen[b.0] = true;
        order.push(b);
        match blocks[b.0].term {
            Terminator::Ret => {}
            Terminator::Jmp(t) => stack.push(t),
            Terminator::Jcc { taken, fall, .. } => {
                // Push taken first so fall is visited (and laid out) next.
                stack.push(taken);
                stack.push(fall);
            }
        }
    }
    order
}

/// Emit all blocks reachable from `entry` into the image's JIT segment.
/// Returns `(entry address, total length)`.
pub fn layout_and_emit(
    blocks: &[CapturedBlock],
    entry: BlockId,
    img: &Image,
    max_bytes: usize,
) -> Result<(u64, usize), RewriteError> {
    layout_and_emit_traced(blocks, entry, img, max_bytes, None)
}

/// [`layout_and_emit`] with optional span recording: `cat:"emit-step"`
/// spans for block layout, encoding/relocation and the final commit.
pub fn layout_and_emit_traced(
    blocks: &[CapturedBlock],
    entry: BlockId,
    img: &Image,
    max_bytes: usize,
    mut rec: Option<&mut crate::telemetry::SpanRecorder>,
) -> Result<(u64, usize), RewriteError> {
    let t_layout = rec.as_ref().map(|r| r.now_ns());
    let order = layout(blocks, entry);
    debug_assert_eq!(order.first(), Some(&entry));

    // Decide terminator forms based on which block comes next.
    let mut forms: Vec<TermForm> = Vec::with_capacity(order.len());
    for (i, b) in order.iter().enumerate() {
        let next = order.get(i + 1).copied();
        let form = match blocks[b.0].term {
            Terminator::Ret => TermForm::Nothing, // body ends with `ret`
            Terminator::Jmp(t) => {
                if next == Some(t) {
                    TermForm::Nothing
                } else {
                    TermForm::Jmp(t)
                }
            }
            Terminator::Jcc { cond, taken, fall } => {
                if next == Some(fall) {
                    TermForm::Jcc(cond, taken)
                } else if next == Some(taken) {
                    TermForm::Jcc(cond.negate(), fall)
                } else {
                    TermForm::JccJmp(cond, taken, fall)
                }
            }
        };
        forms.push(form);
    }

    // Assign offsets (lengths are placement-independent).
    let mut offsets = vec![0usize; blocks.len()];
    let mut off = 0usize;
    for (i, b) in order.iter().enumerate() {
        offsets[b.0] = off;
        for ci in &blocks[b.0].insts {
            off += encoded_len(&ci.inst)?;
        }
        off += forms[i].len();
    }
    let total = off;
    if total > max_bytes {
        return Err(RewriteError::OutOfCodeSpace);
    }
    if let (Some(r), Some(t0)) = (rec.as_deref_mut(), t_layout) {
        r.complete(
            "layout",
            "emit-step",
            t0,
            vec![
                ("blocks".into(), order.len().to_string()),
                ("bytes".into(), total.to_string()),
            ],
        );
    }

    // Atomically claim the region (race-free against concurrent emitters),
    // then encode with final addresses.
    let t_encode = rec.as_ref().map(|r| r.now_ns());
    let base = img
        .try_alloc_jit(total as u64)
        .ok_or(RewriteError::OutOfCodeSpace)?;
    let mut bytes = Vec::with_capacity(total);
    for (i, b) in order.iter().enumerate() {
        debug_assert_eq!(bytes.len(), offsets[b.0]);
        for ci in &blocks[b.0].insts {
            let addr = base + bytes.len() as u64;
            encode(&ci.inst, addr, &mut bytes)?;
        }
        let target = |t: BlockId| base + offsets[t.0] as u64;
        match &forms[i] {
            TermForm::Nothing => {}
            TermForm::Jmp(t) => {
                let addr = base + bytes.len() as u64;
                encode(&Inst::JmpRel { target: target(*t) }, addr, &mut bytes)?;
            }
            TermForm::Jcc(c, t) => {
                let addr = base + bytes.len() as u64;
                encode(
                    &Inst::Jcc {
                        cond: *c,
                        target: target(*t),
                    },
                    addr,
                    &mut bytes,
                )?;
            }
            TermForm::JccJmp(c, t, f) => {
                let addr = base + bytes.len() as u64;
                encode(
                    &Inst::Jcc {
                        cond: *c,
                        target: target(*t),
                    },
                    addr,
                    &mut bytes,
                )?;
                let addr = base + bytes.len() as u64;
                encode(&Inst::JmpRel { target: target(*f) }, addr, &mut bytes)?;
            }
        }
    }
    debug_assert_eq!(bytes.len(), total);
    if let (Some(r), Some(t0)) = (rec.as_deref_mut(), t_encode) {
        r.complete(
            "encode+relocate",
            "emit-step",
            t0,
            vec![("base".into(), format!("{base:#x}"))],
        );
    }
    let t_commit = rec.as_ref().map(|r| r.now_ns());
    img.write_bytes(base, &bytes)
        .map_err(|_| RewriteError::OutOfCodeSpace)?;
    if let (Some(r), Some(t0)) = (rec, t_commit) {
        r.complete("commit", "emit-step", t0, vec![]);
    }
    Ok((base, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CapturedInst;

    fn ret_block() -> CapturedBlock {
        let mut b = CapturedBlock::pending(0);
        b.insts = vec![CapturedInst::plain(Inst::Ret)];
        b.term = Terminator::Ret;
        b.traced = true;
        b
    }

    #[test]
    fn straight_line() {
        let img = Image::new();
        let mut b0 = CapturedBlock::pending(0);
        b0.insts = vec![CapturedInst::plain(Inst::Mov {
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rax),
            src: Operand::Imm(42),
        })];
        b0.term = Terminator::Jmp(BlockId(1));
        let blocks = vec![b0, ret_block()];
        let (addr, len) = layout_and_emit(&blocks, BlockId(0), &img, 1 << 16).unwrap();
        // Fallthrough: no jmp emitted between blocks.
        let win = img.code_window(addr, len).unwrap();
        let (insts, err) = decode_all(&win, addr);
        assert!(err.is_none());
        assert_eq!(insts.len(), 2);
        assert!(matches!(insts[1].1, Inst::Ret));
    }

    #[test]
    fn diamond_layout_prefers_fallthrough() {
        // b0: jcc e -> b2 else b1 ; b1: ret ; b2: ret
        let mut b0 = CapturedBlock::pending(0);
        b0.term = Terminator::Jcc {
            cond: Cond::E,
            taken: BlockId(2),
            fall: BlockId(1),
        };
        let blocks = vec![b0, ret_block(), ret_block()];
        let img = Image::new();
        let (addr, len) = layout_and_emit(&blocks, BlockId(0), &img, 1 << 16).unwrap();
        let win = img.code_window(addr, len).unwrap();
        let (insts, err) = decode_all(&win, addr);
        assert!(err.is_none());
        // je <b2>; ret (b1 fallthrough); ret (b2)
        assert_eq!(insts.len(), 3);
        let Inst::Jcc { cond, target } = insts[0].1 else {
            panic!()
        };
        assert_eq!(cond, Cond::E);
        assert_eq!(target, insts[2].0);
    }

    #[test]
    fn loop_backedge() {
        // b0: dec rax; jcc ne -> b0 else b1
        let mut b0 = CapturedBlock::pending(0);
        b0.insts = vec![CapturedInst::plain(Inst::Unary {
            op: UnOp::Dec,
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rax),
        })];
        b0.term = Terminator::Jcc {
            cond: Cond::Ne,
            taken: BlockId(0),
            fall: BlockId(1),
        };
        let blocks = vec![b0, ret_block()];
        let img = Image::new();
        let (addr, len) = layout_and_emit(&blocks, BlockId(0), &img, 1 << 16).unwrap();
        let win = img.code_window(addr, len).unwrap();
        let (insts, err) = decode_all(&win, addr);
        assert!(err.is_none());
        let Inst::Jcc { target, .. } = insts[1].1 else {
            panic!()
        };
        assert_eq!(target, addr, "backedge targets the block start");
    }

    #[test]
    fn code_size_limit() {
        let blocks = vec![ret_block()];
        let img = Image::new();
        assert!(matches!(
            layout_and_emit(&blocks, BlockId(0), &img, 0),
            Err(RewriteError::OutOfCodeSpace)
        ));
    }

    #[test]
    fn unreachable_blocks_not_emitted() {
        let blocks = vec![ret_block(), ret_block(), ret_block()];
        let img = Image::new();
        let (_, len) = layout_and_emit(&blocks, BlockId(0), &img, 1 << 16).unwrap();
        assert_eq!(len, 1, "only the entry ret");
    }
}
