//! The vectorization target (§IV/§V.B future work).
//!
//! The paper plans "a simple greedy vectorization pass which may take
//! programmer knowledge and runtime information provided via rewriter
//! configuration into account" and expects whole-sweep rewriting to win
//! once "(1) instruction reordering removing redundant loads, (2)
//! vectorization by replacing scalar instruction with vector versions"
//! exist. Those passes remain future work here too (faithfully); this
//! module quantifies the *headroom* they would unlock: a hand-scheduled
//! packed-double sweep — the exact code shape such a pass would emit —
//! assembled through the same encoder and executed by the same emulator
//! and cost model as every other variant.

use brew_image::Image;
use brew_minic::asm::Asm;
use brew_x86::prelude::*;

/// Build a hand-scheduled *scalar* sweep with the same register-resident
/// code shape as [`build_packed_sweep`] but one point at a time — the
/// baseline that isolates the pure SIMD factor from scheduling quality.
/// Signature `void sweep(double* m1, double* m2)`.
pub fn build_scalar_handtuned_sweep(img: &Image, xs: i64, ys: i64) -> u64 {
    assert!(xs >= 3 && ys >= 3);
    let quarter = img.alloc_data_bytes(&0.25f64.to_bits().to_le_bytes(), 8);
    let row_bytes = xs * 8;

    let mut a = Asm::new();
    let ly = a.label();
    let lx = a.label();
    let lx_end = a.label();
    let l_end = a.label();
    let w = Width::W64;
    let imm = Operand::Imm;

    a.emit(Inst::Mov {
        w,
        dst: Gpr::R8.into(),
        src: imm(1),
    });
    a.bind(ly);
    a.emit(Inst::Alu {
        op: AluOp::Cmp,
        w,
        dst: Gpr::R8.into(),
        src: imm(ys - 1),
    });
    a.jcc(Cond::Ge, l_end);
    a.emit(Inst::ImulImm {
        w,
        dst: Gpr::R9,
        src: Gpr::R8.into(),
        imm: xs as i32,
    });
    a.emit(Inst::Mov {
        w,
        dst: Gpr::R10.into(),
        src: imm(1),
    });
    a.bind(lx);
    a.emit(Inst::Alu {
        op: AluOp::Cmp,
        w,
        dst: Gpr::R10.into(),
        src: imm(xs - 1),
    });
    a.jcc(Cond::Ge, lx_end);
    a.emit(Inst::Lea {
        dst: Gpr::R11,
        src: MemRef::base_index(Gpr::R9, Gpr::R10, 1, 0),
    });
    a.emit(Inst::Lea {
        dst: Gpr::Rax,
        src: MemRef::base_index(Gpr::Rdi, Gpr::R11, 8, 0),
    });
    a.emit(Inst::MovSd {
        dst: Xmm::Xmm0.into(),
        src: MemRef::base_disp(Gpr::Rax, -8).into(),
    });
    a.emit(Inst::Sse {
        op: SseOp::Addsd,
        dst: Xmm::Xmm0,
        src: MemRef::base_disp(Gpr::Rax, 8).into(),
    });
    a.emit(Inst::Sse {
        op: SseOp::Addsd,
        dst: Xmm::Xmm0,
        src: MemRef::base_disp(Gpr::Rax, -row_bytes as i32).into(),
    });
    a.emit(Inst::Sse {
        op: SseOp::Addsd,
        dst: Xmm::Xmm0,
        src: MemRef::base_disp(Gpr::Rax, row_bytes as i32).into(),
    });
    a.emit(Inst::Sse {
        op: SseOp::Mulsd,
        dst: Xmm::Xmm0,
        src: MemRef::abs(quarter as i32).into(),
    });
    a.emit(Inst::Sse {
        op: SseOp::Subsd,
        dst: Xmm::Xmm0,
        src: MemRef::base(Gpr::Rax).into(),
    });
    a.emit(Inst::Lea {
        dst: Gpr::Rcx,
        src: MemRef::base_index(Gpr::Rsi, Gpr::R11, 8, 0),
    });
    a.emit(Inst::MovSd {
        dst: MemRef::base(Gpr::Rcx).into(),
        src: Xmm::Xmm0.into(),
    });
    a.emit(Inst::Alu {
        op: AluOp::Add,
        w,
        dst: Gpr::R10.into(),
        src: imm(1),
    });
    a.jmp(lx);
    a.bind(lx_end);
    a.emit(Inst::Alu {
        op: AluOp::Add,
        w,
        dst: Gpr::R8.into(),
        src: imm(1),
    });
    a.jmp(ly);
    a.bind(l_end);
    a.emit(Inst::Ret);

    let len = a.byte_len().expect("encodable");
    let addr = img.alloc_code(&vec![0u8; len]);
    let bytes = a.assemble(addr, &|_| None).expect("assembles");
    img.write_bytes(addr, &bytes).expect("writes");
    img.define("sweep_scalar_handtuned", addr);
    addr
}

/// Build a packed (2-lane) 5-point stencil sweep specialized for `xs`×`ys`
/// matrices with the standard coefficients, signature
/// `void sweep(double* m1, double* m2)`. Requires even `xs` (the interior
/// width must pair up). Returns the entry address.
pub fn build_packed_sweep(img: &Image, xs: i64, ys: i64) -> u64 {
    assert!(xs % 2 == 0 && xs >= 4 && ys >= 3, "interior must pair up");
    let quarter = img.alloc_data_bytes(
        &{
            let mut b = [0u8; 16];
            b[..8].copy_from_slice(&0.25f64.to_bits().to_le_bytes());
            b[8..].copy_from_slice(&0.25f64.to_bits().to_le_bytes());
            b
        },
        16,
    );
    let row_bytes = xs * 8;

    let mut a = Asm::new();
    let ly = a.label();
    let lx = a.label();
    let lx_end = a.label();
    let l_end = a.label();

    let w = Width::W64;
    let imm = Operand::Imm;

    // r8 = y = 1
    a.emit(Inst::Mov {
        w,
        dst: Gpr::R8.into(),
        src: imm(1),
    });
    a.bind(ly);
    a.emit(Inst::Alu {
        op: AluOp::Cmp,
        w,
        dst: Gpr::R8.into(),
        src: imm(ys - 1),
    });
    a.jcc(Cond::Ge, l_end);
    // r9 = y * xs
    a.emit(Inst::ImulImm {
        w,
        dst: Gpr::R9,
        src: Gpr::R8.into(),
        imm: xs as i32,
    });
    // r10 = x = 1
    a.emit(Inst::Mov {
        w,
        dst: Gpr::R10.into(),
        src: imm(1),
    });
    a.bind(lx);
    a.emit(Inst::Alu {
        op: AluOp::Cmp,
        w,
        dst: Gpr::R10.into(),
        src: imm(xs - 1),
    });
    a.jcc(Cond::Ge, lx_end);
    // r11 = i = y*xs + x ; rax = &m1[i]
    a.emit(Inst::Lea {
        dst: Gpr::R11,
        src: MemRef::base_index(Gpr::R9, Gpr::R10, 1, 0),
    });
    a.emit(Inst::Lea {
        dst: Gpr::Rax,
        src: MemRef::base_index(Gpr::Rdi, Gpr::R11, 8, 0),
    });
    // xmm0 = [m[i-1], m[i]] + [m[i+1], m[i+2]] + up pair + down pair
    a.emit(Inst::MovUpd {
        dst: Xmm::Xmm0.into(),
        src: MemRef::base_disp(Gpr::Rax, -8).into(),
    });
    a.emit(Inst::MovUpd {
        dst: Xmm::Xmm1.into(),
        src: MemRef::base_disp(Gpr::Rax, 8).into(),
    });
    a.emit(Inst::Sse {
        op: SseOp::Addpd,
        dst: Xmm::Xmm0,
        src: Xmm::Xmm1.into(),
    });
    a.emit(Inst::MovUpd {
        dst: Xmm::Xmm1.into(),
        src: MemRef::base_disp(Gpr::Rax, -row_bytes as i32).into(),
    });
    a.emit(Inst::Sse {
        op: SseOp::Addpd,
        dst: Xmm::Xmm0,
        src: Xmm::Xmm1.into(),
    });
    a.emit(Inst::MovUpd {
        dst: Xmm::Xmm1.into(),
        src: MemRef::base_disp(Gpr::Rax, row_bytes as i32).into(),
    });
    a.emit(Inst::Sse {
        op: SseOp::Addpd,
        dst: Xmm::Xmm0,
        src: Xmm::Xmm1.into(),
    });
    // * [0.25, 0.25]
    a.emit(Inst::Sse {
        op: SseOp::Mulpd,
        dst: Xmm::Xmm0,
        src: MemRef::abs(quarter as i32).into(),
    });
    // - center pair
    a.emit(Inst::MovUpd {
        dst: Xmm::Xmm1.into(),
        src: MemRef::base(Gpr::Rax).into(),
    });
    a.emit(Inst::Sse {
        op: SseOp::Subpd,
        dst: Xmm::Xmm0,
        src: Xmm::Xmm1.into(),
    });
    // store to &m2[i]
    a.emit(Inst::Lea {
        dst: Gpr::Rcx,
        src: MemRef::base_index(Gpr::Rsi, Gpr::R11, 8, 0),
    });
    a.emit(Inst::MovUpd {
        dst: MemRef::base(Gpr::Rcx).into(),
        src: Xmm::Xmm0.into(),
    });
    // x += 2; loop
    a.emit(Inst::Alu {
        op: AluOp::Add,
        w,
        dst: Gpr::R10.into(),
        src: imm(2),
    });
    a.jmp(lx);
    a.bind(lx_end);
    a.emit(Inst::Alu {
        op: AluOp::Add,
        w,
        dst: Gpr::R8.into(),
        src: imm(1),
    });
    a.jmp(ly);
    a.bind(l_end);
    a.emit(Inst::Ret);

    let len = a.byte_len().expect("encodable");
    let addr = img.alloc_code(&vec![0u8; len]);
    let bytes = a.assemble(addr, &|_| None).expect("assembles");
    img.write_bytes(addr, &bytes).expect("writes");
    img.define("sweep_packed", addr);
    addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stencil, Variant};
    use brew_emu::{CallArgs, Machine};

    #[test]
    fn packed_sweep_matches_host_reference() {
        let (xs, ys, iters) = (12i64, 9i64, 3u32);
        let s = Stencil::new(xs, ys);
        let packed = build_packed_sweep(&s.img, xs, ys);
        let mut m = Machine::new();
        let (mut src, mut dst) = (s.m1, s.m2);
        for _ in 0..iters {
            m.call(&s.img, packed, &CallArgs::new().ptr(src).ptr(dst))
                .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        assert_eq!(s.checksum(iters), s.host_checksum(iters));
    }

    #[test]
    fn scalar_handtuned_matches_host_reference() {
        let (xs, ys, iters) = (11i64, 9i64, 2u32);
        let s = Stencil::new(xs, ys);
        let f = build_scalar_handtuned_sweep(&s.img, xs, ys);
        let mut m = Machine::new();
        let (mut src, mut dst) = (s.m1, s.m2);
        for _ in 0..iters {
            m.call(&s.img, f, &CallArgs::new().ptr(src).ptr(dst))
                .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        assert_eq!(s.checksum(iters), s.host_checksum(iters));
    }

    #[test]
    fn packed_halves_scalar_handtuned_fp_ops() {
        let (xs, ys) = (16i64, 10i64);
        let s1 = Stencil::new(xs, ys);
        let sc = build_scalar_handtuned_sweep(&s1.img, xs, ys);
        let mut m = Machine::new();
        let scalar = m
            .call(&s1.img, sc, &CallArgs::new().ptr(s1.m1).ptr(s1.m2))
            .unwrap()
            .stats;
        let s2 = Stencil::new(xs, ys);
        let pk = build_packed_sweep(&s2.img, xs, ys);
        let packed = m
            .call(&s2.img, pk, &CallArgs::new().ptr(s2.m1).ptr(s2.m2))
            .unwrap()
            .stats;
        // Identical code shape, half the iterations: the pure SIMD factor.
        assert!(packed.fp_ops * 2 <= scalar.fp_ops + 8);
        assert!(
            packed.cycles * 3 < scalar.cycles * 2,
            "packed {} vs scalar {}",
            packed.cycles,
            scalar.cycles
        );
    }

    #[test]
    fn packed_sweep_halves_fp_work() {
        let (xs, ys) = (16i64, 10i64);
        let s = Stencil::new(xs, ys);
        let packed = build_packed_sweep(&s.img, xs, ys);
        let mut m = Machine::new();
        let packed_stats = m
            .call(&s.img, packed, &CallArgs::new().ptr(s.m1).ptr(s.m2))
            .unwrap()
            .stats;

        let mut s2 = Stencil::new(xs, ys);
        let scalar_stats = s2.run(&mut m, Variant::ManualInline, 1).unwrap();

        // Each packed op covers two points: fp op count is half (+/- edge
        // effects), and cycles beat the best scalar variant.
        assert!(
            packed_stats.fp_ops * 2 <= scalar_stats.fp_ops + 16,
            "packed {} vs scalar {} fp ops",
            packed_stats.fp_ops,
            scalar_stats.fp_ops
        );
        assert!(packed_stats.cycles < scalar_stats.cycles);
    }
}
