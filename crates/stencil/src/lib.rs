//! # brew-stencil — the paper's stencil evaluation workload
//!
//! Section V of the paper specializes a generic 2-D 5-point stencil and
//! compares it against a hand-written implementation. This crate packages
//! that study: the mini-C programs (generic / grouped / manual / sweeps),
//! a harness that runs any variant for N iterations over a `xs`×`ys`
//! matrix with model-cycle accounting, a host-side reference for
//! validation, and the rewriting recipes of Figure 5.

#![warn(missing_docs)]

pub mod programs;
pub mod simd;

use brew_core::{RetKind, RewriteResult, Rewriter, SpecRequest};
use brew_emu::{CallArgs, EmuError, Machine, Stats};
use brew_image::Image;
use brew_minic::Compiled;

/// Byte size of `struct S` (generic stencil descriptor).
pub const S_SIZE: u64 = 8 + 5 * 24;
/// Byte size of `struct SG` (grouped stencil descriptor).
pub const SG_SIZE: u64 = 8 + 2 * 80;

/// Which implementation performs the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// `sweep_generic`: generic `apply` called directly (the 2.00 s case).
    Generic,
    /// `sweep_grouped`: grouped generic `apply_grouped` (2.21 s).
    Grouped,
    /// `sweep_ptr2(apply_manual)`: hand-written stencil through a function
    /// pointer (0.74 s — the separate-compilation-unit stand-in).
    Manual,
    /// `sweep_manual_inline`: stencil inlined into the sweep (0.48 s).
    ManualInline,
    /// A whole-sweep rewrite used as a drop-in `sweep(m1,m2,xs,ys)`.
    SpecializedSweep(u64),
}

/// The stencil study harness.
pub struct Stencil {
    /// The process image holding programs, matrices and rewritten code.
    pub img: Image,
    /// Compiled program handles.
    pub prog: Compiled,
    /// Matrix width.
    pub xs: i64,
    /// Matrix height.
    pub ys: i64,
    /// First matrix (input of the first sweep).
    pub m1: u64,
    /// Second matrix.
    pub m2: u64,
}

impl Stencil {
    /// Compile the programs and allocate `xs`×`ys` matrices initialized
    /// with a deterministic heat-like pattern.
    pub fn new(xs: i64, ys: i64) -> Self {
        assert!(xs >= 3 && ys >= 3, "matrix too small for a 5-point stencil");
        let img = Image::new();
        let prog = brew_minic::compile_into(programs::STENCIL_PROGRAM, &img)
            .expect("stencil program compiles");
        let bytes = (xs * ys * 8) as u64;
        let m1 = img.alloc_heap(bytes, 16);
        let m2 = img.alloc_heap(bytes, 16);
        let mut s = Stencil {
            img,
            prog,
            xs,
            ys,
            m1,
            m2,
        };
        s.reset_matrices();
        s
    }

    /// (Re)initialize both matrices: hot boundary, patterned interior.
    pub fn reset_matrices(&mut self) {
        for y in 0..self.ys {
            for x in 0..self.xs {
                let v = Self::init_value(self.xs, self.ys, x, y);
                self.write(self.m1, x, y, v);
                self.write(self.m2, x, y, v);
            }
        }
    }

    fn init_value(xs: i64, ys: i64, x: i64, y: i64) -> f64 {
        if x == 0 || y == 0 || x == xs - 1 || y == ys - 1 {
            100.0
        } else {
            ((x * 7 + y * 13) % 11) as f64
        }
    }

    fn write(&mut self, base: u64, x: i64, y: i64, v: f64) {
        self.img
            .write_f64(base + ((y * self.xs + x) * 8) as u64, v)
            .expect("matrix write");
    }

    fn read(&self, base: u64, x: i64, y: i64) -> f64 {
        self.img
            .read_f64(base + ((y * self.xs + x) * 8) as u64)
            .expect("matrix read")
    }

    /// Address of the descriptor `s5`.
    pub fn s5(&self) -> u64 {
        self.prog.global("s5").expect("s5")
    }

    /// Address of the grouped descriptor `sg5`.
    pub fn sg5(&self) -> u64 {
        self.prog.global("sg5").expect("sg5")
    }

    // ---- rewriting recipes (Figure 5) -----------------------------------

    /// The Figure 5 request: specialize `apply` for fixed `xs` and the
    /// fixed stencil descriptor.
    pub fn apply_request(&self) -> SpecRequest {
        let s5 = self.s5();
        SpecRequest::new()
            .unknown_int() // matrix pointer
            .known_int(self.xs)
            .ptr_to_known(s5, S_SIZE)
            .ret(RetKind::F64)
    }

    /// Figure 5: specialize `apply` for fixed `xs` and the fixed stencil.
    pub fn specialize_apply(&mut self) -> Result<RewriteResult, brew_core::RewriteError> {
        let apply = self.prog.func("apply").expect("apply");
        let req = self.apply_request();
        Rewriter::new(&self.img).rewrite(apply, &req)
    }

    /// Like [`Stencil::specialize_apply`] but with an explicit pass
    /// selection (A2 ablation).
    pub fn specialize_apply_with_passes(
        &mut self,
        pc: &brew_core::PassConfig,
    ) -> Result<RewriteResult, brew_core::RewriteError> {
        let apply = self.prog.func("apply").expect("apply");
        let req = self.apply_request().passes(*pc);
        Rewriter::new(&self.img).rewrite(apply, &req)
    }

    /// §V.B: specialize the grouped variant.
    pub fn specialize_apply_grouped(&mut self) -> Result<RewriteResult, brew_core::RewriteError> {
        let f = self.prog.func("apply_grouped").expect("apply_grouped");
        let sg5 = self.sg5();
        let req = SpecRequest::new()
            .unknown_int() // matrix pointer
            .known_int(self.xs)
            .ptr_to_known(sg5, SG_SIZE)
            .ret(RetKind::F64);
        Rewriter::new(&self.img).rewrite(f, &req)
    }

    /// §V.B outlook: rewrite the *whole sweep* with controlled unrolling
    /// (`unroll` loop-body variants before world migration closes the
    /// loop). Matrix pointers stay unknown; `xs`, `ys` and the stencil are
    /// fixed; `apply` is inlined and specialized per unrolled body.
    pub fn specialize_sweep(
        &mut self,
        unroll: u32,
    ) -> Result<RewriteResult, brew_core::RewriteError> {
        let sweep = self.prog.func("sweep_generic").expect("sweep_generic");
        let s5 = self.s5();
        let req = SpecRequest::new()
            .unknown_int() // src matrix
            .unknown_int() // dst matrix
            .known_int(self.xs)
            .known_int(self.ys)
            .known_mem(s5..s5 + S_SIZE)
            .ret(RetKind::Void)
            .func(sweep, |o| {
                o.branch_unknown = true;
                o.max_variants = unroll.max(1);
            })
            .max_code_bytes(1 << 22)
            .max_trace_insts(16_000_000);
        Rewriter::new(&self.img).rewrite(sweep, &req)
    }

    // ---- execution --------------------------------------------------------

    /// Run `iters` sweeps of `variant`, ping-ponging the two matrices (the
    /// paper runs 1000 iterations on 500² matrices). Returns accumulated
    /// statistics.
    pub fn run(
        &mut self,
        m: &mut Machine,
        variant: Variant,
        iters: u32,
    ) -> Result<Stats, EmuError> {
        let (func, extra): (u64, Option<u64>) = match variant {
            Variant::Generic => (self.prog.func("sweep_generic").unwrap(), None),
            Variant::Grouped => (self.prog.func("sweep_grouped").unwrap(), None),
            Variant::Manual => (
                self.prog.func("sweep_ptr2").unwrap(),
                Some(self.prog.func("apply_manual").unwrap()),
            ),
            Variant::ManualInline => (self.prog.func("sweep_manual_inline").unwrap(), None),
            Variant::SpecializedSweep(entry) => (entry, None),
        };
        let mut total = Stats::default();
        let (mut src, mut dst) = (self.m1, self.m2);
        for _ in 0..iters {
            let mut args = CallArgs::new().ptr(src).ptr(dst).int(self.xs).int(self.ys);
            if let Some(fp) = extra {
                args = args.ptr(fp);
            }
            let out = m.call(&self.img, func, &args)?;
            total.merge(&out.stats);
            std::mem::swap(&mut src, &mut dst);
        }
        Ok(total)
    }

    /// Run `iters` sweeps where each point calls `apply_fn` through the
    /// matching function-pointer sweep: `grouped` picks `sweep_ptrg`
    /// (`&sg5`), otherwise `sweep_ptr3` (`&s5`). This is how a rewritten
    /// `apply` is used as a drop-in replacement (Figure 5).
    pub fn run_with_apply(
        &mut self,
        m: &mut Machine,
        apply_fn: u64,
        grouped: bool,
        iters: u32,
    ) -> Result<Stats, EmuError> {
        let sweep = if grouped {
            self.prog.func("sweep_ptrg").unwrap()
        } else {
            self.prog.func("sweep_ptr3").unwrap()
        };
        let mut total = Stats::default();
        let (mut src, mut dst) = (self.m1, self.m2);
        for _ in 0..iters {
            let args = CallArgs::new()
                .ptr(src)
                .ptr(dst)
                .int(self.xs)
                .int(self.ys)
                .ptr(apply_fn);
            let out = m.call(&self.img, sweep, &args)?;
            total.merge(&out.stats);
            std::mem::swap(&mut src, &mut dst);
        }
        Ok(total)
    }

    /// Checksum of the matrix holding the result after `iters` sweeps.
    pub fn checksum(&self, iters: u32) -> f64 {
        let base = if iters % 2 == 1 { self.m2 } else { self.m1 };
        let mut sum = 0.0;
        for y in 0..self.ys {
            for x in 0..self.xs {
                sum += self.read(base, x, y) * ((x + 7 * y) % 5 + 1) as f64;
            }
        }
        sum
    }

    /// Host-side reference: the checksum after `iters` sweeps computed in
    /// Rust, for validating every variant.
    pub fn host_checksum(&self, iters: u32) -> f64 {
        let (xs, ys) = (self.xs, self.ys);
        let mut a: Vec<f64> = (0..ys)
            .flat_map(|y| (0..xs).map(move |x| Self::init_value(xs, ys, x, y)))
            .collect();
        let mut b = a.clone();
        for _ in 0..iters {
            for y in 1..ys - 1 {
                for x in 1..xs - 1 {
                    let i = (y * xs + x) as usize;
                    b[i] = 0.25 * (a[i - 1] + a[i + 1] + a[i - xs as usize] + a[i + xs as usize])
                        - a[i];
                }
            }
            std::mem::swap(&mut a, &mut b);
        }
        let result = &a;
        let mut sum = 0.0;
        for y in 0..ys {
            for x in 0..xs {
                sum += result[(y * xs + x) as usize] * ((x + 7 * y) % 5 + 1) as f64;
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_interpreted_variants_agree_with_host() {
        for variant in [
            Variant::Generic,
            Variant::Grouped,
            Variant::Manual,
            Variant::ManualInline,
        ] {
            let mut s = Stencil::new(10, 8);
            let mut m = Machine::new();
            s.run(&mut m, variant, 3).unwrap();
            assert_eq!(s.checksum(3), s.host_checksum(3), "{variant:?}");
        }
    }

    #[test]
    fn specialized_apply_agrees_and_wins() {
        let mut s = Stencil::new(12, 9);
        let res = s.specialize_apply().unwrap();
        let mut m = Machine::new();
        let spec = s.run_with_apply(&mut m, res.entry, false, 2).unwrap();
        assert_eq!(s.checksum(2), s.host_checksum(2));

        let mut s2 = Stencil::new(12, 9);
        let mut m2 = Machine::new();
        let gen = s2.run(&mut m2, Variant::Generic, 2).unwrap();
        assert!(
            spec.cycles * 10 < gen.cycles * 9,
            "specialized {} vs generic {}",
            spec.cycles,
            gen.cycles
        );
    }

    #[test]
    fn specialized_grouped_agrees() {
        let mut s = Stencil::new(9, 9);
        let res = s.specialize_apply_grouped().unwrap();
        let mut m = Machine::new();
        s.run_with_apply(&mut m, res.entry, true, 2).unwrap();
        assert_eq!(s.checksum(2), s.host_checksum(2));
    }

    #[test]
    fn specialized_sweep_agrees() {
        let mut s = Stencil::new(9, 7);
        let res = s.specialize_sweep(4).unwrap();
        let mut m = Machine::new();
        s.run(&mut m, Variant::SpecializedSweep(res.entry), 2)
            .unwrap();
        assert_eq!(s.checksum(2), s.host_checksum(2));
    }

    #[test]
    fn checksum_changes_with_iterations() {
        let mut s = Stencil::new(8, 8);
        let c0 = s.checksum(0);
        let mut m = Machine::new();
        s.run(&mut m, Variant::ManualInline, 1).unwrap();
        assert_ne!(c0, s.checksum(1));
    }
}
