//! The mini-C programs of the paper's evaluation (§V), all in one
//! translation unit:
//!
//! * `apply` — the generic stencil of Figure 4,
//! * `apply_grouped` — the coefficient-grouped variant of §V.B,
//! * `apply_manual` — the hand-written 5-point stencil ("directly writing
//!   code for the stencil"),
//! * `sweep_*` — matrix sweeps calling the above directly, through
//!   function pointers (the paper's separate-compilation-unit stand-in),
//!   or with the stencil hand-inlined (the 0.48 s variant).

/// Complete stencil program source.
pub const STENCIL_PROGRAM: &str = r#"
// ---- Figure 4: generic stencil ------------------------------------------
struct P { double f; int dx; int dy; };
struct S { int ps; struct P p[5]; };
struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0},
                   {0.25, 0, -1}, {0.25, 0, 1}}};

double apply(double* m, int xs, struct S* s) {
    double v = 0.0;
    for (int i = 0; i < s->ps; i++) {
        struct P* p = &s->p[i];
        v += p->f * m[p->dx + xs * p->dy];
    }
    return v;
}

// ---- §V.B: grouped coefficients ------------------------------------------
struct Q { int dx; int dy; };
struct G { double f; int np; struct Q q[4]; };
struct SG { int gs; struct G g[2]; };
struct SG sg5 = {2, {{-1.0, 1, {{0, 0}, {0, 0}, {0, 0}, {0, 0}}},
                     {0.25, 4, {{-1, 0}, {1, 0}, {0, -1}, {0, 1}}}}};

double apply_grouped(double* m, int xs, struct SG* s) {
    double v = 0.0;
    for (int gi = 0; gi < s->gs; gi++) {
        struct G* g = &s->g[gi];
        double t = 0.0;
        for (int i = 0; i < g->np; i++) {
            struct Q* q = &g->q[i];
            t += m[q->dx + xs * q->dy];
        }
        v += g->f * t;
    }
    return v;
}

// ---- the manually written stencil ----------------------------------------
double apply_manual(double* m, int xs) {
    return 0.25 * (m[-1] + m[1] + m[-xs] + m[xs]) - m[0];
}

// ---- sweeps ----------------------------------------------------------------
typedef double (*app3_t)(double*, int, struct S*);
typedef double (*appg_t)(double*, int, struct SG*);
typedef double (*app2_t)(double*, int);

void sweep_generic(double* m1, double* m2, int xs, int ys) {
    for (int y = 1; y < ys - 1; y++)
        for (int x = 1; x < xs - 1; x++)
            m2[y * xs + x] = apply(&m1[y * xs + x], xs, &s5);
}

void sweep_grouped(double* m1, double* m2, int xs, int ys) {
    for (int y = 1; y < ys - 1; y++)
        for (int x = 1; x < xs - 1; x++)
            m2[y * xs + x] = apply_grouped(&m1[y * xs + x], xs, &sg5);
}

// Function-pointer sweeps: how rewritten variants (and the paper's
// separate-compilation-unit manual stencil) are driven.
void sweep_ptr3(double* m1, double* m2, int xs, int ys, app3_t fp) {
    for (int y = 1; y < ys - 1; y++)
        for (int x = 1; x < xs - 1; x++)
            m2[y * xs + x] = fp(&m1[y * xs + x], xs, &s5);
}

void sweep_ptrg(double* m1, double* m2, int xs, int ys, appg_t fp) {
    for (int y = 1; y < ys - 1; y++)
        for (int x = 1; x < xs - 1; x++)
            m2[y * xs + x] = fp(&m1[y * xs + x], xs, &sg5);
}

void sweep_ptr2(double* m1, double* m2, int xs, int ys, app2_t fp) {
    for (int y = 1; y < ys - 1; y++)
        for (int x = 1; x < xs - 1; x++)
            m2[y * xs + x] = fp(&m1[y * xs + x], xs);
}

// The same-compilation-unit manual sweep (§V.B, 0.48 s in the paper).
void sweep_manual_inline(double* m1, double* m2, int xs, int ys) {
    for (int y = 1; y < ys - 1; y++)
        for (int x = 1; x < xs - 1; x++) {
            int i = y * xs + x;
            m2[i] = 0.25 * (m1[i - 1] + m1[i + 1] + m1[i - xs] + m1[i + xs]) - m1[i];
        }
}
"#;

/// §V.C: the failed `makeDynamic` attempt. The compiler (here: the
/// programmer, mimicking gcc's iteration-space transformation) introduces a
/// fresh counter starting at the constant 0 and adds the dynamic base, so
/// the loop still fully unrolls.
pub const MAKE_DYNAMIC_PROGRAM: &str = r#"
struct P { double f; int dx; int dy; };
struct S { int ps; struct P p[5]; };
struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0},
                   {0.25, 0, -1}, {0.25, 0, 1}}};

double apply(double* m, int xs, struct S* s) {
    double v = 0.0;
    for (int i = 0; i < s->ps; i++) {
        struct P* p = &s->p[i];
        v += p->f * m[p->dx + xs * p->dy];
    }
    return v;
}

int makeDynamic(int x) { return x; }

// What the programmer wrote: loops starting at makeDynamic(1).
void sweep_dynamic(double* m1, double* m2, int xs, int ys) {
    for (int y = makeDynamic(1); y < ys - 1; y++)
        for (int x = makeDynamic(1); x < xs - 1; x++)
            m2[y * xs + x] = apply(&m1[y * xs + x], xs, &s5);
}

// What the compiler actually emitted (gcc's transformation, §V.C): a new
// counter still starts at the known constant 0.
void sweep_dynamic_transformed(double* m1, double* m2, int xs, int ys) {
    int y0 = makeDynamic(1);
    int x0 = makeDynamic(1);
    for (int j = 0; j < ys - 1 - y0; j++) {
        int y = j + y0;
        for (int i = 0; i < xs - 1 - x0; i++) {
            int x = i + x0;
            m2[y * xs + x] = apply(&m1[y * xs + x], xs, &s5);
        }
    }
}
"#;
