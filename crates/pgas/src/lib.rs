//! # brew-pgas — a mini PGAS library specialized by BREW
//!
//! The paper motivates runtime rewriting with PGAS libraries (§V intro):
//! *"DASH (a C++ library providing a PGAS programming model) must translate
//! between global and local address space for every call to `operator[]`
//! on distributed data structures. As a result, using this operator is not
//! recommended in inner-most loops."* And §VIII plans to *"use our API to
//! detect remote memory accesses in arbitrary code."*
//!
//! This crate reproduces both:
//!
//! * a block-distributed 1-D array of doubles over `nnodes` simulated
//!   nodes, with a generic `gread` translation routine (descriptor loads,
//!   division, locality check, call into a simulated-RDMA fetch),
//! * [`PgasArray::specialize_gsum`]: the Figure-5 recipe applied to the
//!   reduction loop — the distribution descriptor becomes known, `gread`
//!   and `remote_fetch` are inlined, descriptor loads fold away,
//! * [`PgasArray::instrument_remote_detection`]: the §VIII experiment —
//!   a rewrite with a memory-access handler injected before every
//!   unknown-address access, counting accesses outside the local block,
//! * [`PgasArray::redistribute`]: the Chapel domain-map scenario (§VI) —
//!   change the distribution at runtime and re-specialize.

#![warn(missing_docs)]

use brew_core::{RetKind, RewriteResult, Rewriter, SpecRequest};
use brew_emu::{CallArgs, EmuError, Machine, Stats};
use brew_image::Image;
use brew_minic::Compiled;

/// The mini-C PGAS library + workload.
pub const PGAS_PROGRAM: &str = r#"
struct Dist { int nnodes; int blocksz; int mynode; };
struct Dist dist = {1, 1, 0};
int lo_bound;
int hi_bound;
int remote_count;

// Simulated one-sided RDMA fetch (a real implementation would issue a
// network read; the cost model charges the call + loads).
double remote_fetch(double* storage, int idx) {
    return storage[idx];
}

// The DASH-operator[] analogue: full global-to-local translation with a
// locality check on every access.
double gread(double* storage, struct Dist* d, int i) {
    int node = i / d->blocksz;
    int off = i - node * d->blocksz;
    int idx = node * d->blocksz + off;
    if (node == d->mynode) {
        return storage[idx];
    }
    return remote_fetch(storage, idx);
}

// Reduction over the global index space through the generic accessor —
// exactly the inner-loop pattern the paper says is "not recommended".
double gsum(double* storage, struct Dist* d, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += gread(storage, d, i);
    }
    return s;
}

// The hand-written local baseline.
double lsum(double* p, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += p[i];
    return s;
}

// §VIII: handler for injected memory-access hooks. Counts accesses that
// fall outside the local block [lo_bound, hi_bound).
void on_access(int addr) {
    if (addr < lo_bound) remote_count += 1;
    if (addr >= hi_bound) remote_count += 1;
}
"#;

/// A block-distributed array with its compiled access library.
pub struct PgasArray {
    /// Process image.
    pub img: Image,
    /// Compiled program.
    pub prog: Compiled,
    /// Total elements.
    pub n: i64,
    /// Node count.
    pub nnodes: i64,
    /// Elements per node (block distribution).
    pub blocksz: i64,
    /// The simulated local node id.
    pub mynode: i64,
    /// Backing storage for all blocks (address of element 0).
    pub storage: u64,
}

impl PgasArray {
    /// Create an `n`-element array distributed over `nnodes` nodes, viewed
    /// from `mynode`, filled with a deterministic pattern.
    pub fn new(n: i64, nnodes: i64, mynode: i64) -> Self {
        assert!(n > 0 && nnodes > 0 && mynode < nnodes);
        assert_eq!(n % nnodes, 0, "block distribution requires nnodes | n");
        let img = Image::new();
        let prog = brew_minic::compile_into(PGAS_PROGRAM, &img).expect("pgas program compiles");
        let storage = img.alloc_heap((n * 8) as u64, 16);
        let mut p = PgasArray {
            img,
            prog,
            n,
            nnodes,
            blocksz: n / nnodes,
            mynode,
            storage,
        };
        for i in 0..n {
            p.img
                .write_f64(storage + (i * 8) as u64, ((i * 37) % 101) as f64 * 0.5)
                .unwrap();
        }
        p.write_dist();
        p
    }

    /// Push the distribution descriptor and hook bounds into guest memory.
    fn write_dist(&mut self) {
        let d = self.dist();
        self.img.write_u64(d, self.nnodes as u64).unwrap();
        self.img.write_u64(d + 8, self.blocksz as u64).unwrap();
        self.img.write_u64(d + 16, self.mynode as u64).unwrap();
        let lo = self.storage + (self.mynode * self.blocksz * 8) as u64;
        let hi = lo + (self.blocksz * 8) as u64;
        let lo_b = self.prog.global("lo_bound").unwrap();
        let hi_b = self.prog.global("hi_bound").unwrap();
        self.img.write_u64(lo_b, lo).unwrap();
        self.img.write_u64(hi_b, hi).unwrap();
    }

    /// Address of the distribution descriptor.
    pub fn dist(&self) -> u64 {
        self.prog.global("dist").unwrap()
    }

    /// Host-side reference sum.
    pub fn host_sum(&self) -> f64 {
        (0..self.n).map(|i| ((i * 37) % 101) as f64 * 0.5).sum()
    }

    /// Run the generic `gsum` (the high-overhead baseline).
    pub fn gsum_generic(&mut self, m: &mut Machine) -> Result<(f64, Stats), EmuError> {
        let f = self.prog.func("gsum").unwrap();
        let args = CallArgs::new()
            .ptr(self.storage)
            .ptr(self.dist())
            .int(self.n);
        let out = m.call(&self.img, f, &args)?;
        Ok((out.ret_f64, out.stats))
    }

    /// Run a rewritten `gsum` drop-in replacement.
    pub fn gsum_with(&mut self, m: &mut Machine, entry: u64) -> Result<(f64, Stats), EmuError> {
        let args = CallArgs::new()
            .ptr(self.storage)
            .ptr(self.dist())
            .int(self.n);
        let out = m.call(&self.img, entry, &args)?;
        Ok((out.ret_f64, out.stats))
    }

    /// Run the hand-written local-pointer baseline over the whole array.
    pub fn lsum_manual(&mut self, m: &mut Machine) -> Result<(f64, Stats), EmuError> {
        let f = self.prog.func("lsum").unwrap();
        let args = CallArgs::new().ptr(self.storage).int(self.n);
        let out = m.call(&self.img, f, &args)?;
        Ok((out.ret_f64, out.stats))
    }

    /// Specialize `gsum` for the current distribution: the descriptor is
    /// `PTR_TO_KNOWN`, `gread`/`remote_fetch` inline, the sum loop is kept
    /// (bounded unrolling via world migration).
    pub fn specialize_gsum(&mut self) -> Result<RewriteResult, brew_core::RewriteError> {
        let gsum = self.prog.func("gsum").unwrap();
        let dist = self.dist();
        let req = SpecRequest::new()
            .unknown_int() // storage pointer
            .ptr_to_known(dist, 24)
            .unknown_int() // n (traced bound comes from the emulated call)
            .ret(RetKind::F64)
            .func(gsum, |o| {
                o.branch_unknown = true;
                o.max_variants = 2;
            })
            .max_trace_insts(8_000_000);
        Rewriter::new(&self.img).rewrite(gsum, &req)
    }

    /// §VIII: rewrite `gsum` with a memory-access hook calling
    /// `on_access`, which counts accesses outside the local block. Returns
    /// the rewritten entry; read the result with
    /// [`PgasArray::remote_count`].
    pub fn instrument_remote_detection(
        &mut self,
    ) -> Result<RewriteResult, brew_core::RewriteError> {
        let gsum = self.prog.func("gsum").unwrap();
        let dist = self.dist();
        let hook = self.prog.func("on_access").unwrap();
        let req = SpecRequest::new()
            .unknown_int() // storage pointer
            .ptr_to_known(dist, 24)
            .unknown_int() // n
            .ret(RetKind::F64)
            .mem_access_hook(hook)
            // branch_unknown is incompatible with hooks; rely on
            // fresh_unknown to bound unrolling instead.
            .func(gsum, |o| {
                o.fresh_unknown = true;
                o.max_variants = 4;
            })
            .max_trace_insts(8_000_000);
        Rewriter::new(&self.img).rewrite(gsum, &req)
    }

    /// Read (and reset) the remote-access counter maintained by the hook.
    pub fn remote_count(&mut self) -> u64 {
        let g = self.prog.global("remote_count").unwrap();
        let v = self.img.read_u64(g).unwrap();
        self.img.write_u64(g, 0).unwrap();
        v
    }

    /// §VI (Chapel domain maps): change the distribution at runtime. The
    /// caller should re-specialize afterwards — that is the point of the
    /// experiment.
    pub fn redistribute(&mut self, nnodes: i64, mynode: i64) {
        assert!(nnodes > 0 && mynode < nnodes && self.n % nnodes == 0);
        self.nnodes = nnodes;
        self.blocksz = self.n / nnodes;
        self.mynode = mynode;
        self.write_dist();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_sum_matches_host() {
        let mut p = PgasArray::new(48, 4, 1);
        let mut m = Machine::new();
        let (v, _) = p.gsum_generic(&mut m).unwrap();
        assert_eq!(v, p.host_sum());
        let (l, _) = p.lsum_manual(&mut m).unwrap();
        assert_eq!(l, p.host_sum());
    }

    #[test]
    fn specialized_sum_matches_and_wins() {
        let mut p = PgasArray::new(64, 4, 2);
        let res = p.specialize_gsum().unwrap();
        let mut m = Machine::new();
        let (v, spec) = p.gsum_with(&mut m, res.entry).unwrap();
        assert_eq!(v, p.host_sum());
        let (_, gen) = p.gsum_generic(&mut m).unwrap();
        assert!(
            spec.cycles < gen.cycles,
            "specialized {} vs generic {}",
            spec.cycles,
            gen.cycles
        );
        // The gread/remote_fetch calls are gone.
        assert_eq!(spec.calls, 0, "abstraction calls inlined away");
    }

    #[test]
    fn remote_detection_counts_non_local_accesses() {
        let mut p = PgasArray::new(40, 4, 1);
        let res = p.instrument_remote_detection().unwrap();
        assert!(res.stats.hooks_injected > 0, "hooks were injected");
        let mut m = Machine::new();
        let (v, _) = p.gsum_with(&mut m, res.entry).unwrap();
        assert_eq!(v, p.host_sum(), "instrumentation must not change results");
        // 30 of 40 elements live on other nodes.
        assert_eq!(p.remote_count(), 30);
    }

    #[test]
    fn redistribution_respecializes() {
        let mut p = PgasArray::new(60, 4, 0);
        let r1 = p.specialize_gsum().unwrap();
        let mut m = Machine::new();
        let (v1, _) = p.gsum_with(&mut m, r1.entry).unwrap();
        assert_eq!(v1, p.host_sum());

        // Domain map changes; the old specialization is stale, a fresh one
        // is generated (the runtime-system trigger of §VI).
        p.redistribute(6, 3);
        let r2 = p.specialize_gsum().unwrap();
        let (v2, _) = p.gsum_with(&mut m, r2.entry).unwrap();
        assert_eq!(v2, p.host_sum());
        assert_ne!(r1.entry, r2.entry);
    }
}
