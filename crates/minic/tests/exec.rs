//! End-to-end tests: compile mini-C, execute in the emulator, check results.

#![allow(clippy::identity_op, clippy::erasing_op)] // expected values spelled out per term

use brew_emu::{CallArgs, EmuError, Machine};
use brew_image::Image;
use brew_minic::compile_into;

fn run_int(src: &str, func: &str, args: CallArgs) -> i64 {
    let img = Image::new();
    let prog = compile_into(src, &img).expect("compile");
    let mut m = Machine::new();
    let out = m
        .call(&img, prog.func(func).expect("function"), &args)
        .expect("run");
    out.ret_int as i64
}

fn run_f64(src: &str, func: &str, args: CallArgs) -> f64 {
    let img = Image::new();
    let prog = compile_into(src, &img).expect("compile");
    let mut m = Machine::new();
    let out = m
        .call(&img, prog.func(func).expect("function"), &args)
        .expect("run");
    out.ret_f64
}

#[test]
fn arithmetic() {
    let src = "int f(int a, int b) { return (a + b) * (a - b) / 2 % 7; }";
    let f = |a: i64, b: i64| ((a + b) * (a - b) / 2) % 7;
    for (a, b) in [(10, 3), (5, -2), (-8, -9), (100, 1)] {
        assert_eq!(
            run_int(src, "f", CallArgs::new().int(a).int(b)),
            f(a, b),
            "{a},{b}"
        );
    }
}

#[test]
fn comparisons_and_logic() {
    let src = r#"
        int f(int a, int b) {
            return (a < b) + 2 * (a <= b) + 4 * (a == b)
                 + 8 * (a != b) + 16 * (a > b) + 32 * (a >= b)
                 + 64 * (a < b && b < 100) + 128 * (a == 0 || b == 0);
        }
    "#;
    let f = |a: i64, b: i64| {
        (a < b) as i64
            + 2 * (a <= b) as i64
            + 4 * (a == b) as i64
            + 8 * (a != b) as i64
            + 16 * (a > b) as i64
            + 32 * (a >= b) as i64
            + 64 * (a < b && b < 100) as i64
            + 128 * (a == 0 || b == 0) as i64
    };
    for (a, b) in [(1, 2), (2, 1), (3, 3), (0, 5), (5, 0), (-1, 200)] {
        assert_eq!(
            run_int(src, "f", CallArgs::new().int(a).int(b)),
            f(a, b),
            "{a},{b}"
        );
    }
}

#[test]
fn loops_sum() {
    let src = r#"
        int sum_to(int n) {
            int s = 0;
            for (int i = 1; i <= n; i++) s += i;
            return s;
        }
    "#;
    assert_eq!(run_int(src, "sum_to", CallArgs::new().int(10)), 55);
    assert_eq!(run_int(src, "sum_to", CallArgs::new().int(0)), 0);
    assert_eq!(run_int(src, "sum_to", CallArgs::new().int(1000)), 500500);
}

#[test]
fn while_break_continue() {
    let src = r#"
        int f(int n) {
            int s = 0;
            int i = 0;
            while (1) {
                i = i + 1;
                if (i > n) break;
                if (i % 2 == 0) continue;
                s += i;
            }
            return s;
        }
    "#;
    // Sum of odd numbers 1..=9 is 25.
    assert_eq!(run_int(src, "f", CallArgs::new().int(9)), 25);
    assert_eq!(run_int(src, "f", CallArgs::new().int(10)), 25);
}

#[test]
fn doubles_and_conversion() {
    let src = r#"
        double mix(int a, double x) {
            double y = a * x + 0.5;
            if (y > 10.0) y = y / 2.0;
            return y - (int)y + (double)a;
        }
    "#;
    let f = |a: i64, x: f64| {
        let mut y = a as f64 * x + 0.5;
        if y > 10.0 {
            y /= 2.0;
        }
        y - (y as i64) as f64 + a as f64
    };
    for (a, x) in [(2i64, 3.25f64), (10, 7.5), (-3, 0.125), (0, 0.0)] {
        let got = run_f64(src, "mix", CallArgs::new().int(a).f64(x));
        assert_eq!(got, f(a, x), "{a},{x}");
    }
}

#[test]
fn double_comparisons_including_nan_free_paths() {
    let src = r#"
        int cmp(double a, double b) {
            return (a < b) + 2*(a <= b) + 4*(a == b) + 8*(a != b)
                 + 16*(a > b) + 32*(a >= b);
        }
    "#;
    let f = |a: f64, b: f64| {
        (a < b) as i64
            + 2 * (a <= b) as i64
            + 4 * (a == b) as i64
            + 8 * (a != b) as i64
            + 16 * (a > b) as i64
            + 32 * (a >= b) as i64
    };
    for (a, b) in [(1.0, 2.0), (2.0, 1.0), (3.5, 3.5), (-0.0, 0.0)] {
        assert_eq!(
            run_int(src, "cmp", CallArgs::new().f64(a).f64(b)),
            f(a, b),
            "{a},{b}"
        );
    }
}

#[test]
fn pointers_and_arrays() {
    let src = r#"
        int sum(int* p, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += p[i];
            return s;
        }
        int driver() {
            int a[8];
            for (int i = 0; i < 8; i++) a[i] = i * i;
            int* q = &a[2];
            return sum(a, 8) + *q + q[1];
        }
    "#;
    // sum of squares 0..63: 140; *q = 4; q[1] = 9.
    assert_eq!(run_int(src, "driver", CallArgs::new()), 140 + 4 + 9);
}

#[test]
fn structs_and_member_access() {
    let src = r#"
        struct P { double f; int dx; int dy; };
        struct S { int ps; struct P p[5]; };
        struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0},
                           {0.25, 0, -1}, {0.25, 0, 1}}};
        int f() {
            struct P* p = &s5.p[3];
            return s5.ps * 100 + p->dx * 10 + p->dy;
        }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new()), 5 * 100 + 0 * 10 + -1);
}

#[test]
fn the_paper_apply_function() {
    // The exact generic stencil of Figure 4, on a small matrix.
    let src = r#"
        struct P { double f; int dx; int dy; };
        struct S { int ps; struct P p[5]; };
        struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0},
                           {0.25, 0, -1}, {0.25, 0, 1}}};
        double apply(double* m, int xs, struct S* s) {
            double v = 0.0;
            for (int i = 0; i < s->ps; i++) {
                struct P* p = &s->p[i];
                v += p->f * m[p->dx + xs * p->dy];
            }
            return v;
        }
    "#;
    let img = Image::new();
    let prog = compile_into(src, &img).unwrap();
    // 4x4 matrix on the heap, m[y][x] = y*10 + x; apply at (1,1).
    let xs = 4i64;
    let base = img.alloc_heap(16 * 8, 8);
    for y in 0..4i64 {
        for x in 0..4i64 {
            img.write_f64(base + ((y * xs + x) * 8) as u64, (y * 10 + x) as f64)
                .unwrap();
        }
    }
    let center = base + ((xs + 1) * 8) as u64; // &m[1][1]
    let mut m = Machine::new();
    let out = m
        .call(
            &img,
            prog.func("apply").unwrap(),
            &CallArgs::new()
                .ptr(center)
                .int(xs)
                .ptr(prog.global("s5").unwrap()),
        )
        .unwrap();
    // v = -1*11 + 0.25*(10 + 12 + 1 + 21) = -11 + 11 = 0.
    assert_eq!(out.ret_f64, 0.0);
    assert!(out.stats.calls == 0);
    assert!(out.stats.fp_ops >= 10, "5 muls + 5 adds");
}

#[test]
fn function_pointers_indirect_calls() {
    let src = r#"
        typedef int (*op_t)(int, int);
        int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        int pick(int which) {
            op_t f;
            if (which) f = add; else f = mul;
            return (*f)(3, 4) + f(2, 5);
        }
    "#;
    assert_eq!(run_int(src, "pick", CallArgs::new().int(1)), 7 + 7);
    assert_eq!(run_int(src, "pick", CallArgs::new().int(0)), 12 + 10);
}

#[test]
fn global_function_pointer_dispatch() {
    let src = r#"
        int inc(int x) { return x + 1; }
        int (*hook)(int) = inc;
        int f(int x) { return hook(x) * 2; }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new().int(20)), 42);
}

#[test]
fn recursion() {
    let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
    assert_eq!(run_int(src, "fib", CallArgs::new().int(15)), 610);
}

#[test]
fn nested_calls_with_doubles() {
    let src = r#"
        double scale(double x, double k) { return x * k; }
        double poly(double x) { return scale(x, 2.0) + scale(x * x, 0.5); }
    "#;
    assert_eq!(run_f64(src, "poly", CallArgs::new().f64(4.0)), 8.0 + 8.0);
}

#[test]
fn incdec_and_pointer_arith() {
    let src = r#"
        int f() {
            int a[4];
            a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
            int* p = a;
            int x = *p++;
            int y = *p;
            p += 2;
            return x + y + *p;
        }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new()), 10 + 20 + 40);
}

#[test]
fn divide_by_zero_faults() {
    let src = "int f(int a) { return 10 / a; }";
    let img = Image::new();
    let prog = compile_into(src, &img).unwrap();
    let mut m = Machine::new();
    let err = m
        .call(&img, prog.func("f").unwrap(), &CallArgs::new().int(0))
        .unwrap_err();
    assert!(matches!(err, EmuError::Divide { .. }));
    // And works with nonzero.
    let out = m
        .call(&img, prog.func("f").unwrap(), &CallArgs::new().int(3))
        .unwrap();
    assert_eq!(out.ret_int, 3);
}

#[test]
fn sizeof_and_casts() {
    let src = r#"
        struct P { double f; int dx; int dy; };
        int f() { return sizeof(struct P) + sizeof(int) + sizeof(double*); }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new()), 24 + 8 + 8);
}

#[test]
fn matrix_sweep_writes_memory() {
    // A full generic sweep like the paper's main loop.
    let src = r#"
        struct P { double f; int dx; int dy; };
        struct S { int ps; struct P p[5]; };
        struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0},
                           {0.25, 0, -1}, {0.25, 0, 1}}};
        double apply(double* m, int xs, struct S* s) {
            double v = 0.0;
            for (int i = 0; i < s->ps; i++) {
                struct P* p = &s->p[i];
                v += p->f * m[p->dx + xs * p->dy];
            }
            return v;
        }
        void sweep(double* m1, double* m2, int xs, int ys) {
            for (int y = 1; y < ys - 1; y++)
                for (int x = 1; x < xs - 1; x++)
                    m2[y * xs + x] = apply(&m1[y * xs + x], xs, &s5);
        }
    "#;
    let img = Image::new();
    let prog = compile_into(src, &img).unwrap();
    let xs = 6i64;
    let ys = 5i64;
    let m1 = img.alloc_heap((xs * ys * 8) as u64, 8);
    let m2 = img.alloc_heap((xs * ys * 8) as u64, 8);
    let mut host = vec![0f64; (xs * ys) as usize];
    for y in 0..ys {
        for x in 0..xs {
            let v = (y * 31 + x * 7) as f64 * 0.5;
            host[(y * xs + x) as usize] = v;
            img.write_f64(m1 + ((y * xs + x) * 8) as u64, v).unwrap();
        }
    }
    let mut m = Machine::new();
    m.call(
        &img,
        prog.func("sweep").unwrap(),
        &CallArgs::new().ptr(m1).ptr(m2).int(xs).int(ys),
    )
    .unwrap();
    // Host reference.
    for y in 1..ys - 1 {
        for x in 1..xs - 1 {
            let i = (y * xs + x) as usize;
            let want = -host[i]
                + 0.25
                    * (host[i - 1] + host[i + 1] + host[i - xs as usize] + host[i + xs as usize]);
            let got = img.read_f64(m2 + (i * 8) as u64).unwrap();
            assert_eq!(got, want, "at ({x},{y})");
        }
    }
}
