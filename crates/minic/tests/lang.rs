//! Broader mini-C language coverage: aggregates, pointers-to-pointers,
//! short-circuit side effects, nested control flow, and C semantics
//! corners (negative division, operator precedence).

#![allow(clippy::identity_op)] // expected values spelled out per term

use brew_emu::{CallArgs, Machine};
use brew_image::Image;
use brew_minic::compile_into;

fn run_int(src: &str, func: &str, args: CallArgs) -> i64 {
    let img = Image::new();
    let prog = compile_into(src, &img).expect("compile");
    let mut m = Machine::new();
    m.call(&img, prog.func(func).expect("func"), &args)
        .expect("run")
        .ret_int as i64
}

fn run_f64(src: &str, func: &str, args: CallArgs) -> f64 {
    let img = Image::new();
    let prog = compile_into(src, &img).expect("compile");
    let mut m = Machine::new();
    m.call(&img, prog.func(func).expect("func"), &args)
        .expect("run")
        .ret_f64
}

#[test]
fn nested_structs() {
    let src = r#"
        struct Inner { int a; int b; };
        struct Outer { struct Inner x; struct Inner y; int tail; };
        struct Outer g = {{1, 2}, {3, 4}, 5};
        int f() {
            struct Outer o;
            o.x.a = 10; o.x.b = 20; o.y.a = 30; o.y.b = 40; o.tail = 50;
            return g.x.a + g.x.b*10 + g.y.a*100 + g.y.b*1000 + g.tail*10000
                 + o.x.a + o.y.b;
        }
    "#;
    assert_eq!(
        run_int(src, "f", CallArgs::new()),
        1 + 20 + 300 + 4000 + 50000 + 10 + 40
    );
}

#[test]
fn two_dimensional_arrays() {
    let src = r#"
        int f(int n) {
            int m[4][3];
            for (int i = 0; i < 4; i++)
                for (int j = 0; j < 3; j++)
                    m[i][j] = i * 10 + j;
            int s = 0;
            for (int i = 0; i < 4; i++) s += m[i][n];
            return s;
        }
    "#;
    // column n=2: 2 + 12 + 22 + 32 = 68
    assert_eq!(run_int(src, "f", CallArgs::new().int(2)), 68);
}

#[test]
fn array_of_structs_in_locals() {
    let src = r#"
        struct P { int x; int y; };
        int f() {
            struct P pts[3];
            for (int i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * i; }
            int s = 0;
            for (int i = 0; i < 3; i++) s += pts[i].x + pts[i].y * 10;
            return s;
        }
    "#;
    assert_eq!(
        run_int(src, "f", CallArgs::new()),
        (0 + 0) + (1 + 10) + (2 + 40)
    );
}

#[test]
fn pointer_to_pointer() {
    let src = r#"
        int f(int v) {
            int x = v;
            int* p = &x;
            int** pp = &p;
            **pp = **pp + 1;
            return x;
        }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new().int(41)), 42);
}

#[test]
fn short_circuit_side_effects() {
    let src = r#"
        int calls;
        int bump() { calls += 1; return 1; }
        int f(int a) {
            calls = 0;
            int r = (a > 0) && bump();
            int s = (a > 0) || bump();
            return calls * 10 + r + s;
        }
    "#;
    // a=5: && evaluates bump (calls=1), || short-circuits. r=1, s=1 → 12.
    assert_eq!(run_int(src, "f", CallArgs::new().int(5)), 12);
    // a=-5: && short-circuits, || evaluates bump. r=0, s=1 → 11.
    assert_eq!(run_int(src, "f", CallArgs::new().int(-5)), 11);
}

#[test]
fn negative_division_truncates_toward_zero() {
    let src = "int f(int a, int b) { return a / b * 1000 + a % b; }";
    assert_eq!(run_int(src, "f", CallArgs::new().int(-7).int(2)), -3000 - 1);
    assert_eq!(run_int(src, "f", CallArgs::new().int(7).int(-2)), -3000 + 1);
}

#[test]
fn operator_precedence_matrix() {
    let src = "int f(int a, int b, int c) { return a + b * c - a / b + (a - b) * c; }";
    let host = |a: i64, b: i64, c: i64| a + b * c - a / b + (a - b) * c;
    for (a, b, c) in [(10, 3, 7), (100, -9, 2), (-50, 7, -3)] {
        assert_eq!(
            run_int(src, "f", CallArgs::new().int(a).int(b).int(c)),
            host(a, b, c),
            "{a},{b},{c}"
        );
    }
}

#[test]
fn nested_loops_with_break_continue() {
    let src = r#"
        int f() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i == 7) break;
                for (int j = 0; j < 10; j++) {
                    if (j % 2 == 0) continue;
                    if (j > 5) break;
                    s += i * 10 + j;
                }
            }
            return s;
        }
    "#;
    let mut host = 0i64;
    'outer: for i in 0..10 {
        if i == 7 {
            break 'outer;
        }
        for j in 0..10 {
            if j % 2 == 0 {
                continue;
            }
            if j > 5 {
                break;
            }
            host += i * 10 + j;
        }
    }
    assert_eq!(run_int(src, "f", CallArgs::new()), host);
}

#[test]
fn typedef_chains_and_struct_pointers() {
    let src = r#"
        struct Node { int value; struct Node* next; };
        typedef struct Node* node_t;
        int sum(node_t head) {
            int s = 0;
            while (head) { s += head->value; head = head->next; }
            return s;
        }
        int f() {
            struct Node c = {3, 0};
            struct Node b = {2, 0};
            struct Node a = {1, 0};
            a.next = &b;
            b.next = &c;
            return sum(&a);
        }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new()), 6);
}

#[test]
fn while_with_pointer_condition() {
    let src = r#"
        int f() {
            int arr[5];
            arr[0] = 1; arr[1] = 2; arr[2] = 3; arr[3] = 4; arr[4] = 0;
            int* p = arr;
            int s = 0;
            while (*p) { s += *p; p++; }
            return s;
        }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new()), 10);
}

#[test]
fn double_array_average() {
    let src = r#"
        double avg(double* xs, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s += xs[i];
            return s / (double)n;
        }
        double f() {
            double xs[4];
            xs[0] = 1.5; xs[1] = 2.5; xs[2] = 3.5; xs[3] = 4.5;
            return avg(xs, 4);
        }
    "#;
    assert_eq!(run_f64(src, "f", CallArgs::new()), 3.0);
}

#[test]
fn unary_minus_on_double_params() {
    let src = "double f(double x) { return -x * -x - -x; }";
    assert_eq!(run_f64(src, "f", CallArgs::new().f64(3.0)), 9.0 + 3.0);
    assert_eq!(run_f64(src, "f", CallArgs::new().f64(-2.0)), 4.0 - 2.0);
}

#[test]
fn global_array_init_and_mutation() {
    let src = r#"
        int table[6] = {10, 20, 30};
        int f(int i, int v) {
            int old = table[i];
            table[i] = v;
            return old + table[i] + table[5];
        }
    "#;
    // Unspecified entries are zero; table[5] = 0.
    assert_eq!(run_int(src, "f", CallArgs::new().int(1).int(7)), 20 + 7);
}

#[test]
fn sizeof_in_expressions_and_initializers() {
    let src = r#"
        struct Big { double a; int b; int c[10]; };
        int sz = sizeof(struct Big);
        int f() { return sz + sizeof(int*) * 2; }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new()), (8 + 8 + 80) + 16);
}

#[test]
fn six_int_args_plus_fp_args() {
    let src = r#"
        double f(int a, int b, int c, int d, int e, int g, double x, double y) {
            return (a + b * 2 + c * 3 + d * 4 + e * 5 + g * 6) * x + y;
        }
    "#;
    let got = run_f64(
        src,
        "f",
        CallArgs::new()
            .int(1)
            .int(2)
            .int(3)
            .int(4)
            .int(5)
            .int(6)
            .f64(2.0)
            .f64(0.5),
    );
    assert_eq!(got, (1 + 4 + 9 + 16 + 25 + 36) as f64 * 2.0 + 0.5);
}

#[test]
fn prefix_and_postfix_increment_values() {
    let src = r#"
        int f() {
            int i = 5;
            int a = i++;
            int b = ++i;
            int c = i--;
            int d = --i;
            return a * 1000 + b * 100 + c * 10 + d;
        }
    "#;
    assert_eq!(
        run_int(src, "f", CallArgs::new()),
        5 * 1000 + 7 * 100 + 7 * 10 + 5
    );
}

#[test]
fn comments_everywhere() {
    let src = r#"
        // leading comment
        int /* inline */ f(int a /* param */) {
            /* multi
               line */
            return a + 1; // trailing
        }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new().int(41)), 42);
}

#[test]
fn deeply_nested_expressions() {
    let src = "int f(int a) { return ((((a + 1) * 2 + 3) * 4 + 5) * 6 + 7) * 8; }";
    let host = |a: i64| ((((a + 1) * 2 + 3) * 4 + 5) * 6 + 7) * 8;
    for a in [-3i64, 0, 9, 100] {
        assert_eq!(run_int(src, "f", CallArgs::new().int(a)), host(a));
    }
}

#[test]
fn compile_errors_are_reported() {
    let cases = [
        "int f( { return 0; }",                            // parse error
        "int f() { return x; }",                           // unknown variable
        "int f() { int a[0]; return 0; }",                 // zero-size array
        "struct S { struct T t; }; int f() { return 0; }", // unknown struct
        "int f(int a, int a2) { return b(a); }",           // unknown function
    ];
    for src in cases {
        let img = Image::new();
        assert!(
            compile_into(src, &img).is_err(),
            "should not compile: {src}"
        );
    }
}

#[test]
fn fnptr_through_struct_field() {
    let src = r#"
        typedef int (*op_t)(int, int);
        struct Ops { op_t add; op_t mul; };
        int do_add(int a, int b) { return a + b; }
        int do_mul(int a, int b) { return a * b; }
        int f(int which) {
            struct Ops ops;
            ops.add = do_add;
            ops.mul = do_mul;
            if (which) return ops.add(3, 4);
            return ops.mul(3, 4);
        }
    "#;
    assert_eq!(run_int(src, "f", CallArgs::new().int(1)), 7);
    assert_eq!(run_int(src, "f", CallArgs::new().int(0)), 12);
}
