//! Untyped syntax tree produced by the parser.

/// A parsed type expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `int` (64-bit in mini-C; see crate docs).
    Int,
    /// `double`.
    Double,
    /// `void` (function returns only).
    Void,
    /// `struct name`.
    Struct(String),
    /// Pointer to a type.
    Ptr(Box<TypeExpr>),
    /// Fixed-size array `T[n]`.
    Array(Box<TypeExpr>, usize),
    /// Function-pointer type written `ret (*)(params)`.
    FnPtr {
        /// Return type.
        ret: Box<TypeExpr>,
        /// Parameter types.
        params: Vec<TypeExpr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// `true` for the six comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Double literal.
    Double(f64),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&`.
    LogAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    LogOr(Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical not `!`.
    Not(Box<Expr>),
    /// Dereference `*p`.
    Deref(Box<Expr>),
    /// Address-of `&x`.
    Addr(Box<Expr>),
    /// Array indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Member access `s.f`.
    Member(Box<Expr>, String),
    /// Member through pointer `p->f`.
    Arrow(Box<Expr>, String),
    /// Function call; callee may be a name or any pointer expression.
    Call(Box<Expr>, Vec<Expr>),
    /// Assignment `lhs = rhs`.
    Assign(Box<Expr>, Box<Expr>),
    /// Compound assignment `lhs op= rhs`.
    AssignOp(BinOp, Box<Expr>, Box<Expr>),
    /// `lhs++` / `lhs--` (postfix) or `++lhs` / `--lhs` (prefix).
    IncDec {
        /// The lvalue.
        target: Box<Expr>,
        /// +1 or -1.
        delta: i64,
        /// `true` when the old value is the result (postfix).
        post: bool,
    },
    /// Cast `(type) expr`.
    Cast(TypeExpr, Box<Expr>),
    /// `sizeof(type)`.
    SizeOf(TypeExpr),
}

/// Initializer: a scalar expression or a brace list.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// Scalar initializer (must be a constant expression for globals).
    Expr(Expr),
    /// `{ ... }` list.
    List(Vec<Init>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// Local declaration.
    Decl {
        /// Declared type (arrays included).
        ty: TypeExpr,
        /// Variable name.
        name: String,
        /// Optional initializer (expression or brace list).
        init: Option<Init>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while`.
    While(Expr, Box<Stmt>),
    /// `for (init; cond; step) body` — `init` is a statement or empty.
    For {
        /// Loop initializer.
        init: Option<Box<Stmt>>,
        /// Loop condition (defaults to true).
        cond: Option<Expr>,
        /// Loop step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return e?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `;`
    Empty,
}

/// A struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field type.
    pub ty: TypeExpr,
    /// Field name.
    pub name: String,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `struct S { ... };`
    Struct {
        /// Struct name.
        name: String,
        /// Fields in declaration order.
        fields: Vec<Field>,
    },
    /// Global variable.
    Global {
        /// Variable type.
        ty: TypeExpr,
        /// Name.
        name: String,
        /// Optional initializer.
        init: Option<Init>,
    },
    /// Function definition.
    Func {
        /// Return type.
        ret: TypeExpr,
        /// Name.
        name: String,
        /// Parameters.
        params: Vec<(TypeExpr, String)>,
        /// Body.
        body: Vec<Stmt>,
    },
}
