//! Code generation: typed IR → x86 subset instructions.
//!
//! The generator is a classic one-pass tree walker: integer results live in
//! RAX, double results in XMM0, temporaries go through the stack, locals
//! live in an RBP frame. No register allocation is attempted — the paper's
//! premise is that a *library's* compiled code cannot be specialized by the
//! static compiler, and the rewriter must remove the generic code's
//! overhead; a deliberately plain code style gives the rewriter exactly the
//! generic-but-honest input the experiments need.

use crate::asm::{Asm, AsmError, Label};
use crate::ast::BinOp;
use crate::sema::{CallTarget, TExpr, TFunc, TStmt};
use crate::types::Scalar;
use brew_x86::prelude::*;
use std::collections::HashMap;

/// Errors during code generation (post-sema, these indicate internal bugs
/// or exceeded machine limits, e.g. an unencodable immediate).
pub type CodegenError = AsmError;

const RAX: Operand = Operand::Reg(Gpr::Rax);
const RCX: Operand = Operand::Reg(Gpr::Rcx);
const RDX: Operand = Operand::Reg(Gpr::Rdx);
const R10: Operand = Operand::Reg(Gpr::R10);
const RSP: Operand = Operand::Reg(Gpr::Rsp);
const XMM0: Operand = Operand::Xmm(Xmm::Xmm0);
const XMM1: Operand = Operand::Xmm(Xmm::Xmm1);

struct Gen<'a> {
    asm: Asm,
    globals: &'a HashMap<String, u64>,
    loops: Vec<(Label, Label)>, // (continue target, break target)
    epilogue: Label,
    ret: Option<Scalar>,
}

/// Generate one function into a relocatable buffer.
pub fn gen_func(f: &TFunc, globals: &HashMap<String, u64>) -> Result<Asm, CodegenError> {
    let mut asm = Asm::new();
    let epilogue = asm.label();
    let mut g = Gen {
        asm,
        globals,
        loops: Vec::new(),
        epilogue,
        ret: f.sig.ret.scalar(),
    };

    // Prologue.
    g.emit(Inst::Push {
        src: Gpr::Rbp.into(),
    });
    g.emit(Inst::Mov {
        w: Width::W64,
        dst: Gpr::Rbp.into(),
        src: RSP,
    });
    if f.frame_size > 0 {
        g.emit(Inst::Alu {
            op: AluOp::Sub,
            w: Width::W64,
            dst: RSP,
            src: Operand::Imm(f.frame_size as i64),
        });
    }
    // Spill parameters to their frame slots.
    let mut int_idx = 0;
    let mut fp_idx = 0;
    for (off, sc) in &f.param_slots {
        let slot = MemRef::base_disp(Gpr::Rbp, *off as i32);
        match sc {
            Scalar::I64 => {
                g.emit(Inst::Mov {
                    w: Width::W64,
                    dst: slot.into(),
                    src: Gpr::SYSV_ARGS[int_idx].into(),
                });
                int_idx += 1;
            }
            Scalar::F64 => {
                g.emit(Inst::MovSd {
                    dst: slot.into(),
                    src: Xmm::SYSV_ARGS[fp_idx].into(),
                });
                fp_idx += 1;
            }
        }
    }

    for s in &f.body {
        g.stmt(s)?;
    }

    // Default return value for a fall-off-the-end path.
    match g.ret {
        Some(Scalar::I64) => g.emit(Inst::Alu {
            op: AluOp::Xor,
            w: Width::W32,
            dst: RAX,
            src: RAX,
        }),
        Some(Scalar::F64) => g.emit(Inst::Sse {
            op: SseOp::Xorpd,
            dst: Xmm::Xmm0,
            src: XMM0,
        }),
        None => {}
    }
    let epi = g.epilogue;
    g.asm.bind(epi);
    g.emit(Inst::Mov {
        w: Width::W64,
        dst: RSP,
        src: Gpr::Rbp.into(),
    });
    g.emit(Inst::Pop {
        dst: Gpr::Rbp.into(),
    });
    g.emit(Inst::Ret);
    Ok(g.asm)
}

impl Gen<'_> {
    fn emit(&mut self, i: Inst) {
        self.asm.emit(i);
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self, s: &TStmt) -> Result<(), CodegenError> {
        match s {
            TStmt::Expr(e) => self.eval(e),
            TStmt::If(cond, then, els) => {
                let lelse = self.asm.label();
                let lend = self.asm.label();
                self.cond_jump_false(cond, lelse)?;
                for s in then {
                    self.stmt(s)?;
                }
                self.asm.jmp(lend);
                self.asm.bind(lelse);
                for s in els {
                    self.stmt(s)?;
                }
                self.asm.bind(lend);
                Ok(())
            }
            TStmt::Loop { cond, body, step } => {
                let ltop = self.asm.label();
                let lstep = self.asm.label();
                let lend = self.asm.label();
                self.asm.bind(ltop);
                self.cond_jump_false(cond, lend)?;
                self.loops.push((lstep, lend));
                for s in body {
                    self.stmt(s)?;
                }
                self.loops.pop();
                self.asm.bind(lstep);
                if let Some(e) = step {
                    self.eval(e)?;
                }
                self.asm.jmp(ltop);
                self.asm.bind(lend);
                Ok(())
            }
            TStmt::Return(e) => {
                if let Some(e) = e {
                    match scalar_of(e) {
                        Scalar::I64 => self.gen_int(e)?,
                        Scalar::F64 => self.gen_f64(e)?,
                    }
                }
                self.asm.jmp(self.epilogue);
                Ok(())
            }
            TStmt::Break => {
                let l = self.loops.last().expect("break outside loop").1;
                self.asm.jmp(l);
                Ok(())
            }
            TStmt::Continue => {
                let l = self.loops.last().expect("continue outside loop").0;
                self.asm.jmp(l);
                Ok(())
            }
        }
    }

    /// Evaluate for effect, leaving the result class irrelevant.
    fn eval(&mut self, e: &TExpr) -> Result<(), CodegenError> {
        if let TExpr::Call { ret: None, .. } = e {
            return self.gen_call(e);
        }
        match scalar_of(e) {
            Scalar::I64 => self.gen_int(e),
            Scalar::F64 => self.gen_f64(e),
        }
    }

    /// Evaluate `cond` and jump to `target` when it is false.
    fn cond_jump_false(&mut self, cond: &TExpr, target: Label) -> Result<(), CodegenError> {
        self.gen_int(cond)?;
        self.emit(Inst::Test {
            w: Width::W64,
            a: RAX,
            b: RAX,
        });
        self.asm.jcc(Cond::E, target);
        Ok(())
    }

    // ---- integer expressions (result in RAX) -------------------------------

    fn gen_int(&mut self, e: &TExpr) -> Result<(), CodegenError> {
        match e {
            TExpr::ConstI(v) => self.load_imm(Gpr::Rax, *v),
            TExpr::FrameAddr(off) => self.emit(Inst::Lea {
                dst: Gpr::Rax,
                src: MemRef::base_disp(Gpr::Rbp, *off as i32),
            }),
            TExpr::GlobalAddr(name) => {
                let addr = self.globals.get(name).copied();
                match addr {
                    Some(a) => self.load_imm(Gpr::Rax, a as i64),
                    None => self.asm.movabs_sym(Gpr::Rax, name.clone()),
                }
            }
            TExpr::FnAddr(name) => self.asm.movabs_sym(Gpr::Rax, name.clone()),
            TExpr::Load(addr, Scalar::I64) => {
                self.gen_int(addr)?;
                self.emit(Inst::Mov {
                    w: Width::W64,
                    dst: RAX,
                    src: MemRef::base(Gpr::Rax).into(),
                });
            }
            TExpr::Load(_, Scalar::F64) => unreachable!("f64 load in int context"),
            TExpr::Store {
                addr,
                value,
                ty: Scalar::I64,
            } => {
                if let TExpr::FrameAddr(off) = **addr {
                    self.gen_int(value)?;
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: MemRef::base_disp(Gpr::Rbp, off as i32).into(),
                        src: RAX,
                    });
                } else {
                    self.gen_int(addr)?;
                    self.emit(Inst::Push { src: RAX });
                    self.gen_int(value)?;
                    self.emit(Inst::Pop { dst: RCX });
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: MemRef::base(Gpr::Rcx).into(),
                        src: RAX,
                    });
                }
            }
            TExpr::AssignOp {
                addr,
                op,
                rhs,
                ty: Scalar::I64,
            } => {
                if let TExpr::FrameAddr(off) = **addr {
                    let slot = MemRef::base_disp(Gpr::Rbp, off as i32);
                    if Self::simple_int(rhs) {
                        self.gen_simple_int_into(Gpr::Rcx, rhs);
                    } else {
                        self.gen_int(rhs)?;
                        self.emit(Inst::Mov {
                            w: Width::W64,
                            dst: RCX,
                            src: RAX,
                        });
                    }
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: RAX,
                        src: slot.into(),
                    });
                    self.int_binop(*op)?;
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: slot.into(),
                        src: RAX,
                    });
                } else {
                    self.gen_int(addr)?;
                    self.emit(Inst::Push { src: RAX });
                    self.gen_int(rhs)?;
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: RCX,
                        src: RAX,
                    });
                    self.emit(Inst::Pop { dst: R10 });
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: RAX,
                        src: MemRef::base(Gpr::R10).into(),
                    });
                    self.int_binop(*op)?;
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: MemRef::base(Gpr::R10).into(),
                        src: RAX,
                    });
                }
            }
            TExpr::IncDec { addr, delta, post } => {
                let slot: Operand = if let TExpr::FrameAddr(off) = **addr {
                    MemRef::base_disp(Gpr::Rbp, off as i32).into()
                } else {
                    self.gen_int(addr)?;
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: R10,
                        src: RAX,
                    });
                    MemRef::base(Gpr::R10).into()
                };
                self.emit(Inst::Mov {
                    w: Width::W64,
                    dst: RAX,
                    src: slot,
                });
                if *post {
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: RCX,
                        src: RAX,
                    });
                }
                self.emit(Inst::Alu {
                    op: AluOp::Add,
                    w: Width::W64,
                    dst: RAX,
                    src: Operand::Imm(*delta),
                });
                self.emit(Inst::Mov {
                    w: Width::W64,
                    dst: slot,
                    src: RAX,
                });
                if *post {
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: RAX,
                        src: RCX,
                    });
                }
            }
            TExpr::Bin(op, Scalar::I64, a, b) => {
                if Self::simple_int(b) {
                    self.gen_int(a)?;
                    self.gen_simple_int_into(Gpr::Rcx, b);
                } else {
                    self.gen_int(a)?;
                    self.emit(Inst::Push { src: RAX });
                    self.gen_int(b)?;
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: RCX,
                        src: RAX,
                    });
                    self.emit(Inst::Pop { dst: RAX });
                }
                self.int_binop(*op)?;
            }
            TExpr::Cmp(op, Scalar::I64, a, b) => {
                if Self::simple_int(b) {
                    self.gen_int(a)?;
                    self.gen_simple_int_into(Gpr::Rcx, b);
                } else {
                    self.gen_int(a)?;
                    self.emit(Inst::Push { src: RAX });
                    self.gen_int(b)?;
                    self.emit(Inst::Mov {
                        w: Width::W64,
                        dst: RCX,
                        src: RAX,
                    });
                    self.emit(Inst::Pop { dst: RAX });
                }
                self.emit(Inst::Alu {
                    op: AluOp::Cmp,
                    w: Width::W64,
                    dst: RAX,
                    src: RCX,
                });
                let cond = int_cond(*op);
                self.setcc_bool(cond);
            }
            TExpr::Cmp(op, Scalar::F64, a, b) => {
                self.gen_f64_pair(a, b)?;
                self.f64_compare(*op);
            }
            TExpr::Neg(Scalar::I64, a) => {
                self.gen_int(a)?;
                self.emit(Inst::Unary {
                    op: UnOp::Neg,
                    w: Width::W64,
                    dst: RAX,
                });
            }
            TExpr::Neg(Scalar::F64, _) => unreachable!("f64 neg in int context"),
            TExpr::Not(a) => {
                self.gen_int(a)?;
                self.emit(Inst::Test {
                    w: Width::W64,
                    a: RAX,
                    b: RAX,
                });
                self.setcc_bool(Cond::E);
            }
            TExpr::LogAnd(a, b) => {
                let lfalse = self.asm.label();
                let lend = self.asm.label();
                self.cond_jump_false(a, lfalse)?;
                self.cond_jump_false(b, lfalse)?;
                self.load_imm(Gpr::Rax, 1);
                self.asm.jmp(lend);
                self.asm.bind(lfalse);
                self.load_imm(Gpr::Rax, 0);
                self.asm.bind(lend);
            }
            TExpr::LogOr(a, b) => {
                let ltrue = self.asm.label();
                let lfalse = self.asm.label();
                let lend = self.asm.label();
                self.gen_int(a)?;
                self.emit(Inst::Test {
                    w: Width::W64,
                    a: RAX,
                    b: RAX,
                });
                self.asm.jcc(Cond::Ne, ltrue);
                self.cond_jump_false(b, lfalse)?;
                self.asm.bind(ltrue);
                self.load_imm(Gpr::Rax, 1);
                self.asm.jmp(lend);
                self.asm.bind(lfalse);
                self.load_imm(Gpr::Rax, 0);
                self.asm.bind(lend);
            }
            TExpr::DoubleToInt(a) => {
                self.gen_f64(a)?;
                self.emit(Inst::Cvttsd2si {
                    w: Width::W64,
                    dst: Gpr::Rax,
                    src: XMM0,
                });
            }
            TExpr::IntToDouble(_) | TExpr::ConstF(_) => unreachable!("double in int context"),
            TExpr::Bin(_, Scalar::F64, ..) => unreachable!("f64 arithmetic in int context"),
            TExpr::Store {
                ty: Scalar::F64, ..
            }
            | TExpr::AssignOp {
                ty: Scalar::F64, ..
            } => {
                unreachable!("f64 store in int context")
            }
            TExpr::Call {
                ret: Some(Scalar::I64),
                ..
            } => self.gen_call(e)?,
            TExpr::Call { .. } => unreachable!("non-int call in int context"),
        }
        Ok(())
    }

    fn int_binop(&mut self, op: BinOp) -> Result<(), CodegenError> {
        match op {
            BinOp::Add => self.emit(Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: RAX,
                src: RCX,
            }),
            BinOp::Sub => self.emit(Inst::Alu {
                op: AluOp::Sub,
                w: Width::W64,
                dst: RAX,
                src: RCX,
            }),
            BinOp::Mul => self.emit(Inst::Imul {
                w: Width::W64,
                dst: Gpr::Rax,
                src: RCX,
            }),
            BinOp::Div => {
                self.emit(Inst::Cqo { w: Width::W64 });
                self.emit(Inst::Idiv {
                    w: Width::W64,
                    src: RCX,
                });
            }
            BinOp::Rem => {
                self.emit(Inst::Cqo { w: Width::W64 });
                self.emit(Inst::Idiv {
                    w: Width::W64,
                    src: RCX,
                });
                self.emit(Inst::Mov {
                    w: Width::W64,
                    dst: RAX,
                    src: RDX,
                });
            }
            _ => unreachable!("comparison routed to Cmp"),
        }
        Ok(())
    }

    /// `setcc al; movzx eax, al`.
    fn setcc_bool(&mut self, cond: Cond) {
        self.emit(Inst::Setcc { cond, dst: RAX });
        self.emit(Inst::Movzx8 {
            w: Width::W32,
            dst: Gpr::Rax,
            src: RAX,
        });
    }

    /// Expressions loadable into a register without disturbing any other
    /// register or the stack — candidates for the "simple operand" path
    /// that avoids push/pop temporaries (what an optimizing compiler does;
    /// it also gives the rewriter much cleaner input).
    fn simple_int(e: &TExpr) -> bool {
        matches!(
            e,
            TExpr::ConstI(_)
                | TExpr::FrameAddr(_)
                | TExpr::GlobalAddr(_)
                | TExpr::FnAddr(_)
                | TExpr::Load(_, Scalar::I64)
        ) && match e {
            TExpr::Load(a, _) => matches!(**a, TExpr::FrameAddr(_)),
            _ => true,
        }
    }

    fn simple_f64(e: &TExpr) -> bool {
        match e {
            TExpr::ConstF(v) => *v == 0.0 && v.is_sign_positive(),
            TExpr::Load(a, Scalar::F64) => matches!(**a, TExpr::FrameAddr(_)),
            _ => false,
        }
    }

    /// Load a simple integer expression directly into `dst`.
    fn gen_simple_int_into(&mut self, dst: Gpr, e: &TExpr) {
        match e {
            TExpr::ConstI(v) => self.load_imm(dst, *v),
            TExpr::FrameAddr(off) => self.emit(Inst::Lea {
                dst,
                src: MemRef::base_disp(Gpr::Rbp, *off as i32),
            }),
            TExpr::GlobalAddr(name) => match self.globals.get(name).copied() {
                Some(a) => self.load_imm(dst, a as i64),
                None => self.asm.movabs_sym(dst, name.clone()),
            },
            TExpr::FnAddr(name) => self.asm.movabs_sym(dst, name.clone()),
            TExpr::Load(a, Scalar::I64) => {
                let TExpr::FrameAddr(off) = **a else {
                    unreachable!("not simple")
                };
                self.emit(Inst::Mov {
                    w: Width::W64,
                    dst: Operand::Reg(dst),
                    src: MemRef::base_disp(Gpr::Rbp, off as i32).into(),
                });
            }
            _ => unreachable!("not simple"),
        }
    }

    /// Load a simple double expression directly into `dst`.
    fn gen_simple_f64_into(&mut self, dst: Xmm, e: &TExpr) {
        match e {
            TExpr::ConstF(_) => self.emit(Inst::Sse {
                op: SseOp::Xorpd,
                dst,
                src: Operand::Xmm(dst),
            }),
            TExpr::Load(a, Scalar::F64) => {
                let TExpr::FrameAddr(off) = **a else {
                    unreachable!("not simple")
                };
                self.emit(Inst::MovSd {
                    dst: Operand::Xmm(dst),
                    src: MemRef::base_disp(Gpr::Rbp, off as i32).into(),
                });
            }
            _ => unreachable!("not simple"),
        }
    }

    fn load_imm(&mut self, dst: Gpr, v: i64) {
        if i32::try_from(v).is_ok() {
            self.emit(Inst::Mov {
                w: Width::W64,
                dst: dst.into(),
                src: Operand::Imm(v),
            });
        } else {
            self.emit(Inst::MovAbs { dst, imm: v as u64 });
        }
    }

    // ---- double expressions (result in XMM0) --------------------------------

    fn gen_f64(&mut self, e: &TExpr) -> Result<(), CodegenError> {
        match e {
            TExpr::ConstF(v) => {
                if *v == 0.0 && v.is_sign_positive() {
                    self.emit(Inst::Sse {
                        op: SseOp::Xorpd,
                        dst: Xmm::Xmm0,
                        src: XMM0,
                    });
                } else {
                    // movabs rax, bits; push; movsd xmm0, [rsp]; add rsp, 8
                    self.emit(Inst::MovAbs {
                        dst: Gpr::Rax,
                        imm: v.to_bits(),
                    });
                    self.emit(Inst::Push { src: RAX });
                    self.emit(Inst::MovSd {
                        dst: XMM0,
                        src: MemRef::base(Gpr::Rsp).into(),
                    });
                    self.emit(Inst::Alu {
                        op: AluOp::Add,
                        w: Width::W64,
                        dst: RSP,
                        src: Operand::Imm(8),
                    });
                }
            }
            TExpr::Load(addr, Scalar::F64) => {
                self.gen_int(addr)?;
                self.emit(Inst::MovSd {
                    dst: XMM0,
                    src: MemRef::base(Gpr::Rax).into(),
                });
            }
            TExpr::Store {
                addr,
                value,
                ty: Scalar::F64,
            } => {
                if let TExpr::FrameAddr(off) = **addr {
                    self.gen_f64(value)?;
                    self.emit(Inst::MovSd {
                        dst: MemRef::base_disp(Gpr::Rbp, off as i32).into(),
                        src: XMM0,
                    });
                } else {
                    self.gen_int(addr)?;
                    self.emit(Inst::Push { src: RAX });
                    self.gen_f64(value)?;
                    self.emit(Inst::Pop { dst: RCX });
                    self.emit(Inst::MovSd {
                        dst: MemRef::base(Gpr::Rcx).into(),
                        src: XMM0,
                    });
                }
            }
            TExpr::AssignOp {
                addr,
                op,
                rhs,
                ty: Scalar::F64,
            } => {
                if let TExpr::FrameAddr(off) = **addr {
                    let slot = MemRef::base_disp(Gpr::Rbp, off as i32);
                    self.gen_f64(rhs)?;
                    self.emit(Inst::MovSd {
                        dst: XMM1,
                        src: XMM0,
                    });
                    self.emit(Inst::MovSd {
                        dst: XMM0,
                        src: slot.into(),
                    });
                    self.f64_binop(*op);
                    self.emit(Inst::MovSd {
                        dst: slot.into(),
                        src: XMM0,
                    });
                } else {
                    self.gen_int(addr)?;
                    self.emit(Inst::Push { src: RAX });
                    self.gen_f64(rhs)?;
                    self.emit(Inst::Pop { dst: R10 });
                    self.emit(Inst::MovSd {
                        dst: XMM1,
                        src: XMM0,
                    });
                    self.emit(Inst::MovSd {
                        dst: XMM0,
                        src: MemRef::base(Gpr::R10).into(),
                    });
                    self.f64_binop(*op);
                    self.emit(Inst::MovSd {
                        dst: MemRef::base(Gpr::R10).into(),
                        src: XMM0,
                    });
                }
            }
            TExpr::Bin(op, Scalar::F64, a, b) => {
                self.gen_f64_pair(a, b)?;
                self.f64_binop(*op);
            }
            TExpr::Neg(Scalar::F64, a) => {
                self.gen_f64(a)?;
                self.emit(Inst::MovSd {
                    dst: XMM1,
                    src: XMM0,
                });
                self.emit(Inst::Sse {
                    op: SseOp::Xorpd,
                    dst: Xmm::Xmm0,
                    src: XMM0,
                });
                self.emit(Inst::Sse {
                    op: SseOp::Subsd,
                    dst: Xmm::Xmm0,
                    src: XMM1,
                });
            }
            TExpr::IntToDouble(a) => {
                self.gen_int(a)?;
                self.emit(Inst::Cvtsi2sd {
                    w: Width::W64,
                    dst: Xmm::Xmm0,
                    src: RAX,
                });
            }
            TExpr::Call {
                ret: Some(Scalar::F64),
                ..
            } => self.gen_call(e)?,
            other => unreachable!("int expression {other:?} in f64 context"),
        }
        Ok(())
    }

    /// Evaluate `a` and `b`, leaving `a` in XMM0 and `b` in XMM1.
    fn gen_f64_pair(&mut self, a: &TExpr, b: &TExpr) -> Result<(), CodegenError> {
        if Self::simple_f64(b) {
            self.gen_f64(a)?;
            self.gen_simple_f64_into(Xmm::Xmm1, b);
            return Ok(());
        }
        self.gen_f64(a)?;
        self.emit(Inst::Alu {
            op: AluOp::Sub,
            w: Width::W64,
            dst: RSP,
            src: Operand::Imm(8),
        });
        self.emit(Inst::MovSd {
            dst: MemRef::base(Gpr::Rsp).into(),
            src: XMM0,
        });
        self.gen_f64(b)?;
        self.emit(Inst::MovSd {
            dst: XMM1,
            src: XMM0,
        });
        self.emit(Inst::MovSd {
            dst: XMM0,
            src: MemRef::base(Gpr::Rsp).into(),
        });
        self.emit(Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            dst: RSP,
            src: Operand::Imm(8),
        });
        Ok(())
    }

    fn f64_binop(&mut self, op: BinOp) {
        let sse = match op {
            BinOp::Add => SseOp::Addsd,
            BinOp::Sub => SseOp::Subsd,
            BinOp::Mul => SseOp::Mulsd,
            BinOp::Div => SseOp::Divsd,
            _ => unreachable!("comparison routed to Cmp"),
        };
        self.emit(Inst::Sse {
            op: sse,
            dst: Xmm::Xmm0,
            src: XMM1,
        });
    }

    /// Compare XMM0 (lhs) with XMM1 (rhs), producing 0/1 in RAX with correct
    /// NaN semantics (the swapped-operand `seta` idiom for `<`/`<=`).
    fn f64_compare(&mut self, op: BinOp) {
        match op {
            BinOp::Gt => {
                self.emit(Inst::Ucomisd {
                    a: Xmm::Xmm0,
                    b: XMM1,
                });
                self.setcc_bool(Cond::A);
            }
            BinOp::Ge => {
                self.emit(Inst::Ucomisd {
                    a: Xmm::Xmm0,
                    b: XMM1,
                });
                self.setcc_bool(Cond::Ae);
            }
            BinOp::Lt => {
                self.emit(Inst::Ucomisd {
                    a: Xmm::Xmm1,
                    b: XMM0,
                });
                self.setcc_bool(Cond::A);
            }
            BinOp::Le => {
                self.emit(Inst::Ucomisd {
                    a: Xmm::Xmm1,
                    b: XMM0,
                });
                self.setcc_bool(Cond::Ae);
            }
            BinOp::Eq => {
                // ZF=1 and PF=0 (NaN sets PF).
                self.emit(Inst::Ucomisd {
                    a: Xmm::Xmm0,
                    b: XMM1,
                });
                self.emit(Inst::Setcc {
                    cond: Cond::E,
                    dst: RAX,
                });
                self.emit(Inst::Setcc {
                    cond: Cond::Np,
                    dst: RCX,
                });
                self.emit(Inst::Movzx8 {
                    w: Width::W32,
                    dst: Gpr::Rax,
                    src: RAX,
                });
                self.emit(Inst::Movzx8 {
                    w: Width::W32,
                    dst: Gpr::Rcx,
                    src: RCX,
                });
                self.emit(Inst::Alu {
                    op: AluOp::And,
                    w: Width::W32,
                    dst: RAX,
                    src: RCX,
                });
            }
            BinOp::Ne => {
                self.emit(Inst::Ucomisd {
                    a: Xmm::Xmm0,
                    b: XMM1,
                });
                self.emit(Inst::Setcc {
                    cond: Cond::Ne,
                    dst: RAX,
                });
                self.emit(Inst::Setcc {
                    cond: Cond::P,
                    dst: RCX,
                });
                self.emit(Inst::Movzx8 {
                    w: Width::W32,
                    dst: Gpr::Rax,
                    src: RAX,
                });
                self.emit(Inst::Movzx8 {
                    w: Width::W32,
                    dst: Gpr::Rcx,
                    src: RCX,
                });
                self.emit(Inst::Alu {
                    op: AluOp::Or,
                    w: Width::W32,
                    dst: RAX,
                    src: RCX,
                });
            }
            _ => unreachable!("not a comparison"),
        }
    }

    // ---- calls ----------------------------------------------------------

    fn gen_call(&mut self, e: &TExpr) -> Result<(), CodegenError> {
        let TExpr::Call { target, args, ret } = e else {
            unreachable!()
        };
        // Push the callee address first (deepest) for indirect calls.
        if let CallTarget::Indirect(fexpr) = target {
            self.gen_int(fexpr)?;
            self.emit(Inst::Push { src: RAX });
        }
        // Evaluate arguments left-to-right onto the stack.
        for (a, sc) in args {
            match sc {
                Scalar::I64 => {
                    self.gen_int(a)?;
                    self.emit(Inst::Push { src: RAX });
                }
                Scalar::F64 => {
                    self.gen_f64(a)?;
                    self.emit(Inst::Alu {
                        op: AluOp::Sub,
                        w: Width::W64,
                        dst: RSP,
                        src: Operand::Imm(8),
                    });
                    self.emit(Inst::MovSd {
                        dst: MemRef::base(Gpr::Rsp).into(),
                        src: XMM0,
                    });
                }
            }
        }
        // Pop into argument registers in reverse.
        let mut int_pos: Vec<usize> = Vec::new();
        let mut fp_pos: Vec<usize> = Vec::new();
        for (i, (_, sc)) in args.iter().enumerate() {
            match sc {
                Scalar::I64 => int_pos.push(i),
                Scalar::F64 => fp_pos.push(i),
            }
        }
        for (i, (_, sc)) in args.iter().enumerate().rev() {
            match sc {
                Scalar::I64 => {
                    let idx = int_pos.iter().position(|&p| p == i).unwrap();
                    self.emit(Inst::Pop {
                        dst: Gpr::SYSV_ARGS[idx].into(),
                    });
                }
                Scalar::F64 => {
                    let idx = fp_pos.iter().position(|&p| p == i).unwrap();
                    self.emit(Inst::MovSd {
                        dst: Xmm::SYSV_ARGS[idx].into(),
                        src: MemRef::base(Gpr::Rsp).into(),
                    });
                    self.emit(Inst::Alu {
                        op: AluOp::Add,
                        w: Width::W64,
                        dst: RSP,
                        src: Operand::Imm(8),
                    });
                }
            }
        }
        match target {
            CallTarget::Direct(name) => self.asm.call_sym(name.clone()),
            CallTarget::Indirect(_) => {
                self.emit(Inst::Pop { dst: R10 });
                self.emit(Inst::CallInd { src: R10 });
            }
        }
        let _ = ret; // result is already in RAX / XMM0
        Ok(())
    }
}

fn int_cond(op: BinOp) -> Cond {
    match op {
        BinOp::Eq => Cond::E,
        BinOp::Ne => Cond::Ne,
        BinOp::Lt => Cond::L,
        BinOp::Le => Cond::Le,
        BinOp::Gt => Cond::G,
        BinOp::Ge => Cond::Ge,
        _ => unreachable!("not a comparison"),
    }
}

/// The machine class an expression's value occupies.
pub fn scalar_of(e: &TExpr) -> Scalar {
    match e {
        TExpr::ConstF(_)
        | TExpr::IntToDouble(_)
        | TExpr::Neg(Scalar::F64, _)
        | TExpr::Load(_, Scalar::F64)
        | TExpr::Store {
            ty: Scalar::F64, ..
        }
        | TExpr::AssignOp {
            ty: Scalar::F64, ..
        }
        | TExpr::Bin(_, Scalar::F64, ..)
        | TExpr::Call {
            ret: Some(Scalar::F64),
            ..
        } => Scalar::F64,
        _ => Scalar::I64,
    }
}
