//! Lexer for the mini-C language.

use std::fmt;

/// A token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Double(f64),
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Punctuation / operator, e.g. `"->"`, `"+="`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Double(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Explanation.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Multi-character punctuation, longest first.
const PUNCTS: &[&str] = &[
    "->", "++", "--", "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=", "&&", "||", "(", ")", "{",
    "}", "[", "]", ";", ",", ".", "+", "-", "*", "/", "%", "=", "<", ">", "!", "&",
];

/// Tokenize `src`. Supports `//` and `/* */` comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    'outer: while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if b[i + 1] == b'*' {
                i += 2;
                while i + 1 < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        continue 'outer;
                    }
                    i += 1;
                }
                return Err(LexError {
                    msg: "unterminated comment".into(),
                    line,
                });
            }
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len()
                && (b[i].is_ascii_digit()
                    || b[i] == b'x'
                    || b[i] == b'X'
                    || (b[i].is_ascii_hexdigit() && src[start..].starts_with("0x")))
            {
                i += 1;
            }
            let mut is_double = false;
            if i < b.len() && b[i] == b'.' && !src[start..i].starts_with("0x") {
                is_double = true;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') && !src[start..i].starts_with("0x") {
                is_double = true;
                i += 1;
                if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                    i += 1;
                }
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &src[start..i];
            let kind = if is_double {
                Tok::Double(text.parse().map_err(|_| LexError {
                    msg: format!("bad double literal `{text}`"),
                    line,
                })?)
            } else if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                Tok::Int(i64::from_str_radix(hex, 16).map_err(|_| LexError {
                    msg: format!("bad hex literal `{text}`"),
                    line,
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| LexError {
                    msg: format!("bad int literal `{text}`"),
                    line,
                })?)
            };
            out.push(Token { kind, line });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                kind: Tok::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        // Punctuation.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Token {
                    kind: Tok::Punct(p),
                    line,
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            msg: format!("unexpected character `{}`", c as char),
            line,
        });
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0x2a 3.5 1e3 2.5e-2"),
            vec![
                Tok::Int(42),
                Tok::Int(42),
                Tok::Double(3.5),
                Tok::Double(1000.0),
                Tok::Double(0.025),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("a->b && c++"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("->"),
                Tok::Ident("b".into()),
                Tok::Punct("&&"),
                Tok::Ident("c".into()),
                Tok::Punct("++"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn minus_is_separate_from_literal() {
        // `-1` lexes as punct + int; the parser folds unary minus.
        assert_eq!(kinds("-1"), vec![Tok::Punct("-"), Tok::Int(1), Tok::Eof]);
    }
}
