//! A relocatable instruction buffer: label binding, symbolic calls and
//! absolute-address fixups, assembled to machine code at a base address.

use brew_x86::prelude::*;
use std::fmt;

/// Opaque label handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Link/assembly errors.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmError {
    /// A referenced label was never bound.
    UnboundLabel(usize),
    /// A symbol could not be resolved.
    UnknownSymbol(String),
    /// Instruction failed to encode.
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l} never bound"),
            AsmError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

/// A growable instruction buffer with deferred branch/symbol resolution.
#[derive(Debug, Default)]
pub struct Asm {
    /// Emitted instructions in order.
    pub insts: Vec<Inst>,
    branch_fix: Vec<(usize, Label)>,
    call_fix: Vec<(usize, String)>,
    abs_fix: Vec<(usize, String)>,
    labels: Vec<Option<usize>>,
}

impl Asm {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `l` to the current position.
    pub fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.insts.len());
    }

    /// Append an instruction.
    pub fn emit(&mut self, i: Inst) {
        self.insts.push(i);
    }

    /// Append `jmp label`.
    pub fn jmp(&mut self, l: Label) {
        self.branch_fix.push((self.insts.len(), l));
        self.insts.push(Inst::JmpRel { target: 0 });
    }

    /// Append `jcc label`.
    pub fn jcc(&mut self, cond: Cond, l: Label) {
        self.branch_fix.push((self.insts.len(), l));
        self.insts.push(Inst::Jcc { cond, target: 0 });
    }

    /// Append `call symbol` (resolved at assembly).
    pub fn call_sym(&mut self, name: impl Into<String>) {
        self.call_fix.push((self.insts.len(), name.into()));
        self.insts.push(Inst::CallRel { target: 0 });
    }

    /// Append `movabs reg, &symbol` (resolved at assembly).
    pub fn movabs_sym(&mut self, dst: Gpr, name: impl Into<String>) {
        self.abs_fix.push((self.insts.len(), name.into()));
        self.insts.push(Inst::MovAbs { dst, imm: 0 });
    }

    /// Total encoded size in bytes (address-independent for this subset).
    pub fn byte_len(&self) -> Result<usize, AsmError> {
        let mut n = 0;
        for i in &self.insts {
            n += encoded_len(i)?;
        }
        Ok(n)
    }

    /// Assemble at `base`, resolving symbols through `resolve`.
    pub fn assemble(
        mut self,
        base: u64,
        resolve: &dyn Fn(&str) -> Option<u64>,
    ) -> Result<Vec<u8>, AsmError> {
        // Instruction offsets (lengths don't depend on final targets).
        let mut offs = Vec::with_capacity(self.insts.len() + 1);
        let mut off = 0usize;
        for i in &self.insts {
            offs.push(off);
            off += encoded_len(i)?;
        }
        offs.push(off);

        for (idx, l) in &self.branch_fix {
            let at = self.labels[l.0].ok_or(AsmError::UnboundLabel(l.0))?;
            self.insts[*idx].set_static_target(base + offs[at] as u64);
        }
        for (idx, name) in &self.call_fix {
            let target = resolve(name).ok_or_else(|| AsmError::UnknownSymbol(name.clone()))?;
            self.insts[*idx].set_static_target(target);
        }
        for (idx, name) in &self.abs_fix {
            let target = resolve(name).ok_or_else(|| AsmError::UnknownSymbol(name.clone()))?;
            match &mut self.insts[*idx] {
                Inst::MovAbs { imm, .. } => *imm = target,
                other => unreachable!("abs fixup on {other}"),
            }
        }

        let mut out = Vec::with_capacity(off);
        for (i, inst) in self.insts.iter().enumerate() {
            debug_assert_eq!(out.len(), offs[i]);
            encode(inst, base + offs[i] as u64, &mut out)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new();
        let top = a.label();
        let end = a.label();
        a.bind(top);
        a.emit(Inst::Unary {
            op: UnOp::Dec,
            w: Width::W64,
            dst: Gpr::Rax.into(),
        });
        a.jcc(Cond::E, end);
        a.jmp(top);
        a.bind(end);
        a.emit(Inst::Ret);
        let bytes = a.assemble(0x40_0000, &|_| None).unwrap();
        let (insts, err) = decode_all(&bytes, 0x40_0000);
        assert!(err.is_none());
        assert_eq!(insts.len(), 4);
        assert_eq!(insts[1].1.static_target(), Some(insts[3].0)); // je -> ret
        assert_eq!(insts[2].1.static_target(), Some(0x40_0000)); // jmp -> top
    }

    #[test]
    fn symbols_resolve() {
        let mut a = Asm::new();
        a.call_sym("callee");
        a.movabs_sym(Gpr::Rax, "glob");
        a.emit(Inst::Ret);
        let bytes = a
            .assemble(0x40_0000, &|s| match s {
                "callee" => Some(0x40_1000),
                "glob" => Some(0x60_0008),
                _ => None,
            })
            .unwrap();
        let (insts, _) = decode_all(&bytes, 0x40_0000);
        assert_eq!(insts[0].1.static_target(), Some(0x40_1000));
        assert_eq!(
            insts[1].1,
            Inst::MovAbs {
                dst: Gpr::Rax,
                imm: 0x60_0008
            }
        );
    }

    #[test]
    fn unknown_symbol_errors() {
        let mut a = Asm::new();
        a.call_sym("missing");
        assert_eq!(
            a.assemble(0, &|_| None),
            Err(AsmError::UnknownSymbol("missing".into()))
        );
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Asm::new();
        let l = a.label();
        a.jmp(l);
        assert_eq!(a.assemble(0, &|_| None), Err(AsmError::UnboundLabel(0)));
    }
}
