//! # brew-minic — the static-compiler substrate
//!
//! The paper's evaluation rewrites functions produced by `gcc -O2`; this
//! crate is the substituted static compiler (DESIGN.md §2 item 4): a small C
//! subset ("mini-C") compiled to the x86-64 subset directly into a
//! [`brew_image::Image`], so the rewriter has honest compiled binaries —
//! with real prologues, ABI calls, frames and loops — to specialize.
//!
//! Mini-C covers what the paper's listings need: `int` (64-bit) and
//! `double`, pointers, fixed-size arrays, structs, function pointers and
//! typedefs thereof, `for`/`while`/`if`, compound assignment, and global
//! initializer lists (the stencil descriptor of Figure 4).
//!
//! ```
//! use brew_image::Image;
//! use brew_emu::{CallArgs, Machine};
//!
//! let mut img = Image::new();
//! let prog = brew_minic::compile_into(
//!     "int mul_add(int a, int b, int c) { return a * b + c; }",
//!     &mut img,
//! ).unwrap();
//! let mut m = Machine::new();
//! let f = prog.func("mul_add").unwrap();
//! let out = m.call(&mut img, f, &CallArgs::new().int(6).int(7).int(-2)).unwrap();
//! assert_eq!(out.ret_int as i64, 40);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod ast;
pub mod codegen;
pub mod lex;
pub mod parse;
pub mod sema;
pub mod types;

use brew_image::Image;
use sema::InitVal;
use std::collections::HashMap;
use std::fmt;

/// Compilation error: any stage's failure.
#[derive(Debug)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(parse::ParseError),
    /// Type checking failed.
    Sema(sema::SemaError),
    /// Code generation / linking failed.
    Asm(asm::AsmError),
    /// The image rejected a write.
    Image(brew_image::MemFault),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Sema(e) => write!(f, "{e}"),
            CompileError::Asm(e) => write!(f, "codegen error: {e}"),
            CompileError::Image(e) => write!(f, "image error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<parse::ParseError> for CompileError {
    fn from(e: parse::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<sema::SemaError> for CompileError {
    fn from(e: sema::SemaError) -> Self {
        CompileError::Sema(e)
    }
}

impl From<asm::AsmError> for CompileError {
    fn from(e: asm::AsmError) -> Self {
        CompileError::Asm(e)
    }
}

impl From<brew_image::MemFault> for CompileError {
    fn from(e: brew_image::MemFault) -> Self {
        CompileError::Image(e)
    }
}

/// Addresses of everything a compilation produced.
#[derive(Debug, Clone, Default)]
pub struct Compiled {
    /// Function name → entry address.
    pub funcs: HashMap<String, u64>,
    /// Function name → encoded length in bytes.
    pub func_len: HashMap<String, usize>,
    /// Global name → data address.
    pub globals: HashMap<String, u64>,
    /// Function name → signature.
    pub sigs: HashMap<String, std::sync::Arc<types::Sig>>,
}

impl Compiled {
    /// Entry address of a function.
    pub fn func(&self, name: &str) -> Option<u64> {
        self.funcs.get(name).copied()
    }

    /// Address of a global.
    pub fn global(&self, name: &str) -> Option<u64> {
        self.globals.get(name).copied()
    }
}

/// Compile mini-C source into `img`: globals into the data segment,
/// functions into the code segment, all symbols defined in the image.
pub fn compile_into(src: &str, img: &Image) -> Result<Compiled, CompileError> {
    let items = parse::parse(src)?;
    let prog = sema::check(&items)?;

    // 1. Allocate globals so code generation can embed their addresses.
    let mut out = Compiled::default();
    for g in &prog.globals {
        let addr = img.alloc_data(g.size, 8);
        out.globals.insert(g.name.clone(), addr);
        img.define(g.name.clone(), addr);
    }

    // 2. Generate code for every function, then lay them out.
    let mut asms = Vec::new();
    for f in &prog.funcs {
        let a = codegen::gen_func(f, &out.globals)?;
        let len = a.byte_len()?;
        let addr = img.alloc_code(&vec![0u8; len]);
        out.funcs.insert(f.name.clone(), addr);
        out.func_len.insert(f.name.clone(), len);
        out.sigs.insert(f.name.clone(), f.sig.clone());
        img.define(f.name.clone(), addr);
        asms.push((f.name.clone(), addr, a));
    }

    // 3. Assemble with full symbol knowledge and install the bytes.
    for (name, addr, a) in asms {
        let funcs = &out.funcs;
        let globals = &out.globals;
        let bytes = a.assemble(addr, &|sym| {
            funcs
                .get(sym)
                .copied()
                .or_else(|| globals.get(sym).copied())
        })?;
        debug_assert_eq!(bytes.len(), out.func_len[&name]);
        img.write_bytes(addr, &bytes)?;
    }

    // 4. Global initializers (function addresses now known).
    for g in &prog.globals {
        let base = out.globals[&g.name];
        for (off, val) in &g.inits {
            match val {
                InitVal::I64(v) => img.write_u64(base + off, *v as u64)?,
                InitVal::F64(v) => img.write_f64(base + off, *v)?,
                InitVal::Fn(name) => {
                    let addr = out
                        .funcs
                        .get(name)
                        .copied()
                        .ok_or_else(|| asm::AsmError::UnknownSymbol(name.clone()))?;
                    img.write_u64(base + off, addr)?;
                }
            }
        }
    }

    Ok(out)
}

/// Disassemble `len` code bytes at `addr` into `"address: mnemonic"` lines —
/// used for the Figure-6 style listings and golden tests.
pub fn disasm(img: &Image, addr: u64, len: usize) -> Vec<String> {
    let window = img.code_window(addr, len).unwrap_or_default();
    let n = len.min(window.len());
    let (insts, _) = brew_x86::decode::decode_all(&window[..n], addr);
    insts
        .iter()
        .map(|(a, i)| format!("{a:#08x}: {i}"))
        .collect()
}
