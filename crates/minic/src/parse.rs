//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::lex::{lex, LexError, Tok, Token};
use std::collections::HashMap;
use std::fmt;

/// Parse error with source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Explanation.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            line: e.line,
        }
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    typedefs: HashMap<String, TypeExpr>,
}

/// Parse a full translation unit.
pub fn parse(src: &str) -> Result<Vec<Item>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        typedefs: HashMap::new(),
    };
    let mut items = Vec::new();
    while !p.at_eof() {
        if let Some(i) = p.item()? {
            items.push(i);
        }
    }
    Ok(items)
}

impl Parser {
    fn cur(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.cur(), Tok::Eof)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            line: self.line(),
        })
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.cur(), Tok::Punct(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found `{}`", self.cur()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.cur(), Tok::Ident(s) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => {
                self.pos -= 1;
                self.err(format!("expected identifier, found `{t}`"))
            }
        }
    }

    /// Does a type start at the current position?
    fn at_type(&self) -> bool {
        match self.cur() {
            Tok::Ident(s) => {
                s == "int"
                    || s == "double"
                    || s == "void"
                    || s == "struct"
                    || self.typedefs.contains_key(s)
            }
            _ => false,
        }
    }

    /// Parse base type + leading stars: `int`, `double`, `struct S **`, ...
    fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        let mut t = if self.eat_kw("int") {
            TypeExpr::Int
        } else if self.eat_kw("double") {
            TypeExpr::Double
        } else if self.eat_kw("void") {
            TypeExpr::Void
        } else if self.eat_kw("struct") {
            TypeExpr::Struct(self.ident()?)
        } else if let Tok::Ident(s) = self.cur() {
            if let Some(td) = self.typedefs.get(s).cloned() {
                self.pos += 1;
                td
            } else {
                return self.err(format!("expected type, found `{s}`"));
            }
        } else {
            return self.err(format!("expected type, found `{}`", self.cur()));
        };
        while self.eat_punct("*") {
            t = TypeExpr::Ptr(Box::new(t));
        }
        Ok(t)
    }

    /// Array suffixes: `name[3][4]` wraps `t` right-to-left.
    fn array_suffix(&mut self, mut t: TypeExpr) -> Result<TypeExpr, ParseError> {
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            match self.bump() {
                Tok::Int(n) if n > 0 => dims.push(n as usize),
                t => {
                    self.pos -= 1;
                    return self.err(format!("expected array size, found `{t}`"));
                }
            }
            self.expect_punct("]")?;
        }
        for d in dims.into_iter().rev() {
            t = arr(t, d);
        }
        Ok(t)
    }

    // ---- items ------------------------------------------------------------

    fn item(&mut self) -> Result<Option<Item>, ParseError> {
        // typedef
        if self.eat_kw("typedef") {
            let (ty, name) = self.typedef_decl()?;
            self.expect_punct(";")?;
            self.typedefs.insert(name, ty);
            return Ok(None);
        }
        // struct definition (vs. `struct S x;` global)
        if matches!(self.cur(), Tok::Ident(s) if s == "struct") {
            let save = self.pos;
            self.pos += 1;
            let name = self.ident()?;
            if self.eat_punct("{") {
                let mut fields = Vec::new();
                while !self.eat_punct("}") {
                    let ty = self.type_expr()?;
                    let fname = self.ident()?;
                    let ty = self.array_suffix(ty)?;
                    self.expect_punct(";")?;
                    fields.push(Field { ty, name: fname });
                }
                self.expect_punct(";")?;
                return Ok(Some(Item::Struct { name, fields }));
            }
            self.pos = save;
        }
        // global or function: type name ...
        let ty = self.type_expr()?;
        // Function-pointer global: `ret (*name)(params) = ...;`
        if self.eat_punct("(") {
            self.expect_punct("*")?;
            let name = self.ident()?;
            self.expect_punct(")")?;
            let params = self.fnptr_params()?;
            let ty = TypeExpr::FnPtr {
                ret: Box::new(ty),
                params,
            };
            let init = if self.eat_punct("=") {
                Some(Init::Expr(self.expr()?))
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Some(Item::Global { ty, name, init }));
        }
        let name = self.ident()?;
        if self.eat_punct("(") {
            // Function definition.
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                if matches!(self.cur(), Tok::Ident(s) if s == "void")
                    && matches!(&self.toks[self.pos + 1].kind, Tok::Punct(")"))
                {
                    self.pos += 1; // (void)
                } else {
                    loop {
                        let pty = self.type_expr()?;
                        // Function-pointer parameter: `ret (*name)(params)`.
                        let (pty, pname) = if self.eat_punct("(") {
                            self.expect_punct("*")?;
                            let n = self.ident()?;
                            self.expect_punct(")")?;
                            let ps = self.fnptr_params()?;
                            (
                                TypeExpr::FnPtr {
                                    ret: Box::new(pty),
                                    params: ps,
                                },
                                n,
                            )
                        } else {
                            (pty, self.ident()?)
                        };
                        params.push((pty, pname));
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
            }
            self.expect_punct("{")?;
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                body.push(self.stmt()?);
            }
            return Ok(Some(Item::Func {
                ret: ty,
                name,
                params,
                body,
            }));
        }
        // Global variable.
        let ty = self.array_suffix(ty)?;
        let init = if self.eat_punct("=") {
            Some(self.init()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(Some(Item::Global { ty, name, init }))
    }

    /// `typedef` declarator: either `type name` or `type (*name)(params)`.
    fn typedef_decl(&mut self) -> Result<(TypeExpr, String), ParseError> {
        let base = self.type_expr()?;
        if self.eat_punct("(") {
            self.expect_punct("*")?;
            let name = self.ident()?;
            self.expect_punct(")")?;
            let params = self.fnptr_params()?;
            Ok((
                TypeExpr::FnPtr {
                    ret: Box::new(base),
                    params,
                },
                name,
            ))
        } else {
            let name = self.ident()?;
            let ty = self.array_suffix(base)?;
            Ok((ty, name))
        }
    }

    fn fnptr_params(&mut self) -> Result<Vec<TypeExpr>, ParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if matches!(self.cur(), Tok::Ident(s) if s == "void")
                && matches!(&self.toks[self.pos + 1].kind, Tok::Punct(")"))
            {
                self.pos += 1;
            } else {
                loop {
                    params.push(self.type_expr()?);
                    // Optional parameter name in prototypes.
                    if matches!(self.cur(), Tok::Ident(_)) && !self.at_type() {
                        self.pos += 1;
                    }
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
        }
        Ok(params)
    }

    fn init(&mut self) -> Result<Init, ParseError> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            if !self.eat_punct("}") {
                loop {
                    items.push(self.init()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                    if matches!(self.cur(), Tok::Punct("}")) {
                        break; // trailing comma
                    }
                }
                self.expect_punct("}")?;
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.expr()?))
        }
    }

    // ---- statements --------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_punct("{") {
            let mut v = Vec::new();
            while !self.eat_punct("}") {
                v.push(self.stmt()?);
            }
            return Ok(Stmt::Block(v));
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(c, then, els));
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Stmt::While(c, Box::new(self.stmt()?)));
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.at_type() {
                Some(Box::new(self.decl_stmt()?))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond = if matches!(self.cur(), Tok::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.cur(), Tok::Punct(")")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_kw("return") {
            let e = if matches!(self.cur(), Tok::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(e));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.at_type() {
            return self.decl_stmt();
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let ty = self.type_expr()?;
        // Local function-pointer: `ret (*name)(params)`.
        let (ty, name) = if self.eat_punct("(") {
            self.expect_punct("*")?;
            let n = self.ident()?;
            self.expect_punct(")")?;
            let params = self.fnptr_params()?;
            (
                TypeExpr::FnPtr {
                    ret: Box::new(ty),
                    params,
                },
                n,
            )
        } else {
            let n = self.ident()?;
            (self.array_suffix(ty)?, n)
        };
        let init = if self.eat_punct("=") {
            Some(self.init()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(Stmt::Decl { ty, name, init })
    }

    // ---- expressions (precedence climbing) ---------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.logic_or()?;
        for (p, op) in [
            ("=", None),
            ("+=", Some(BinOp::Add)),
            ("-=", Some(BinOp::Sub)),
            ("*=", Some(BinOp::Mul)),
            ("/=", Some(BinOp::Div)),
        ] {
            if self.eat_punct(p) {
                let rhs = self.assignment()?;
                return Ok(match op {
                    None => Expr::Assign(Box::new(lhs), Box::new(rhs)),
                    Some(op) => Expr::AssignOp(op, Box::new(lhs), Box::new(rhs)),
                });
            }
        }
        Ok(lhs)
    }

    fn logic_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.logic_and()?;
        while self.eat_punct("||") {
            let r = self.logic_and()?;
            e = Expr::LogOr(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn logic_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat_punct("&&") {
            let r = self.equality()?;
            e = Expr::LogAnd(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            let op = if self.eat_punct("==") {
                BinOp::Eq
            } else if self.eat_punct("!=") {
                BinOp::Ne
            } else {
                break;
            };
            let r = self.relational()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else {
                break;
            };
            let r = self.additive()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                break;
            };
            let r = self.multiplicative()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Rem
            } else {
                break;
            };
            let r = self.unary()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            let e = self.unary()?;
            // Fold literal negation so `-1.0` is a constant.
            return Ok(match e {
                Expr::Int(v) => Expr::Int(v.wrapping_neg()),
                Expr::Double(v) => Expr::Double(-v),
                e => Expr::Neg(Box::new(e)),
            });
        }
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_punct("*") {
            return Ok(Expr::Deref(Box::new(self.unary()?)));
        }
        if self.eat_punct("&") {
            return Ok(Expr::Addr(Box::new(self.unary()?)));
        }
        if self.eat_punct("++") {
            return Ok(Expr::IncDec {
                target: Box::new(self.unary()?),
                delta: 1,
                post: false,
            });
        }
        if self.eat_punct("--") {
            return Ok(Expr::IncDec {
                target: Box::new(self.unary()?),
                delta: -1,
                post: false,
            });
        }
        // Cast: `(` type `)` unary — distinguished from parenthesized expr.
        if matches!(self.cur(), Tok::Punct("(")) {
            let next_is_type = match &self.toks[self.pos + 1].kind {
                Tok::Ident(s) => {
                    s == "int" || s == "double" || s == "struct" || self.typedefs.contains_key(s)
                }
                _ => false,
            };
            if next_is_type {
                self.pos += 1;
                let ty = self.type_expr()?;
                // `(type(*)(params))` function-pointer casts.
                let ty = if self.eat_punct("(") {
                    self.expect_punct("*")?;
                    self.expect_punct(")")?;
                    let params = self.fnptr_params()?;
                    TypeExpr::FnPtr {
                        ret: Box::new(ty),
                        params,
                    }
                } else {
                    ty
                };
                self.expect_punct(")")?;
                return Ok(Expr::Cast(ty, Box::new(self.unary()?)));
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let i = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(i));
            } else if self.eat_punct(".") {
                e = Expr::Member(Box::new(e), self.ident()?);
            } else if self.eat_punct("->") {
                e = Expr::Arrow(Box::new(e), self.ident()?);
            } else if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                e = Expr::Call(Box::new(e), args);
            } else if self.eat_punct("++") {
                e = Expr::IncDec {
                    target: Box::new(e),
                    delta: 1,
                    post: true,
                };
            } else if self.eat_punct("--") {
                e = Expr::IncDec {
                    target: Box::new(e),
                    delta: -1,
                    post: true,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("sizeof") {
            self.expect_punct("(")?;
            let ty = self.type_expr()?;
            self.expect_punct(")")?;
            return Ok(Expr::SizeOf(ty));
        }
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Double(v) => Ok(Expr::Double(v)),
            Tok::Ident(s) => Ok(Expr::Var(s)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            t => {
                self.pos -= 1;
                self.err(format!("expected expression, found `{t}`"))
            }
        }
    }
}

fn arr(t: TypeExpr, n: usize) -> TypeExpr {
    TypeExpr::Array(Box::new(t), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_stencil_shape() {
        let src = r#"
            struct P { double f; int dx; int dy; };
            struct S { int ps; struct P p[5]; };
            struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0},
                               {0.25, 0, -1}, {0.25, 0, 1}}};
            double apply(double* m, int xs, struct S* s) {
                double v = 0.0;
                for (int i = 0; i < s->ps; i++) {
                    struct P* p = &s->p[i];
                    v += p->f * m[p->dx + xs * p->dy];
                }
                return v;
            }
        "#;
        let items = parse(src).unwrap();
        assert_eq!(items.len(), 4);
        assert!(matches!(&items[0], Item::Struct { name, .. } if name == "P"));
        assert!(matches!(&items[2], Item::Global { name, .. } if name == "s5"));
        assert!(matches!(&items[3], Item::Func { name, params, .. }
            if name == "apply" && params.len() == 3));
    }

    #[test]
    fn typedef_fnptr() {
        let src = r#"
            typedef int (*func_t)(int, int);
            int use(func_t f) { return f(1, 2); }
        "#;
        let items = parse(src).unwrap();
        assert!(matches!(&items[0], Item::Func { params, .. }
            if matches!(&params[0].0, TypeExpr::FnPtr { params: ps, .. } if ps.len() == 2)));
    }

    #[test]
    fn precedence() {
        let items = parse("int f() { return 1 + 2 * 3 < 7 && 1; }").unwrap();
        let Item::Func { body, .. } = &items[0] else {
            panic!()
        };
        let Stmt::Return(Some(e)) = &body[0] else {
            panic!()
        };
        // ((1 + (2*3)) < 7) && 1
        assert!(matches!(e, Expr::LogAnd(l, _)
            if matches!(&**l, Expr::Bin(BinOp::Lt, _, _))));
    }

    #[test]
    fn casts_vs_parens() {
        let items = parse("int f(double d) { return (int)d + (d > 0.0); }").unwrap();
        let Item::Func { body, .. } = &items[0] else {
            panic!()
        };
        let Stmt::Return(Some(Expr::Bin(BinOp::Add, l, _))) = &body[0] else {
            panic!()
        };
        assert!(matches!(&**l, Expr::Cast(TypeExpr::Int, _)));
    }

    #[test]
    fn for_and_incdec() {
        let items =
            parse("int f() { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }").unwrap();
        let Item::Func { body, .. } = &items[0] else {
            panic!()
        };
        assert!(matches!(&body[1], Stmt::For { .. }));
    }

    #[test]
    fn error_reporting_has_line() {
        let e = parse("int f() {\n  return $;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
