//! Semantic analysis: name resolution, type checking and lowering of the
//! parsed AST to a typed IR the code generator consumes directly.

use crate::ast::{BinOp, Expr, Init, Item, Stmt, TypeExpr};
use crate::types::{FieldDef, Scalar, Sig, StructDef, Ty, TypeTable};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Semantic error.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    /// Explanation (includes the offending name where possible).
    pub msg: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.msg)
    }
}

impl std::error::Error for SemaError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SemaError> {
    Err(SemaError { msg: msg.into() })
}

/// Typed expressions. Addresses are ordinary integer-valued expressions;
/// loads and stores are explicit, which maps 1:1 onto the code generator.
#[derive(Debug, Clone, PartialEq)]
pub enum TExpr {
    /// Integer constant.
    ConstI(i64),
    /// Double constant.
    ConstF(f64),
    /// Address of a frame slot: `rbp + offset` (offset negative).
    FrameAddr(i64),
    /// Address of a global by name (resolved at link time).
    GlobalAddr(String),
    /// Address of a function by name (resolved at link time).
    FnAddr(String),
    /// Load a scalar from an address.
    Load(Box<TExpr>, Scalar),
    /// Store `value` to `addr`; yields the stored value.
    Store {
        /// Destination address.
        addr: Box<TExpr>,
        /// Stored value.
        value: Box<TExpr>,
        /// Scalar class.
        ty: Scalar,
    },
    /// Read-modify-write `*addr = *addr op rhs`; yields the new value.
    AssignOp {
        /// Destination address (evaluated once).
        addr: Box<TExpr>,
        /// Arithmetic operator (never a comparison).
        op: BinOp,
        /// Right-hand side.
        rhs: Box<TExpr>,
        /// Scalar class.
        ty: Scalar,
    },
    /// `*addr += delta; yields old (post) or new (pre) value` — int only.
    IncDec {
        /// Destination address (evaluated once).
        addr: Box<TExpr>,
        /// Signed step (already scaled for pointers).
        delta: i64,
        /// Postfix semantics.
        post: bool,
    },
    /// Arithmetic at a scalar class.
    Bin(BinOp, Scalar, Box<TExpr>, Box<TExpr>),
    /// Comparison at a scalar class; yields int 0/1.
    Cmp(BinOp, Scalar, Box<TExpr>, Box<TExpr>),
    /// Negation.
    Neg(Scalar, Box<TExpr>),
    /// Logical not (int).
    Not(Box<TExpr>),
    /// Short-circuit AND; yields int 0/1.
    LogAnd(Box<TExpr>, Box<TExpr>),
    /// Short-circuit OR; yields int 0/1.
    LogOr(Box<TExpr>, Box<TExpr>),
    /// int → double.
    IntToDouble(Box<TExpr>),
    /// double → int (truncating).
    DoubleToInt(Box<TExpr>),
    /// Function call.
    Call {
        /// Direct (by name) or computed target.
        target: CallTarget,
        /// Argument values with their classes.
        args: Vec<(TExpr, Scalar)>,
        /// Return class (`None` for void).
        ret: Option<Scalar>,
    },
}

/// Call target.
#[derive(Debug, Clone, PartialEq)]
pub enum CallTarget {
    /// Direct call to a named function.
    Direct(String),
    /// Indirect call through a pointer value.
    Indirect(Box<TExpr>),
}

/// Typed statements.
#[derive(Debug, Clone, PartialEq)]
pub enum TStmt {
    /// Evaluate and discard.
    Expr(TExpr),
    /// Conditional (condition is int-valued).
    If(TExpr, Vec<TStmt>, Vec<TStmt>),
    /// `while`/`for` loop; `step` runs after the body and at `continue`.
    Loop {
        /// Int-valued condition checked before each iteration.
        cond: TExpr,
        /// Loop body.
        body: Vec<TStmt>,
        /// Optional step expression.
        step: Option<TExpr>,
    },
    /// Return (value already coerced to the function's return class).
    Return(Option<TExpr>),
    /// Break out of the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
}

/// Scalar initializer value for a global, at a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub enum InitVal {
    /// 8-byte little-endian integer.
    I64(i64),
    /// 8-byte IEEE double.
    F64(f64),
    /// Address of a named function (linked later).
    Fn(String),
}

/// A typed global definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TGlobal {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Total size in bytes.
    pub size: u64,
    /// Non-zero initializer entries `(offset, value)`.
    pub inits: Vec<(u64, InitVal)>,
}

/// A typed function definition.
#[derive(Debug, Clone)]
pub struct TFunc {
    /// Name.
    pub name: String,
    /// Signature.
    pub sig: Arc<Sig>,
    /// Frame size in bytes (16-aligned, excludes saved rbp).
    pub frame_size: u64,
    /// Parameter frame slots `(rbp-relative offset, class)` in order.
    pub param_slots: Vec<(i64, Scalar)>,
    /// Body.
    pub body: Vec<TStmt>,
}

/// A fully typed translation unit.
#[derive(Debug, Clone)]
pub struct TProgram {
    /// Struct layouts.
    pub types: TypeTable,
    /// Globals in declaration order.
    pub globals: Vec<TGlobal>,
    /// Functions in declaration order.
    pub funcs: Vec<TFunc>,
}

struct Ctx {
    types: TypeTable,
    struct_ids: HashMap<String, usize>,
    globals: HashMap<String, Ty>,
    fn_sigs: HashMap<String, Arc<Sig>>,
    scopes: Vec<HashMap<String, (i64, Ty)>>,
    frame_cursor: i64,
    ret_ty: Ty,
}

impl Ctx {
    fn resolve_ty(&self, t: &TypeExpr) -> Result<Ty, SemaError> {
        Ok(match t {
            TypeExpr::Int => Ty::Int,
            TypeExpr::Double => Ty::Double,
            TypeExpr::Void => Ty::Void,
            TypeExpr::Ptr(inner) => Ty::Ptr(Box::new(self.resolve_ty(inner)?)),
            TypeExpr::Array(inner, n) => Ty::Array(Box::new(self.resolve_ty(inner)?), *n),
            TypeExpr::Struct(name) => Ty::Struct(*self.struct_ids.get(name).ok_or(SemaError {
                msg: format!("unknown struct `{name}`"),
            })?),
            TypeExpr::FnPtr { ret, params } => {
                let ret = self.resolve_ty(ret)?;
                let params = params
                    .iter()
                    .map(|p| self.resolve_ty(p))
                    .collect::<Result<Vec<_>, _>>()?;
                Ty::FnPtr(Arc::new(Sig { params, ret }))
            }
        })
    }

    fn lookup_local(&self, name: &str) -> Option<(i64, Ty)> {
        for s in self.scopes.iter().rev() {
            if let Some(v) = s.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn alloc_slot(&mut self, size: u64) -> i64 {
        let size = size.max(8).div_ceil(8) * 8;
        self.frame_cursor -= size as i64;
        self.frame_cursor
    }
}

/// Run semantic analysis over a parsed translation unit.
pub fn check(items: &[Item]) -> Result<TProgram, SemaError> {
    let mut ctx = Ctx {
        types: TypeTable::default(),
        struct_ids: HashMap::new(),
        globals: HashMap::new(),
        fn_sigs: HashMap::new(),
        scopes: Vec::new(),
        frame_cursor: 0,
        ret_ty: Ty::Void,
    };

    // Pass 1: struct layouts, global types, function signatures.
    for item in items {
        match item {
            Item::Struct { name, fields } => {
                if ctx.struct_ids.contains_key(name) {
                    return err(format!("duplicate struct `{name}`"));
                }
                // Register the tag first so self-referential pointers
                // (`struct Node* next`) resolve; by-value self-reference is
                // rejected below.
                let id = ctx.types.structs.len();
                ctx.struct_ids.insert(name.clone(), id);
                ctx.types.structs.push(StructDef {
                    name: name.clone(),
                    fields: Vec::new(),
                    size: 0,
                });
                let mut defs = Vec::new();
                let mut off = 0u64;
                for f in fields {
                    let ty = ctx.resolve_ty(&f.ty)?;
                    if contains_struct_by_value(&ty, id) {
                        return err(format!(
                            "struct `{name}` contains itself by value (field `{}`)",
                            f.name
                        ));
                    }
                    let size = ctx.types.size_of(&ty);
                    defs.push(FieldDef {
                        name: f.name.clone(),
                        ty,
                        offset: off,
                    });
                    off += size;
                }
                ctx.types.structs[id] = StructDef {
                    name: name.clone(),
                    fields: defs,
                    size: off,
                };
            }
            Item::Global { ty, name, .. } => {
                let ty = ctx.resolve_ty(ty)?;
                if ctx.types.size_of(&ty) == 0 {
                    return err(format!("global `{name}` has zero size"));
                }
                ctx.globals.insert(name.clone(), ty);
            }
            Item::Func {
                ret, name, params, ..
            } => {
                let ret = ctx.resolve_ty(ret)?;
                if !(ret.is_scalar() || ret == Ty::Void) {
                    return err(format!("function `{name}` must return a scalar or void"));
                }
                let mut ptys = Vec::new();
                for (pt, pname) in params {
                    let pt = ctx.resolve_ty(pt)?;
                    if !pt.is_scalar() {
                        return err(format!("parameter `{pname}` of `{name}` must be scalar"));
                    }
                    ptys.push(pt);
                }
                if ptys.iter().filter(|t| t.is_int_like()).count() > 6
                    || ptys.iter().filter(|t| matches!(t, Ty::Double)).count() > 8
                {
                    return err(format!(
                        "too many parameters in `{name}` for the ABI subset"
                    ));
                }
                ctx.fn_sigs
                    .insert(name.clone(), Arc::new(Sig { params: ptys, ret }));
            }
        }
    }

    // Pass 2: globals (initializers) and function bodies.
    let mut globals = Vec::new();
    let mut funcs = Vec::new();
    for item in items {
        match item {
            Item::Global { name, init, .. } => {
                let gty = ctx.globals[name].clone();
                let size = ctx.types.size_of(&gty);
                let mut inits = Vec::new();
                if let Some(init) = init {
                    flatten_init(&ctx, &gty, init, 0, &mut inits)?;
                }
                globals.push(TGlobal {
                    name: name.clone(),
                    ty: gty,
                    size,
                    inits,
                });
            }
            Item::Func {
                name, params, body, ..
            } => {
                let sig = ctx.fn_sigs[name].clone();
                ctx.scopes.clear();
                ctx.scopes.push(HashMap::new());
                ctx.frame_cursor = 0;
                ctx.ret_ty = sig.ret.clone();
                let mut param_slots = Vec::new();
                for ((_, pname), pty) in params.iter().zip(&sig.params) {
                    let off = ctx.alloc_slot(8);
                    param_slots.push((off, pty.scalar().expect("checked scalar")));
                    ctx.scopes
                        .last_mut()
                        .unwrap()
                        .insert(pname.clone(), (off, pty.clone()));
                }
                let mut tbody = Vec::new();
                for s in body {
                    lower_stmt(&mut ctx, s, &mut tbody)?;
                }
                let frame_size = ((-ctx.frame_cursor) as u64).div_ceil(16) * 16;
                funcs.push(TFunc {
                    name: name.clone(),
                    sig,
                    frame_size,
                    param_slots,
                    body: tbody,
                });
            }
            Item::Struct { .. } => {}
        }
    }

    Ok(TProgram {
        types: ctx.types,
        globals,
        funcs,
    })
}

/// Does `ty` embed struct `id` by value (directly or through arrays)?
fn contains_struct_by_value(ty: &Ty, id: usize) -> bool {
    match ty {
        Ty::Struct(i) => *i == id,
        Ty::Array(el, _) => contains_struct_by_value(el, id),
        _ => false,
    }
}

/// Flatten a brace initializer against a type into `(offset, value)` pairs.
fn flatten_init(
    ctx: &Ctx,
    ty: &Ty,
    init: &Init,
    base: u64,
    out: &mut Vec<(u64, InitVal)>,
) -> Result<(), SemaError> {
    match (ty, init) {
        (Ty::Array(el, n), Init::List(items)) => {
            if items.len() > *n {
                return err("too many array initializers");
            }
            let sz = ctx.types.size_of(el);
            for (i, item) in items.iter().enumerate() {
                flatten_init(ctx, el, item, base + i as u64 * sz, out)?;
            }
            Ok(())
        }
        (Ty::Struct(id), Init::List(items)) => {
            let def = &ctx.types.structs[*id];
            if items.len() > def.fields.len() {
                return err(format!("too many initializers for struct `{}`", def.name));
            }
            for (f, item) in def.fields.iter().zip(items) {
                flatten_init(ctx, &f.ty, item, base + f.offset, out)?;
            }
            Ok(())
        }
        (scalar, Init::Expr(e)) if scalar.is_scalar() => {
            let v = const_eval(ctx, e, scalar)?;
            out.push((base, v));
            Ok(())
        }
        _ => err("initializer shape does not match type"),
    }
}

/// Constant evaluation for global initializers.
fn const_eval(ctx: &Ctx, e: &Expr, want: &Ty) -> Result<InitVal, SemaError> {
    match e {
        Expr::Int(v) => {
            if matches!(want, Ty::Double) {
                Ok(InitVal::F64(*v as f64))
            } else {
                Ok(InitVal::I64(*v))
            }
        }
        Expr::Double(v) => {
            if matches!(want, Ty::Double) {
                Ok(InitVal::F64(*v))
            } else {
                err("double initializer for integer field")
            }
        }
        Expr::Var(name) if ctx.fn_sigs.contains_key(name) => Ok(InitVal::Fn(name.clone())),
        Expr::Addr(inner) => match &**inner {
            Expr::Var(name) if ctx.fn_sigs.contains_key(name) => Ok(InitVal::Fn(name.clone())),
            _ => err("only function addresses are constant"),
        },
        Expr::SizeOf(t) => Ok(InitVal::I64(ctx.types.size_of(&ctx.resolve_ty(t)?) as i64)),
        _ => err("global initializer is not a constant expression"),
    }
}

// ---- statement lowering ----------------------------------------------------

fn lower_stmt(ctx: &mut Ctx, s: &Stmt, out: &mut Vec<TStmt>) -> Result<(), SemaError> {
    match s {
        Stmt::Empty => Ok(()),
        Stmt::Block(stmts) => {
            ctx.scopes.push(HashMap::new());
            for s in stmts {
                lower_stmt(ctx, s, out)?;
            }
            ctx.scopes.pop();
            Ok(())
        }
        Stmt::Decl { ty, name, init } => {
            let ty = ctx.resolve_ty(ty)?;
            let size = ctx.types.size_of(&ty);
            if size == 0 {
                return err(format!("local `{name}` has zero size"));
            }
            let off = ctx.alloc_slot(size);
            ctx.scopes
                .last_mut()
                .unwrap()
                .insert(name.clone(), (off, ty.clone()));
            match init {
                None => {}
                Some(Init::Expr(e)) => {
                    let sc = ty.scalar().ok_or(SemaError {
                        msg: format!("aggregate `{name}` needs a brace initializer"),
                    })?;
                    let (v, vty) = lower_rvalue(ctx, e)?;
                    let v = coerce(ctx, v, &vty, &ty)?;
                    out.push(TStmt::Expr(TExpr::Store {
                        addr: Box::new(TExpr::FrameAddr(off)),
                        value: Box::new(v),
                        ty: sc,
                    }));
                }
                Some(list @ Init::List(_)) => {
                    lower_local_init(ctx, &ty, list, off, out)?;
                }
            }
            Ok(())
        }
        Stmt::Expr(e) => {
            let (te, _) = lower_rvalue(ctx, e)?;
            out.push(TStmt::Expr(te));
            Ok(())
        }
        Stmt::If(c, then, els) => {
            let cond = lower_cond(ctx, c)?;
            let mut tthen = Vec::new();
            ctx.scopes.push(HashMap::new());
            lower_stmt(ctx, then, &mut tthen)?;
            ctx.scopes.pop();
            let mut tels = Vec::new();
            if let Some(e) = els {
                ctx.scopes.push(HashMap::new());
                lower_stmt(ctx, e, &mut tels)?;
                ctx.scopes.pop();
            }
            out.push(TStmt::If(cond, tthen, tels));
            Ok(())
        }
        Stmt::While(c, body) => {
            let cond = lower_cond(ctx, c)?;
            let mut tbody = Vec::new();
            ctx.scopes.push(HashMap::new());
            lower_stmt(ctx, body, &mut tbody)?;
            ctx.scopes.pop();
            out.push(TStmt::Loop {
                cond,
                body: tbody,
                step: None,
            });
            Ok(())
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            ctx.scopes.push(HashMap::new());
            if let Some(i) = init {
                lower_stmt(ctx, i, out)?;
            }
            let cond = match cond {
                Some(c) => lower_cond(ctx, c)?,
                None => TExpr::ConstI(1),
            };
            let step = match step {
                Some(s) => Some(lower_rvalue(ctx, s)?.0),
                None => None,
            };
            let mut tbody = Vec::new();
            lower_stmt(ctx, body, &mut tbody)?;
            ctx.scopes.pop();
            out.push(TStmt::Loop {
                cond,
                body: tbody,
                step,
            });
            Ok(())
        }
        Stmt::Return(e) => {
            let ret_ty = ctx.ret_ty.clone();
            let te = match (e, &ret_ty) {
                (None, Ty::Void) => None,
                (None, _) => return err("missing return value"),
                (Some(_), Ty::Void) => return err("void function returns a value"),
                (Some(e), want) => {
                    let (v, vty) = lower_rvalue(ctx, e)?;
                    Some(coerce(ctx, v, &vty, want)?)
                }
            };
            out.push(TStmt::Return(te));
            Ok(())
        }
        Stmt::Break => {
            out.push(TStmt::Break);
            Ok(())
        }
        Stmt::Continue => {
            out.push(TStmt::Continue);
            Ok(())
        }
    }
}

/// Lower a brace initializer for a local aggregate into member stores
/// (zero-filling unspecified scalar fields, matching C semantics for
/// initialized aggregates).
fn lower_local_init(
    ctx: &mut Ctx,
    ty: &Ty,
    init: &Init,
    base_off: i64,
    out: &mut Vec<TStmt>,
) -> Result<(), SemaError> {
    match (ty, init) {
        (Ty::Array(el, n), Init::List(items)) => {
            if items.len() > *n {
                return err("too many array initializers");
            }
            let sz = ctx.types.size_of(el) as i64;
            for i in 0..*n {
                match items.get(i) {
                    Some(item) => lower_local_init(ctx, el, item, base_off + i as i64 * sz, out)?,
                    None => zero_fill(ctx, el, base_off + i as i64 * sz, out),
                }
            }
            Ok(())
        }
        (Ty::Struct(id), Init::List(items)) => {
            let fields: Vec<(Ty, u64)> = ctx.types.structs[*id]
                .fields
                .iter()
                .map(|f| (f.ty.clone(), f.offset))
                .collect();
            if items.len() > fields.len() {
                return err("too many struct initializers");
            }
            for (i, (fty, foff)) in fields.iter().enumerate() {
                match items.get(i) {
                    Some(item) => lower_local_init(ctx, fty, item, base_off + *foff as i64, out)?,
                    None => zero_fill(ctx, fty, base_off + *foff as i64, out),
                }
            }
            Ok(())
        }
        (scalar, Init::Expr(e)) if scalar.is_scalar() => {
            let sc = scalar.scalar().expect("scalar");
            let (v, vty) = lower_rvalue(ctx, e)?;
            let v = coerce(ctx, v, &vty, scalar)?;
            out.push(TStmt::Expr(TExpr::Store {
                addr: Box::new(TExpr::FrameAddr(base_off)),
                value: Box::new(v),
                ty: sc,
            }));
            Ok(())
        }
        _ => err("initializer shape does not match type"),
    }
}

/// Zero-fill an uninitialized member of a partially initialized aggregate.
fn zero_fill(ctx: &Ctx, ty: &Ty, off: i64, out: &mut Vec<TStmt>) {
    match ty {
        Ty::Array(el, n) => {
            let sz = ctx.types.size_of(el) as i64;
            for i in 0..*n {
                zero_fill(ctx, el, off + i as i64 * sz, out);
            }
        }
        Ty::Struct(id) => {
            let fields: Vec<(Ty, u64)> = ctx.types.structs[*id]
                .fields
                .iter()
                .map(|f| (f.ty.clone(), f.offset))
                .collect();
            for (fty, foff) in fields {
                zero_fill(ctx, &fty, off + foff as i64, out);
            }
        }
        scalar => {
            let sc = scalar.scalar().expect("scalar");
            let value = match sc {
                Scalar::I64 => TExpr::ConstI(0),
                Scalar::F64 => TExpr::ConstF(0.0),
            };
            out.push(TStmt::Expr(TExpr::Store {
                addr: Box::new(TExpr::FrameAddr(off)),
                value: Box::new(value),
                ty: sc,
            }));
        }
    }
}

// ---- expression lowering -----------------------------------------------------

/// Coerce `e : from` to type `to`, inserting conversions.
fn coerce(_ctx: &Ctx, e: TExpr, from: &Ty, to: &Ty) -> Result<TExpr, SemaError> {
    if from == to {
        return Ok(e);
    }
    match (from, to) {
        // Any int-like to any int-like (pointers are untyped machine words
        // in the subset; the paper's code freely casts function pointers).
        (a, b) if a.is_int_like() && b.is_int_like() => Ok(e),
        (a, Ty::Double) if a.is_int_like() => Ok(TExpr::IntToDouble(Box::new(e))),
        (Ty::Double, b) if b.is_int_like() => Ok(TExpr::DoubleToInt(Box::new(e))),
        (Ty::Double, Ty::Double) => Ok(e),
        _ => err(format!("cannot convert `{from}` to `{to}`")),
    }
}

/// Lower to an int-valued condition (0 = false).
fn lower_cond(ctx: &mut Ctx, e: &Expr) -> Result<TExpr, SemaError> {
    let (te, ty) = lower_rvalue(ctx, e)?;
    if ty.is_int_like() {
        Ok(te)
    } else if matches!(ty, Ty::Double) {
        Ok(TExpr::Cmp(
            BinOp::Ne,
            Scalar::F64,
            Box::new(te),
            Box::new(TExpr::ConstF(0.0)),
        ))
    } else {
        err(format!("`{ty}` is not a valid condition"))
    }
}

/// Lower an lvalue expression to `(address, pointee type)`.
fn lower_addr(ctx: &mut Ctx, e: &Expr) -> Result<(TExpr, Ty), SemaError> {
    match e {
        Expr::Var(name) => {
            if let Some((off, ty)) = ctx.lookup_local(name) {
                Ok((TExpr::FrameAddr(off), ty))
            } else if let Some(ty) = ctx.globals.get(name) {
                Ok((TExpr::GlobalAddr(name.clone()), ty.clone()))
            } else {
                err(format!("unknown variable `{name}`"))
            }
        }
        Expr::Deref(p) => {
            let (tp, ty) = lower_rvalue(ctx, p)?;
            match ty {
                Ty::Ptr(inner) => Ok((tp, *inner)),
                Ty::FnPtr(_) => err("cannot use a function pointer as an lvalue"),
                _ => err(format!("cannot dereference `{ty}`")),
            }
        }
        Expr::Index(base, idx) => {
            let (tb, bty) = lower_rvalue(ctx, base)?;
            let elem = match bty {
                Ty::Ptr(inner) => *inner,
                _ => return err(format!("cannot index `{bty}`")),
            };
            let (ti, ity) = lower_rvalue(ctx, idx)?;
            if !ity.is_int_like() {
                return err("array index must be an integer");
            }
            let sz = ctx.types.size_of(&elem) as i64;
            let off = TExpr::Bin(
                BinOp::Mul,
                Scalar::I64,
                Box::new(ti),
                Box::new(TExpr::ConstI(sz)),
            );
            Ok((
                TExpr::Bin(BinOp::Add, Scalar::I64, Box::new(tb), Box::new(off)),
                elem,
            ))
        }
        Expr::Member(base, fname) => {
            let (tb, bty) = lower_addr(ctx, base)?;
            member_addr(ctx, tb, &bty, fname)
        }
        Expr::Arrow(base, fname) => {
            let (tb, bty) = lower_rvalue(ctx, base)?;
            let inner = match bty {
                Ty::Ptr(inner) => *inner,
                _ => return err(format!("`->` on non-pointer `{bty}`")),
            };
            member_addr(ctx, tb, &inner, fname)
        }
        _ => err("expression is not an lvalue"),
    }
}

fn member_addr(ctx: &Ctx, base: TExpr, bty: &Ty, fname: &str) -> Result<(TExpr, Ty), SemaError> {
    let def = ctx.types.struct_def(bty).ok_or(SemaError {
        msg: format!("member access on non-struct `{bty}`"),
    })?;
    let f = def.field(fname).ok_or(SemaError {
        msg: format!("no field `{fname}` in struct `{}`", def.name),
    })?;
    let addr = if f.offset == 0 {
        base
    } else {
        TExpr::Bin(
            BinOp::Add,
            Scalar::I64,
            Box::new(base),
            Box::new(TExpr::ConstI(f.offset as i64)),
        )
    };
    Ok((addr, f.ty.clone()))
}

/// Lower an expression to a value, applying array decay.
fn lower_rvalue(ctx: &mut Ctx, e: &Expr) -> Result<(TExpr, Ty), SemaError> {
    match e {
        Expr::Int(v) => Ok((TExpr::ConstI(*v), Ty::Int)),
        Expr::Double(v) => Ok((TExpr::ConstF(*v), Ty::Double)),
        Expr::SizeOf(t) => {
            let ty = ctx.resolve_ty(t)?;
            Ok((TExpr::ConstI(ctx.types.size_of(&ty) as i64), Ty::Int))
        }
        Expr::Var(name) => {
            // Function designator?
            if ctx.lookup_local(name).is_none() && !ctx.globals.contains_key(name) {
                if let Some(sig) = ctx.fn_sigs.get(name) {
                    return Ok((TExpr::FnAddr(name.clone()), Ty::FnPtr(sig.clone())));
                }
            }
            let (addr, ty) = lower_addr(ctx, e)?;
            load_or_decay(ctx, addr, ty)
        }
        Expr::Deref(p) => {
            // Deref of a function pointer is a no-op (C semantics).
            let (tp, ty) = lower_rvalue(ctx, p)?;
            match ty {
                Ty::FnPtr(_) => Ok((tp, ty)),
                Ty::Ptr(inner) => load_or_decay(ctx, tp, *inner),
                _ => err(format!("cannot dereference `{ty}`")),
            }
        }
        Expr::Index(..) | Expr::Member(..) | Expr::Arrow(..) => {
            let (addr, ty) = lower_addr(ctx, e)?;
            load_or_decay(ctx, addr, ty)
        }
        Expr::Addr(inner) => {
            // &function is the function pointer.
            if let Expr::Var(name) = &**inner {
                if ctx.lookup_local(name).is_none() && !ctx.globals.contains_key(name) {
                    if let Some(sig) = ctx.fn_sigs.get(name) {
                        return Ok((TExpr::FnAddr(name.clone()), Ty::FnPtr(sig.clone())));
                    }
                }
            }
            let (addr, ty) = lower_addr(ctx, inner)?;
            Ok((addr, Ty::Ptr(Box::new(ty))))
        }
        Expr::Neg(inner) => {
            let (t, ty) = lower_rvalue(ctx, inner)?;
            if ty.is_int_like() {
                Ok((TExpr::Neg(Scalar::I64, Box::new(t)), Ty::Int))
            } else if matches!(ty, Ty::Double) {
                Ok((TExpr::Neg(Scalar::F64, Box::new(t)), Ty::Double))
            } else {
                err(format!("cannot negate `{ty}`"))
            }
        }
        Expr::Not(inner) => {
            let c = lower_cond(ctx, inner)?;
            Ok((TExpr::Not(Box::new(c)), Ty::Int))
        }
        Expr::LogAnd(a, b) => {
            let ta = lower_cond(ctx, a)?;
            let tb = lower_cond(ctx, b)?;
            Ok((TExpr::LogAnd(Box::new(ta), Box::new(tb)), Ty::Int))
        }
        Expr::LogOr(a, b) => {
            let ta = lower_cond(ctx, a)?;
            let tb = lower_cond(ctx, b)?;
            Ok((TExpr::LogOr(Box::new(ta), Box::new(tb)), Ty::Int))
        }
        Expr::Bin(op, a, b) => lower_bin(ctx, *op, a, b),
        Expr::Assign(lhs, rhs) => {
            let (addr, lty) = lower_addr(ctx, lhs)?;
            let sc = lty.scalar().ok_or(SemaError {
                msg: format!("cannot assign aggregate `{lty}`"),
            })?;
            let (val, vty) = lower_rvalue(ctx, rhs)?;
            let val = coerce(ctx, val, &vty, &lty)?;
            Ok((
                TExpr::Store {
                    addr: Box::new(addr),
                    value: Box::new(val),
                    ty: sc,
                },
                lty,
            ))
        }
        Expr::AssignOp(op, lhs, rhs) => {
            let (addr, lty) = lower_addr(ctx, lhs)?;
            let sc = lty.scalar().ok_or(SemaError {
                msg: format!("cannot assign aggregate `{lty}`"),
            })?;
            let (mut val, vty) = lower_rvalue(ctx, rhs)?;
            // Pointer += int scales by the pointee size.
            if let Ty::Ptr(inner) = &lty {
                if !matches!(op, BinOp::Add | BinOp::Sub) {
                    return err("only += and -= are defined on pointers");
                }
                if !vty.is_int_like() {
                    return err("pointer arithmetic requires an integer");
                }
                let sz = ctx.types.size_of(inner) as i64;
                val = TExpr::Bin(
                    BinOp::Mul,
                    Scalar::I64,
                    Box::new(val),
                    Box::new(TExpr::ConstI(sz)),
                );
            } else {
                val = coerce(ctx, val, &vty, &lty)?;
            }
            Ok((
                TExpr::AssignOp {
                    addr: Box::new(addr),
                    op: *op,
                    rhs: Box::new(val),
                    ty: sc,
                },
                lty,
            ))
        }
        Expr::IncDec {
            target,
            delta,
            post,
        } => {
            let (addr, lty) = lower_addr(ctx, target)?;
            let step = match &lty {
                t if t.is_int_like() => match &lty {
                    Ty::Ptr(inner) => *delta * ctx.types.size_of(inner) as i64,
                    _ => *delta,
                },
                _ => return err("++/-- require an integer or pointer"),
            };
            Ok((
                TExpr::IncDec {
                    addr: Box::new(addr),
                    delta: step,
                    post: *post,
                },
                lty,
            ))
        }
        Expr::Cast(t, inner) => {
            let to = ctx.resolve_ty(t)?;
            let (te, from) = lower_rvalue(ctx, inner)?;
            let te = coerce(ctx, te, &from, &to)?;
            Ok((te, to))
        }
        Expr::Call(callee, args) => lower_call(ctx, callee, args),
    }
}

fn load_or_decay(_ctx: &Ctx, addr: TExpr, ty: Ty) -> Result<(TExpr, Ty), SemaError> {
    match ty {
        Ty::Array(el, _) => Ok((addr, Ty::Ptr(el))), // decay
        Ty::Struct(_) => err("struct values must be accessed through members"),
        scalar => {
            let sc = scalar.scalar().expect("scalar");
            Ok((TExpr::Load(Box::new(addr), sc), scalar))
        }
    }
}

fn lower_bin(ctx: &mut Ctx, op: BinOp, a: &Expr, b: &Expr) -> Result<(TExpr, Ty), SemaError> {
    let (ta, tya) = lower_rvalue(ctx, a)?;
    let (tb, tyb) = lower_rvalue(ctx, b)?;

    // Pointer arithmetic.
    if matches!(op, BinOp::Add | BinOp::Sub) {
        if let Ty::Ptr(inner) = &tya {
            if tyb.is_int_like() {
                let sz = ctx.types.size_of(inner) as i64;
                let scaled = TExpr::Bin(
                    BinOp::Mul,
                    Scalar::I64,
                    Box::new(tb),
                    Box::new(TExpr::ConstI(sz)),
                );
                return Ok((
                    TExpr::Bin(op, Scalar::I64, Box::new(ta), Box::new(scaled)),
                    tya.clone(),
                ));
            }
        }
        if op == BinOp::Add {
            if let Ty::Ptr(inner) = &tyb {
                if tya.is_int_like() {
                    let sz = ctx.types.size_of(inner) as i64;
                    let scaled = TExpr::Bin(
                        BinOp::Mul,
                        Scalar::I64,
                        Box::new(ta),
                        Box::new(TExpr::ConstI(sz)),
                    );
                    return Ok((
                        TExpr::Bin(op, Scalar::I64, Box::new(tb), Box::new(scaled)),
                        tyb.clone(),
                    ));
                }
            }
        }
    }

    // Numeric promotion: double wins.
    let double = matches!(tya, Ty::Double) || matches!(tyb, Ty::Double);
    if double {
        let ta = coerce(ctx, ta, &tya, &Ty::Double)?;
        let tb = coerce(ctx, tb, &tyb, &Ty::Double)?;
        if op == BinOp::Rem {
            return err("% is not defined on doubles");
        }
        return if op.is_cmp() {
            Ok((
                TExpr::Cmp(op, Scalar::F64, Box::new(ta), Box::new(tb)),
                Ty::Int,
            ))
        } else {
            Ok((
                TExpr::Bin(op, Scalar::F64, Box::new(ta), Box::new(tb)),
                Ty::Double,
            ))
        };
    }
    if !(tya.is_int_like() && tyb.is_int_like()) {
        return err(format!("invalid operands `{tya}` and `{tyb}`"));
    }
    if op.is_cmp() {
        Ok((
            TExpr::Cmp(op, Scalar::I64, Box::new(ta), Box::new(tb)),
            Ty::Int,
        ))
    } else {
        Ok((
            TExpr::Bin(op, Scalar::I64, Box::new(ta), Box::new(tb)),
            Ty::Int,
        ))
    }
}

fn lower_call(ctx: &mut Ctx, callee: &Expr, args: &[Expr]) -> Result<(TExpr, Ty), SemaError> {
    // Unwrap `(*f)(...)`.
    let callee = match callee {
        Expr::Deref(inner) => &**inner,
        e => e,
    };
    // Direct call if the name is a function and not shadowed.
    let (target, sig) = match callee {
        Expr::Var(name) if ctx.lookup_local(name).is_none() && !ctx.globals.contains_key(name) => {
            let sig = ctx.fn_sigs.get(name).cloned().ok_or(SemaError {
                msg: format!("unknown function `{name}`"),
            })?;
            (CallTarget::Direct(name.clone()), sig)
        }
        e => {
            let (te, ty) = lower_rvalue(ctx, e)?;
            match ty {
                Ty::FnPtr(sig) => (CallTarget::Indirect(Box::new(te)), sig),
                _ => return err(format!("called value has type `{ty}`, not a function")),
            }
        }
    };
    if args.len() != sig.params.len() {
        return err(format!(
            "call expects {} arguments, got {}",
            sig.params.len(),
            args.len()
        ));
    }
    let mut targs = Vec::new();
    for (a, pty) in args.iter().zip(&sig.params) {
        let (ta, aty) = lower_rvalue(ctx, a)?;
        let ta = coerce(ctx, ta, &aty, pty)?;
        targs.push((ta, pty.scalar().expect("scalar param")));
    }
    let ret_ty = sig.ret.clone();
    let ret = ret_ty.scalar();
    Ok((
        TExpr::Call {
            target,
            args: targs,
            ret,
        },
        ret_ty,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn lower(src: &str) -> Result<TProgram, SemaError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn stencil_program_checks() {
        let p = lower(
            r#"
            struct P { double f; int dx; int dy; };
            struct S { int ps; struct P p[5]; };
            struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0},
                               {0.25, 0, -1}, {0.25, 0, 1}}};
            double apply(double* m, int xs, struct S* s) {
                double v = 0.0;
                for (int i = 0; i < s->ps; i++) {
                    struct P* p = &s->p[i];
                    v += p->f * m[p->dx + xs * p->dy];
                }
                return v;
            }
        "#,
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.globals.len(), 1);
        let g = &p.globals[0];
        // struct S: int ps (8) + 5 * struct P (24) = 128 bytes.
        assert_eq!(g.size, 8 + 5 * 24);
        assert_eq!(g.inits[0], (0, InitVal::I64(5)));
        assert_eq!(g.inits[1], (8, InitVal::F64(-1.0)));
        // Second point starts at 8 + 24.
        assert!(g.inits.contains(&(32, InitVal::F64(0.25))));
        assert!(g.inits.contains(&(40, InitVal::I64(-1))));
    }

    #[test]
    fn pointer_arith_scales() {
        let p = lower("int f(int* p) { return *(p + 2); }").unwrap();
        let TStmt::Return(Some(TExpr::Load(addr, Scalar::I64))) = &p.funcs[0].body[0] else {
            panic!("{:?}", p.funcs[0].body)
        };
        // addr = p + (2 * 8)
        let TExpr::Bin(BinOp::Add, Scalar::I64, _, rhs) = &**addr else {
            panic!()
        };
        let TExpr::Bin(BinOp::Mul, _, lhs, sz) = &**rhs else {
            panic!()
        };
        assert_eq!(**lhs, TExpr::ConstI(2));
        assert_eq!(**sz, TExpr::ConstI(8));
    }

    #[test]
    fn promotion_int_to_double() {
        let p = lower("double f(int a, double b) { return a + b; }").unwrap();
        let TStmt::Return(Some(TExpr::Bin(BinOp::Add, Scalar::F64, l, _))) = &p.funcs[0].body[0]
        else {
            panic!()
        };
        assert!(matches!(&**l, TExpr::IntToDouble(_)));
    }

    #[test]
    fn function_pointer_call() {
        let p = lower(
            r#"
            typedef int (*op_t)(int, int);
            int add(int a, int b) { return a + b; }
            int use(op_t f) { return (*f)(1, 2) + f(3, 4); }
            int pick() { op_t f = add; return use(f); }
        "#,
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 3);
        // `pick` stores the address of `add` into a local.
        let TStmt::Expr(TExpr::Store { value, .. }) = &p.funcs[2].body[0] else {
            panic!()
        };
        assert_eq!(**value, TExpr::FnAddr("add".into()));
    }

    #[test]
    fn type_errors() {
        assert!(lower("int f() { return *1; }").is_err());
        assert!(lower("int f(double d) { return d % 2.0; }").is_err());
        assert!(lower("int f() { return g(); }").is_err());
        assert!(lower("struct X { int a; }; int f(struct X x) { return 0; }").is_err());
        assert!(lower("int f() { int a[3]; a = 0; return 0; }").is_err());
        assert!(lower("void f() { return 1; }").is_err());
        assert!(lower("int f() { return; }").is_err());
    }

    #[test]
    fn locals_shadow_and_scope() {
        let p = lower("int f() { int x = 1; { int x = 2; x = 3; } return x; }").unwrap();
        // Two distinct frame slots.
        let TStmt::Expr(TExpr::Store { addr: a1, .. }) = &p.funcs[0].body[0] else {
            panic!()
        };
        let TStmt::Expr(TExpr::Store { addr: a2, .. }) = &p.funcs[0].body[1] else {
            panic!()
        };
        assert_ne!(a1, a2);
    }

    #[test]
    fn frame_sizes_aligned() {
        let p = lower("int f(int a) { int b; double c; int d[5]; return a; }").unwrap();
        assert_eq!(p.funcs[0].frame_size % 16, 0);
        // At least 8 (a) + 8 (b) + 8 (c) + 40 (d).
        assert!(p.funcs[0].frame_size >= 64);
    }

    #[test]
    fn global_fnptr_initializer() {
        let p = lower(
            r#"
            int id(int x) { return x; }
            int (*hook)(int) = id;
        "#,
        )
        .unwrap();
        assert_eq!(p.globals[0].inits, vec![(0, InitVal::Fn("id".into()))]);
    }
}
