//! Resolved types and layout for mini-C.
//!
//! Layout is deliberately simple: every scalar (int, double, pointer,
//! function pointer) is 8 bytes and 8-aligned, structs are field-sequential
//! with no padding beyond that, arrays are element-sequential. `int` is
//! 64-bit (the paper's stencil code uses `int` for indices; making it
//! word-sized keeps the subset to two operand widths without changing any
//! observable behaviour of the workloads).

use std::fmt;
use std::sync::Arc;

/// A function signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Sig {
    /// Parameter types (scalars only).
    pub params: Vec<Ty>,
    /// Return type ([`Ty::Void`] for none).
    pub ret: Ty,
}

/// A resolved type.
#[derive(Debug, Clone, PartialEq)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// IEEE double.
    Double,
    /// No value (function returns).
    Void,
    /// Pointer.
    Ptr(Box<Ty>),
    /// Struct by index into the [`TypeTable`].
    Struct(usize),
    /// Fixed-size array.
    Array(Box<Ty>, usize),
    /// Pointer to function.
    FnPtr(Arc<Sig>),
}

impl Ty {
    /// `true` for types representable in one integer register.
    pub fn is_int_like(&self) -> bool {
        matches!(self, Ty::Int | Ty::Ptr(_) | Ty::FnPtr(_))
    }

    /// `true` for scalar (register-sized) types.
    pub fn is_scalar(&self) -> bool {
        self.is_int_like() || matches!(self, Ty::Double)
    }

    /// The machine class used to move this scalar.
    pub fn scalar(&self) -> Option<Scalar> {
        if self.is_int_like() {
            Some(Scalar::I64)
        } else if matches!(self, Ty::Double) {
            Some(Scalar::F64)
        } else {
            None
        }
    }
}

/// Machine scalar class: integer register vs SSE register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// Integer/pointer (GPR).
    I64,
    /// Double (XMM).
    F64,
}

/// A struct field with resolved layout.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// Byte offset within the struct.
    pub offset: u64,
}

/// A struct definition with layout.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// Total size in bytes.
    pub size: u64,
}

impl StructDef {
    /// Find a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// All struct definitions of a translation unit.
#[derive(Debug, Default, Clone)]
pub struct TypeTable {
    /// Definitions, indexed by [`Ty::Struct`] payloads.
    pub structs: Vec<StructDef>,
}

impl TypeTable {
    /// Size of a type in bytes.
    pub fn size_of(&self, ty: &Ty) -> u64 {
        match ty {
            Ty::Int | Ty::Double | Ty::Ptr(_) | Ty::FnPtr(_) => 8,
            Ty::Void => 0,
            Ty::Struct(i) => self.structs[*i].size,
            Ty::Array(t, n) => self.size_of(t) * *n as u64,
        }
    }

    /// The definition behind `Ty::Struct`.
    pub fn struct_def(&self, ty: &Ty) -> Option<&StructDef> {
        match ty {
            Ty::Struct(i) => Some(&self.structs[*i]),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Double => write!(f, "double"),
            Ty::Void => write!(f, "void"),
            Ty::Ptr(t) => write!(f, "{t}*"),
            Ty::Struct(i) => write!(f, "struct#{i}"),
            Ty::Array(t, n) => write!(f, "{t}[{n}]"),
            Ty::FnPtr(s) => write!(f, "{}(*)({} params)", s.ret, s.params.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let mut tt = TypeTable::default();
        tt.structs.push(StructDef {
            name: "P".into(),
            fields: vec![
                FieldDef {
                    name: "f".into(),
                    ty: Ty::Double,
                    offset: 0,
                },
                FieldDef {
                    name: "dx".into(),
                    ty: Ty::Int,
                    offset: 8,
                },
                FieldDef {
                    name: "dy".into(),
                    ty: Ty::Int,
                    offset: 16,
                },
            ],
            size: 24,
        });
        assert_eq!(tt.size_of(&Ty::Int), 8);
        assert_eq!(tt.size_of(&Ty::Struct(0)), 24);
        assert_eq!(tt.size_of(&Ty::Array(Box::new(Ty::Struct(0)), 5)), 120);
        assert_eq!(tt.size_of(&Ty::Ptr(Box::new(Ty::Struct(0)))), 8);
    }

    #[test]
    fn scalar_classes() {
        assert_eq!(Ty::Int.scalar(), Some(Scalar::I64));
        assert_eq!(Ty::Double.scalar(), Some(Scalar::F64));
        assert_eq!(Ty::Ptr(Box::new(Ty::Double)).scalar(), Some(Scalar::I64));
        assert_eq!(Ty::Array(Box::new(Ty::Int), 3).scalar(), None);
    }
}
