//! The execution engine: concrete x86-subset semantics over an [`Image`],
//! with a SysV AMD64 call harness and a decoded-instruction cache.

use crate::cost::{CostModel, Stats};
use crate::state::CpuState;
use brew_image::{Image, MemFault};
use brew_x86::prelude::*;
use std::collections::HashMap;
use std::fmt;

/// Sentinel return address marking the end of a harness call. Lives outside
/// every segment, so runaway code cannot accidentally execute it.
pub const STOP_ADDR: u64 = 0x5AFE_57A9;

/// Execution faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Instruction at `addr` could not be decoded.
    Decode {
        /// Address of the undecodable instruction.
        addr: u64,
        /// Underlying decoder error.
        err: DecodeError,
    },
    /// A data access faulted.
    Mem(MemFault),
    /// `idiv` by zero or overflowing quotient.
    Divide {
        /// Address of the faulting instruction.
        addr: u64,
    },
    /// `ud2` executed.
    Trap {
        /// Address of the trap.
        addr: u64,
    },
    /// The configured instruction budget was exhausted.
    OutOfFuel,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Decode { addr, err } => write!(f, "decode fault at {addr:#x}: {err}"),
            EmuError::Mem(m) => write!(f, "{m}"),
            EmuError::Divide { addr } => write!(f, "divide error at {addr:#x}"),
            EmuError::Trap { addr } => write!(f, "trap (ud2) at {addr:#x}"),
            EmuError::OutOfFuel => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for EmuError {}

impl From<MemFault> for EmuError {
    fn from(m: MemFault) -> Self {
        EmuError::Mem(m)
    }
}

/// Arguments for a SysV AMD64 call (register arguments only; the subset's
/// compiler never passes arguments on the stack).
#[derive(Debug, Clone, Default)]
pub struct CallArgs {
    ints: Vec<u64>,
    fps: Vec<f64>,
}

impl CallArgs {
    /// No arguments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an integer/pointer argument (at most 6).
    pub fn int(mut self, v: i64) -> Self {
        assert!(self.ints.len() < 6, "more than 6 integer args unsupported");
        self.ints.push(v as u64);
        self
    }

    /// Append a pointer argument.
    pub fn ptr(self, v: u64) -> Self {
        self.int(v as i64)
    }

    /// Append a double argument (at most 8).
    pub fn f64(mut self, v: f64) -> Self {
        assert!(self.fps.len() < 8, "more than 8 fp args unsupported");
        self.fps.push(v);
        self
    }

    /// The integer arguments.
    pub fn ints(&self) -> &[u64] {
        &self.ints
    }

    /// The floating-point arguments.
    pub fn fps(&self) -> &[f64] {
        &self.fps
    }
}

/// Result of a harness call.
#[derive(Debug, Clone, Copy)]
pub struct CallOutcome {
    /// RAX at return.
    pub ret_int: u64,
    /// XMM0 low lane at return.
    pub ret_f64: f64,
    /// Statistics for this call only.
    pub stats: Stats,
}

/// Observer invoked at every executed call instruction with
/// `(call-site, target, cpu-state-before-entry)`.
pub type CallObserver<'o> = dyn FnMut(u64, u64, &CpuState) + 'o;

/// The virtual machine: CPU state + cost model + decode cache.
///
/// The image is borrowed per [`Machine::call`], so the rewriter can own and
/// mutate it between calls; the decode cache auto-invalidates via
/// [`Image::code_version`].
pub struct Machine<'o> {
    /// Architectural state (reset at every harness call).
    pub cpu: CpuState,
    /// Cost model used to charge cycles.
    pub cost: CostModel,
    /// Instruction budget per harness call.
    pub fuel: u64,
    cache: HashMap<u64, Decoded>,
    cache_key: (u64, u64),
    observer: Option<Box<CallObserver<'o>>>,
    stack_top: Option<u64>,
}

impl Default for Machine<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'o> Machine<'o> {
    /// A machine with the default cost model and a 2^33 instruction budget.
    pub fn new() -> Self {
        Machine {
            cpu: CpuState::default(),
            cost: CostModel::default(),
            fuel: 1 << 33,
            cache: HashMap::new(),
            cache_key: (0, u64::MAX),
            observer: None,
            stack_top: None,
        }
    }

    /// Give this machine its own stack region: [`Machine::call`] starts
    /// `rsp` at `top` instead of [`Image::stack_top`]. Threads sharing one
    /// image must each run a machine with a disjoint stack slice — the
    /// image's stack segment is process-global, exactly like real threads
    /// carving a shared address space into per-thread stacks.
    pub fn set_stack_top(&mut self, top: u64) {
        self.stack_top = Some(top);
    }

    /// Install an observer for executed call instructions (used by the value
    /// profiler; §III.D of the paper collects such statistics to drive
    /// guarded specialization).
    pub fn set_call_observer(&mut self, obs: Box<CallObserver<'o>>) {
        self.observer = Some(obs);
    }

    /// Remove the call observer.
    pub fn clear_call_observer(&mut self) {
        self.observer = None;
    }

    fn ea(&self, m: &MemRef) -> u64 {
        let mut a = m.disp as i64 as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.cpu.get(b));
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.cpu.get(i).wrapping_mul(s as u64));
        }
        a
    }

    /// Read an integer operand at width `w`.
    fn read_int(&self, img: &Image, op: &Operand, w: Width) -> Result<u64, EmuError> {
        Ok(match op {
            Operand::Reg(r) => w.trunc(self.cpu.get(*r)),
            Operand::Imm(i) => w.trunc(*i as u64),
            Operand::Mem(m) => img.read_uint(self.ea(m), w.bytes())?,
            Operand::Xmm(_) => unreachable!("xmm operand in integer context"),
        })
    }

    /// Write an integer result at width `w`.
    fn write_int(&mut self, img: &Image, op: &Operand, w: Width, v: u64) -> Result<(), EmuError> {
        match op {
            Operand::Reg(r) => self.cpu.set_w(*r, w, v),
            Operand::Mem(m) => img.write_uint(self.ea(m), w.bytes(), v)?,
            _ => unreachable!("bad integer destination"),
        }
        Ok(())
    }

    /// Read a 64-bit lane for SSE scalar ops (xmm low lane or m64).
    fn read_sse64(&self, img: &Image, op: &Operand) -> Result<u64, EmuError> {
        Ok(match op {
            Operand::Xmm(x) => self.cpu.xmm[x.number() as usize][0],
            Operand::Mem(m) => img.read_u64(self.ea(m))?,
            _ => unreachable!("bad sse64 operand"),
        })
    }

    /// Read both 64-bit lanes for packed ops (xmm or m128).
    fn read_sse128(&self, img: &Image, op: &Operand) -> Result<[u64; 2], EmuError> {
        Ok(match op {
            Operand::Xmm(x) => self.cpu.xmm[x.number() as usize],
            Operand::Mem(m) => {
                let a = self.ea(m);
                [img.read_u64(a)?, img.read_u64(a.wrapping_add(8))?]
            }
            _ => unreachable!("bad sse128 operand"),
        })
    }

    fn push(&mut self, img: &Image, v: u64) -> Result<(), EmuError> {
        let sp = self.cpu.rsp().wrapping_sub(8);
        self.cpu.set(Gpr::Rsp, sp);
        img.write_u64(sp, v)?;
        Ok(())
    }

    fn pop(&mut self, img: &Image) -> Result<u64, EmuError> {
        let sp = self.cpu.rsp();
        let v = img.read_u64(sp)?;
        self.cpu.set(Gpr::Rsp, sp.wrapping_add(8));
        Ok(v)
    }

    fn decode_at(&mut self, img: &Image, addr: u64) -> Result<Decoded, EmuError> {
        let key = (img.uid(), img.code_version());
        if key != self.cache_key {
            self.cache.clear();
            self.cache_key = key;
        }
        if let Some(d) = self.cache.get(&addr) {
            return Ok(*d);
        }
        let window = img.code_window(addr, 16).map_err(|_| {
            EmuError::Mem(MemFault {
                addr,
                size: 1,
                write: false,
            })
        })?;
        let d = decode(&window, addr).map_err(|err| EmuError::Decode { addr, err })?;
        self.cache.insert(addr, d);
        Ok(d)
    }

    /// Execute one instruction at `cpu.rip`. Returns the cycles charged.
    pub fn step(&mut self, img: &Image, stats: &mut Stats) -> Result<(), EmuError> {
        let addr = self.cpu.rip;
        let Decoded { inst, len } = self.decode_at(img, addr)?;
        let next = addr + len as u64;
        let mut new_rip = next;
        let mut taken = false;

        match &inst {
            Inst::Mov { w, dst, src } => {
                let v = self.read_int(img, src, *w)?;
                self.write_int(img, dst, *w, v)?;
            }
            Inst::MovAbs { dst, imm } => self.cpu.set(*dst, *imm),
            Inst::Movsxd { dst, src } => {
                let v = self.read_int(img, src, Width::W32)?;
                self.cpu.set(*dst, Width::W32.sext(v));
            }
            Inst::Movzx8 { w, dst, src } => {
                let v = self.read_int(img, src, Width::W8)?;
                self.cpu.set_w(*dst, *w, v & 0xFF);
            }
            Inst::Lea { dst, src } => {
                let a = self.ea(src);
                self.cpu.set(*dst, a);
            }
            Inst::Alu { op, w, dst, src } => {
                let a = self.read_int(img, dst, *w)?;
                let b = self.read_int(img, src, *w)?;
                let (r, f) = brew_x86::alu::alu(*op, *w, a, b);
                self.cpu.flags = f;
                if op.writes_dst() {
                    self.write_int(img, dst, *w, r)?;
                }
            }
            Inst::Test { w, a, b } => {
                let av = self.read_int(img, a, *w)?;
                let bv = self.read_int(img, b, *w)?;
                self.cpu.flags = brew_x86::alu::test(*w, av, bv);
            }
            Inst::Imul { w, dst, src } => {
                let a = self.cpu.get(*dst);
                let b = self.read_int(img, src, *w)?;
                let (r, f) = brew_x86::alu::imul(*w, a, b);
                self.cpu.flags = f;
                self.cpu.set_w(*dst, *w, r);
            }
            Inst::ImulImm { w, dst, src, imm } => {
                let a = self.read_int(img, src, *w)?;
                let (r, f) = brew_x86::alu::imul(*w, a, *imm as i64 as u64);
                self.cpu.flags = f;
                self.cpu.set_w(*dst, *w, r);
            }
            Inst::Unary { op, w, dst } => {
                let v = self.read_int(img, dst, *w)?;
                let (r, f) = brew_x86::alu::unop(*op, *w, v, self.cpu.flags);
                self.cpu.flags = f;
                self.write_int(img, dst, *w, r)?;
            }
            Inst::Shift { op, w, dst, count } => {
                let v = self.read_int(img, dst, *w)?;
                let c = match count {
                    ShiftCount::Imm(i) => *i,
                    ShiftCount::Cl => self.cpu.get(Gpr::Rcx) as u8,
                };
                let (r, f) = brew_x86::alu::shift(*op, *w, v, c, self.cpu.flags);
                self.cpu.flags = f;
                self.write_int(img, dst, *w, r)?;
            }
            Inst::Cqo { w } => {
                let a = self.cpu.get(Gpr::Rax);
                match w {
                    Width::W64 => self.cpu.set(Gpr::Rdx, ((a as i64) >> 63) as u64),
                    _ => self.cpu.set_w(
                        Gpr::Rdx,
                        Width::W32,
                        (((a as u32 as i32) >> 31) as u32) as u64,
                    ),
                }
            }
            Inst::Idiv { w, src } => {
                let hi = self.cpu.get(Gpr::Rdx);
                let lo = self.cpu.get(Gpr::Rax);
                let d = self.read_int(img, src, *w)?;
                let (q, r) = brew_x86::alu::idiv(*w, hi, lo, d).ok_or(EmuError::Divide { addr })?;
                self.cpu.set_w(Gpr::Rax, *w, q);
                self.cpu.set_w(Gpr::Rdx, *w, r);
            }
            Inst::Push { src } => {
                let v = self.read_int(img, src, Width::W64)?;
                self.push(img, v)?;
            }
            Inst::Pop { dst } => {
                let v = self.pop(img)?;
                self.write_int(img, dst, Width::W64, v)?;
            }
            Inst::CallRel { target } => {
                if let Some(obs) = self.observer.as_mut() {
                    obs(addr, *target, &self.cpu);
                }
                self.push(img, next)?;
                new_rip = *target;
            }
            Inst::CallInd { src } => {
                let target = self.read_int(img, src, Width::W64)?;
                if let Some(obs) = self.observer.as_mut() {
                    obs(addr, target, &self.cpu);
                }
                self.push(img, next)?;
                new_rip = target;
            }
            Inst::Ret => {
                new_rip = self.pop(img)?;
            }
            Inst::JmpRel { target } => new_rip = *target,
            Inst::JmpInd { src } => new_rip = self.read_int(img, src, Width::W64)?,
            Inst::Jcc { cond, target } => {
                taken = self.cpu.flags.cond(*cond);
                if taken {
                    new_rip = *target;
                }
            }
            Inst::Setcc { cond, dst } => {
                let v = self.cpu.flags.cond(*cond) as u64;
                self.write_int(img, dst, Width::W8, v)?;
            }
            Inst::MovSd { dst, src } => match (dst, src) {
                (Operand::Xmm(d), Operand::Mem(m)) => {
                    let v = img.read_u64(self.ea(m))?;
                    // movsd xmm, m64 zeroes the high lane.
                    self.cpu.xmm[d.number() as usize] = [v, 0];
                }
                (Operand::Xmm(d), Operand::Xmm(s)) => {
                    let v = self.cpu.xmm[s.number() as usize][0];
                    self.cpu.set_xmm_low(*d, v); // reg-reg keeps the high lane
                }
                (Operand::Mem(m), Operand::Xmm(s)) => {
                    let v = self.cpu.xmm[s.number() as usize][0];
                    img.write_u64(self.ea(m), v)?;
                }
                _ => unreachable!("bad movsd operands"),
            },
            Inst::MovUpd { dst, src } => match (dst, src) {
                (Operand::Xmm(d), s) => {
                    let v = self.read_sse128(img, s)?;
                    self.cpu.xmm[d.number() as usize] = v;
                }
                (Operand::Mem(m), Operand::Xmm(s)) => {
                    let v = self.cpu.xmm[s.number() as usize];
                    let a = self.ea(m);
                    img.write_u64(a, v[0])?;
                    img.write_u64(a.wrapping_add(8), v[1])?;
                }
                _ => unreachable!("bad movupd operands"),
            },
            Inst::Sse { op, dst, src } => {
                let d = dst.number() as usize;
                match op {
                    SseOp::Addsd | SseOp::Subsd | SseOp::Mulsd | SseOp::Divsd => {
                        let a = f64::from_bits(self.cpu.xmm[d][0]);
                        let b = f64::from_bits(self.read_sse64(img, src)?);
                        let r = scalar_op(*op, a, b);
                        self.cpu.xmm[d][0] = r.to_bits();
                    }
                    SseOp::Addpd | SseOp::Subpd | SseOp::Mulpd | SseOp::Divpd => {
                        let b = self.read_sse128(img, src)?;
                        for (lane, bv) in b.iter().enumerate() {
                            let a = f64::from_bits(self.cpu.xmm[d][lane]);
                            let bv = f64::from_bits(*bv);
                            self.cpu.xmm[d][lane] = packed_op(*op, a, bv).to_bits();
                        }
                    }
                    SseOp::Xorpd => {
                        let b = self.read_sse128(img, src)?;
                        self.cpu.xmm[d][0] ^= b[0];
                        self.cpu.xmm[d][1] ^= b[1];
                    }
                    SseOp::Unpcklpd => {
                        let b = self.read_sse128(img, src)?;
                        self.cpu.xmm[d][1] = b[0];
                    }
                }
            }
            Inst::Ucomisd { a, b } => {
                let av = f64::from_bits(self.cpu.xmm[a.number() as usize][0]);
                let bv = f64::from_bits(self.read_sse64(img, b)?);
                self.cpu.flags = ucomisd_flags(av, bv);
            }
            Inst::Cvtsi2sd { w, dst, src } => {
                let v = self.read_int(img, src, *w)?;
                let f = (w.sext(v) as i64) as f64;
                self.cpu.set_xmm_low(*dst, f.to_bits());
            }
            Inst::Cvttsd2si { w, dst, src } => {
                let f = f64::from_bits(self.read_sse64(img, src)?);
                let v = cvttsd2si(f, *w);
                self.cpu.set_w(*dst, *w, v);
            }
            Inst::Nop => {}
            Inst::Ud2 => return Err(EmuError::Trap { addr }),
        }

        let cycles = self.cost.cost(&inst, taken);
        stats.record(&inst, taken, cycles);
        self.cpu.rip = new_rip;
        Ok(())
    }

    /// Run from `cpu.rip` until control returns to [`STOP_ADDR`] or the fuel
    /// budget runs out.
    pub fn run(&mut self, img: &Image, stats: &mut Stats) -> Result<(), EmuError> {
        let mut fuel = self.fuel;
        while self.cpu.rip != STOP_ADDR {
            if fuel == 0 {
                return Err(EmuError::OutOfFuel);
            }
            fuel -= 1;
            self.step(img, stats)?;
        }
        Ok(())
    }

    /// Call the function at `func` with SysV register arguments and run it
    /// to completion. The CPU state is reset first; callee-saved registers
    /// are seeded with recognizable canaries and checked on return in debug
    /// builds.
    pub fn call(
        &mut self,
        img: &Image,
        func: u64,
        args: &CallArgs,
    ) -> Result<CallOutcome, EmuError> {
        self.cpu = CpuState::default();
        let sp = self.stack_top.unwrap_or_else(|| img.stack_top()) & !0xF;
        self.cpu.set(Gpr::Rsp, sp);
        for (i, &v) in args.ints().iter().enumerate() {
            self.cpu.set(Gpr::SYSV_ARGS[i], v);
        }
        for (i, &v) in args.fps().iter().enumerate() {
            self.cpu.xmm[Xmm::SYSV_ARGS[i].number() as usize] = [v.to_bits(), 0];
        }
        // Seed callee-saved registers so an ABI violation is observable.
        for (i, r) in Gpr::SYSV_CALLEE_SAVED.iter().enumerate() {
            self.cpu.set(*r, 0x00CA_11EE_0000 + i as u64);
        }
        let saved: Vec<u64> = Gpr::SYSV_CALLEE_SAVED
            .iter()
            .map(|r| self.cpu.get(*r))
            .collect();

        self.push(img, STOP_ADDR)?;
        self.cpu.rip = func;
        let mut stats = Stats::default();
        self.run(img, &mut stats)?;

        debug_assert_eq!(
            self.cpu.rsp(),
            sp,
            "callee must restore rsp (function at {func:#x})"
        );
        for (i, r) in Gpr::SYSV_CALLEE_SAVED.iter().enumerate() {
            debug_assert_eq!(
                self.cpu.get(*r),
                saved[i],
                "callee-saved {r} clobbered by function at {func:#x}"
            );
        }

        Ok(CallOutcome {
            ret_int: self.cpu.get(Gpr::Rax),
            ret_f64: self.cpu.xmm_f64(Xmm::Xmm0),
            stats,
        })
    }
}

fn scalar_op(op: SseOp, a: f64, b: f64) -> f64 {
    match op {
        SseOp::Addsd => a + b,
        SseOp::Subsd => a - b,
        SseOp::Mulsd => a * b,
        SseOp::Divsd => a / b,
        _ => unreachable!(),
    }
}

fn packed_op(op: SseOp, a: f64, b: f64) -> f64 {
    match op {
        SseOp::Addpd => a + b,
        SseOp::Subpd => a - b,
        SseOp::Mulpd => a * b,
        SseOp::Divpd => a / b,
        _ => unreachable!(),
    }
}

/// Flag results of `ucomisd` per the ISA: unordered → ZF=PF=CF=1,
/// less → CF, equal → ZF, greater → none; OF/SF cleared.
fn ucomisd_flags(a: f64, b: f64) -> Flags {
    let (zf, pf, cf) = if a.is_nan() || b.is_nan() {
        (true, true, true)
    } else if a == b {
        (true, false, false)
    } else if a < b {
        (false, false, true)
    } else {
        (false, false, false)
    };
    Flags {
        cf,
        zf,
        sf: false,
        of: false,
        pf,
    }
}

/// Truncating double→int conversion with the ISA's out-of-range semantics
/// (returns the "integer indefinite" value, INT_MIN of the width).
fn cvttsd2si(f: f64, w: Width) -> u64 {
    match w {
        Width::W64 => {
            if f.is_nan() || !(-9.223372036854776e18..9.223372036854776e18).contains(&f) {
                i64::MIN as u64
            } else {
                (f as i64) as u64
            }
        }
        _ => {
            if f.is_nan() || !(-2147483648.0..2147483648.0).contains(&f) {
                (i32::MIN as u32) as u64
            } else {
                ((f as i32) as u32) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brew_x86::encode::encode;

    /// Assemble a function body into a fresh image and return (image, entry).
    fn asm(insts: &[Inst]) -> (Image, u64) {
        let img = Image::new();
        // Two-pass: lengths are address-independent in this subset.
        let lens: Vec<usize> = insts.iter().map(|i| encoded_len(i).unwrap()).collect();
        let total: usize = lens.iter().sum();
        let base = brew_image::layout::CODE_BASE;
        let mut bytes = Vec::with_capacity(total);
        let mut addr = base;
        for i in insts {
            encode(i, addr, &mut bytes).unwrap();
            addr = base + bytes.len() as u64;
        }
        let entry = img.alloc_code(&bytes);
        assert_eq!(entry, base);
        (img, entry)
    }

    #[test]
    fn add_function() {
        // long add(long a, long b) { return a + b; }
        let (img, f) = asm(&[
            Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Gpr::Rdi.into(),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Gpr::Rsi.into(),
            },
            Inst::Ret,
        ]);
        let mut m = Machine::new();
        let out = m.call(&img, f, &CallArgs::new().int(40).int(2)).unwrap();
        assert_eq!(out.ret_int, 42);
        assert_eq!(out.stats.insts, 3);
    }

    #[test]
    fn fp_function() {
        // double fma_ish(double a, double b) { return a * b + a; }
        let (img, f) = asm(&[
            Inst::MovSd {
                dst: Xmm::Xmm2.into(),
                src: Xmm::Xmm0.into(),
            },
            Inst::Sse {
                op: SseOp::Mulsd,
                dst: Xmm::Xmm0,
                src: Xmm::Xmm1.into(),
            },
            Inst::Sse {
                op: SseOp::Addsd,
                dst: Xmm::Xmm0,
                src: Xmm::Xmm2.into(),
            },
            Inst::Ret,
        ]);
        let mut m = Machine::new();
        let out = m.call(&img, f, &CallArgs::new().f64(3.0).f64(4.0)).unwrap();
        assert_eq!(out.ret_f64, 15.0);
    }

    #[test]
    fn loop_sums_memory() {
        // long sum(long* p, long n): rax=0; while(n--) rax += *p++;
        let loop_top = brew_image::layout::CODE_BASE + 7 + 4; // after first two insts
        let (img, f) = asm(&[
            // mov rax, 0 (7 bytes)
            Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Operand::Imm(0),
            },
            // test rsi, rsi (4? bytes: 48 85 F6 = 3)... compute via encoded_len
            Inst::Test {
                w: Width::W64,
                a: Gpr::Rsi.into(),
                b: Gpr::Rsi.into(),
            },
            Inst::Jcc {
                cond: Cond::E,
                target: 0,
            }, // patched below
            // loop: add rax, [rdi]; add rdi, 8; dec rsi; jne loop
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: MemRef::base(Gpr::Rdi).into(),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rdi.into(),
                src: Operand::Imm(8),
            },
            Inst::Unary {
                op: UnOp::Dec,
                w: Width::W64,
                dst: Gpr::Rsi.into(),
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: 0,
            }, // patched below
            Inst::Ret,
        ]);
        let _ = loop_top;
        // Patch the branch targets by reassembling with real addresses.
        // Compute instruction addresses.
        let insts_len: Vec<usize> = {
            let win = img.code_window(f, 256).unwrap();
            let (is, _) = decode_all(&win, f);
            is.iter()
                .map(|(a, i)| {
                    let _ = a;
                    encoded_len(i).unwrap()
                })
                .collect()
        };
        let mut addrs = vec![f];
        for l in &insts_len {
            addrs.push(addrs.last().unwrap() + *l as u64);
        }
        // Rebuild with jcc targets: index 2 -> ret (addrs[7]); index 6 -> loop top (addrs[3]).
        let body = [
            Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Operand::Imm(0),
            },
            Inst::Test {
                w: Width::W64,
                a: Gpr::Rsi.into(),
                b: Gpr::Rsi.into(),
            },
            Inst::Jcc {
                cond: Cond::E,
                target: addrs[7],
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: MemRef::base(Gpr::Rdi).into(),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rdi.into(),
                src: Operand::Imm(8),
            },
            Inst::Unary {
                op: UnOp::Dec,
                w: Width::W64,
                dst: Gpr::Rsi.into(),
            },
            Inst::Jcc {
                cond: Cond::Ne,
                target: addrs[3],
            },
            Inst::Ret,
        ];
        let mut bytes = Vec::new();
        let mut addr = f;
        for i in &body {
            encode(i, addr, &mut bytes).unwrap();
            addr = f + bytes.len() as u64;
        }
        img.write_bytes(f, &bytes).unwrap();

        // Data: 5 numbers on the heap.
        let p = img.alloc_heap(5 * 8, 8);
        for (i, v) in [1i64, 2, 3, 4, 5].iter().enumerate() {
            img.write_u64(p + 8 * i as u64, *v as u64).unwrap();
        }
        let mut m = Machine::new();
        let out = m.call(&img, f, &CallArgs::new().ptr(p).int(5)).unwrap();
        assert_eq!(out.ret_int as i64, 15);
        assert_eq!(out.stats.branches, 6); // 1 entry test + 5 loop back-edges
        assert_eq!(out.stats.loads, 5);
    }

    #[test]
    fn call_and_ret_nest() {
        // callee: mov rax, 7; ret     caller: call callee; add rax, 1; ret
        let base = brew_image::layout::CODE_BASE;
        let callee = [
            Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Operand::Imm(7),
            },
            Inst::Ret,
        ];
        let mut bytes = Vec::new();
        let mut addr = base;
        for i in &callee {
            encode(i, addr, &mut bytes).unwrap();
            addr = base + bytes.len() as u64;
        }
        let callee_len = bytes.len() as u64;
        let caller_at = base + callee_len;
        let caller = [
            Inst::CallRel { target: base },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Operand::Imm(1),
            },
            Inst::Ret,
        ];
        for i in &caller {
            encode(i, base + bytes.len() as u64, &mut bytes).unwrap();
        }
        let img = Image::new();
        img.alloc_code(&bytes);
        let mut m = Machine::new();
        let out = m.call(&img, caller_at, &CallArgs::new()).unwrap();
        assert_eq!(out.ret_int, 8);
        assert_eq!(out.stats.calls, 1);
        assert_eq!(out.stats.rets, 2);
    }

    #[test]
    fn divide_fault() {
        let (img, f) = asm(&[
            Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Operand::Imm(1),
            },
            Inst::Cqo { w: Width::W64 },
            Inst::Idiv {
                w: Width::W64,
                src: Gpr::Rcx.into(),
            }, // rcx = 0
            Inst::Ret,
        ]);
        let mut m = Machine::new();
        let err = m.call(&img, f, &CallArgs::new()).unwrap_err();
        assert!(matches!(err, EmuError::Divide { .. }));
    }

    #[test]
    fn ud2_traps() {
        let (img, f) = asm(&[Inst::Ud2]);
        let mut m = Machine::new();
        assert!(matches!(
            m.call(&img, f, &CallArgs::new()),
            Err(EmuError::Trap { .. })
        ));
    }

    #[test]
    fn fuel_exhaustion() {
        // jmp self
        let base = brew_image::layout::CODE_BASE;
        let mut bytes = Vec::new();
        encode(&Inst::JmpRel { target: base }, base, &mut bytes).unwrap();
        let img = Image::new();
        img.alloc_code(&bytes);
        let mut m = Machine::new();
        m.fuel = 1000;
        assert!(matches!(
            m.call(&img, base, &CallArgs::new()),
            Err(EmuError::OutOfFuel)
        ));
    }

    #[test]
    fn observer_sees_calls() {
        let base = brew_image::layout::CODE_BASE;
        let callee = base; // mov rax,1; ret
        let mut bytes = Vec::new();
        let mut a = base;
        for i in [
            Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Operand::Imm(1),
            },
            Inst::Ret,
        ] {
            encode(&i, a, &mut bytes).unwrap();
            a = base + bytes.len() as u64;
        }
        let caller = base + bytes.len() as u64;
        for i in [Inst::CallRel { target: callee }, Inst::Ret] {
            encode(&i, base + bytes.len() as u64, &mut bytes).unwrap();
        }
        let img = Image::new();
        img.alloc_code(&bytes);

        let mut seen: Vec<(u64, u64)> = Vec::new();
        {
            let mut m = Machine::new();
            m.set_call_observer(Box::new(|site, target, _| seen.push((site, target))));
            m.call(&img, caller, &CallArgs::new()).unwrap();
        }
        assert_eq!(seen, vec![(caller, callee)]);
    }

    #[test]
    fn cvt_roundtrip_and_limits() {
        assert_eq!(cvttsd2si(3.9, Width::W64) as i64, 3);
        assert_eq!(cvttsd2si(-3.9, Width::W64) as i64, -3);
        assert_eq!(cvttsd2si(f64::NAN, Width::W64) as i64, i64::MIN);
        assert_eq!(cvttsd2si(1e30, Width::W32) as u32 as i32, i32::MIN);
    }

    #[test]
    fn ucomisd_flag_matrix() {
        let fl = ucomisd_flags(1.0, 2.0);
        assert!(fl.cf && !fl.zf && !fl.pf);
        let fl = ucomisd_flags(2.0, 2.0);
        assert!(!fl.cf && fl.zf && !fl.pf);
        let fl = ucomisd_flags(3.0, 2.0);
        assert!(!fl.cf && !fl.zf && !fl.pf);
        let fl = ucomisd_flags(f64::NAN, 2.0);
        assert!(fl.cf && fl.zf && fl.pf);
    }
}
