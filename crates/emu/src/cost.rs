//! The emulator's cycle cost model.
//!
//! The paper evaluates on an Intel i7-3740QM and reports wall-clock seconds;
//! our substrate is an interpreter, so we substitute a documented in-order
//! additive cost model (see DESIGN.md §5). Absolute cycle counts are not
//! comparable to the paper's seconds — only *ratios* between variants are,
//! and those are what EXPERIMENTS.md reports.

use brew_x86::prelude::*;

/// Per-class cycle costs. All fields are public so ablation benches can
/// perturb the model and check that the paper's qualitative conclusions are
/// not artifacts of one parameter choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple integer ALU op / register move / lea / setcc.
    pub alu: u64,
    /// Extra cycles for an instruction that loads from memory.
    pub load_extra: u64,
    /// Extra cycles for an instruction that stores to memory.
    pub store_extra: u64,
    /// Integer multiply.
    pub imul: u64,
    /// Integer divide.
    pub idiv: u64,
    /// Scalar or packed SSE add/sub/mul (packed does two lanes for the same
    /// cost — the vectorization win).
    pub sse: u64,
    /// SSE divide.
    pub sse_div: u64,
    /// int<->double conversion.
    pub cvt: u64,
    /// Taken branch (direct jump, taken jcc).
    pub branch_taken: u64,
    /// Not-taken conditional branch.
    pub branch_not_taken: u64,
    /// Call instruction (the ABI overhead the rewriter's inlining removes).
    pub call: u64,
    /// Return instruction.
    pub ret: u64,
    /// Push or pop.
    pub push_pop: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            load_extra: 3,
            store_extra: 1,
            imul: 3,
            idiv: 20,
            sse: 4,
            sse_div: 20,
            cvt: 4,
            branch_taken: 2,
            branch_not_taken: 1,
            call: 6,
            ret: 4,
            push_pop: 2,
        }
    }
}

impl CostModel {
    /// Cycles charged for one executed instruction. `taken` matters only
    /// for conditional branches.
    pub fn cost(&self, inst: &Inst, taken: bool) -> u64 {
        let base = match inst {
            Inst::Mov { .. }
            | Inst::MovAbs { .. }
            | Inst::Movsxd { .. }
            | Inst::Movzx8 { .. }
            | Inst::Lea { .. }
            | Inst::Alu { .. }
            | Inst::Test { .. }
            | Inst::Unary { .. }
            | Inst::Shift { .. }
            | Inst::Setcc { .. }
            | Inst::Cqo { .. }
            | Inst::Nop => self.alu,
            Inst::Imul { .. } | Inst::ImulImm { .. } => self.imul,
            Inst::Idiv { .. } => self.idiv,
            Inst::Push { .. } | Inst::Pop { .. } => self.push_pop,
            Inst::CallRel { .. } | Inst::CallInd { .. } => self.call,
            Inst::Ret => self.ret,
            Inst::JmpRel { .. } | Inst::JmpInd { .. } => self.branch_taken,
            Inst::Jcc { .. } => {
                if taken {
                    self.branch_taken
                } else {
                    self.branch_not_taken
                }
            }
            Inst::MovSd { .. } | Inst::MovUpd { .. } => self.alu,
            Inst::Sse { op, .. } => match op {
                SseOp::Divsd | SseOp::Divpd => self.sse_div,
                SseOp::Xorpd | SseOp::Unpcklpd => self.alu,
                _ => self.sse,
            },
            Inst::Ucomisd { .. } => self.sse,
            Inst::Cvtsi2sd { .. } | Inst::Cvttsd2si { .. } => self.cvt,
            Inst::Ud2 => 0,
        };
        let mem = inst.mem_load().map_or(0, |_| self.load_extra)
            + inst.mem_store().map_or(0, |_| self.store_extra);
        base + mem
    }
}

/// Execution statistics accumulated by the emulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Instructions retired.
    pub insts: u64,
    /// Model cycles.
    pub cycles: u64,
    /// Instructions that loaded from memory.
    pub loads: u64,
    /// Instructions that stored to memory.
    pub stores: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches taken.
    pub taken: u64,
    /// Calls executed (direct + indirect).
    pub calls: u64,
    /// Returns executed.
    pub rets: u64,
    /// Floating-point arithmetic instructions.
    pub fp_ops: u64,
    /// Integer multiplies.
    pub imuls: u64,
}

impl Stats {
    /// Record one executed instruction.
    pub fn record(&mut self, inst: &Inst, taken: bool, cycles: u64) {
        self.insts += 1;
        self.cycles += cycles;
        if inst.mem_load().is_some() {
            self.loads += 1;
        }
        if inst.mem_store().is_some() {
            self.stores += 1;
        }
        match inst {
            Inst::Jcc { .. } => {
                self.branches += 1;
                if taken {
                    self.taken += 1;
                }
            }
            Inst::CallRel { .. } | Inst::CallInd { .. } => self.calls += 1,
            Inst::Ret => self.rets += 1,
            Inst::Sse { op, .. } if !matches!(op, SseOp::Xorpd | SseOp::Unpcklpd) => {
                self.fp_ops += 1
            }
            Inst::Imul { .. } | Inst::ImulImm { .. } => self.imuls += 1,
            _ => {}
        }
    }

    /// Merge another statistics block into this one.
    pub fn merge(&mut self, o: &Stats) {
        self.insts += o.insts;
        self.cycles += o.cycles;
        self.loads += o.loads;
        self.stores += o.stores;
        self.branches += o.branches;
        self.taken += o.taken;
        self.calls += o.calls;
        self.rets += o.rets;
        self.fp_ops += o.fp_ops;
        self.imuls += o.imuls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brew_x86::operand::MemRef;

    #[test]
    fn load_costs_more_than_reg_op() {
        let m = CostModel::default();
        let reg = Inst::Mov {
            w: Width::W64,
            dst: Gpr::Rax.into(),
            src: Gpr::Rbx.into(),
        };
        let mem = Inst::Mov {
            w: Width::W64,
            dst: Gpr::Rax.into(),
            src: MemRef::base(Gpr::Rdi).into(),
        };
        assert!(m.cost(&mem, false) > m.cost(&reg, false));
    }

    #[test]
    fn call_is_expensive() {
        let m = CostModel::default();
        assert!(m.cost(&Inst::CallRel { target: 0 }, false) >= 6);
    }

    #[test]
    fn packed_same_cost_as_scalar() {
        let m = CostModel::default();
        let s = Inst::Sse {
            op: SseOp::Mulsd,
            dst: Xmm::Xmm0,
            src: Xmm::Xmm1.into(),
        };
        let p = Inst::Sse {
            op: SseOp::Mulpd,
            dst: Xmm::Xmm0,
            src: Xmm::Xmm1.into(),
        };
        assert_eq!(m.cost(&s, false), m.cost(&p, false));
    }

    #[test]
    fn taken_branch_costs_more() {
        let m = CostModel::default();
        let j = Inst::Jcc {
            cond: Cond::E,
            target: 0,
        };
        assert!(m.cost(&j, true) > m.cost(&j, false));
    }

    #[test]
    fn stats_record_and_merge() {
        let m = CostModel::default();
        let mut s = Stats::default();
        let j = Inst::Jcc {
            cond: Cond::E,
            target: 0,
        };
        s.record(&j, true, m.cost(&j, true));
        s.record(&j, false, m.cost(&j, false));
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken, 1);
        assert_eq!(s.insts, 2);

        let mut t = Stats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.branches, 4);
        assert_eq!(t.cycles, 2 * s.cycles);
    }
}
