//! Architectural CPU state for the emulator.

use brew_x86::prelude::*;

/// Register and flag state of the virtual CPU.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CpuState {
    /// General-purpose registers, indexed by [`Gpr::number`].
    pub gpr: [u64; 16],
    /// SSE registers as `[low, high]` 64-bit lanes.
    pub xmm: [[u64; 2]; 16],
    /// Arithmetic flags.
    pub flags: Flags,
    /// Instruction pointer.
    pub rip: u64,
}

impl CpuState {
    /// Read a GPR at full width.
    #[inline]
    pub fn get(&self, r: Gpr) -> u64 {
        self.gpr[r.number() as usize]
    }

    /// Write a GPR at full width.
    #[inline]
    pub fn set(&mut self, r: Gpr, v: u64) {
        self.gpr[r.number() as usize] = v;
    }

    /// Write a GPR at the given width with x86 semantics: 32-bit writes
    /// zero-extend, 8-bit writes merge into the low byte.
    #[inline]
    pub fn set_w(&mut self, r: Gpr, w: Width, v: u64) {
        let slot = &mut self.gpr[r.number() as usize];
        match w {
            Width::W64 => *slot = v,
            Width::W32 => *slot = v as u32 as u64,
            Width::W8 => *slot = (*slot & !0xFF) | (v & 0xFF),
        }
    }

    /// Read the low lane of an XMM register as f64.
    #[inline]
    pub fn xmm_f64(&self, x: Xmm) -> f64 {
        f64::from_bits(self.xmm[x.number() as usize][0])
    }

    /// Write the low lane of an XMM register, preserving the high lane.
    #[inline]
    pub fn set_xmm_low(&mut self, x: Xmm, bits: u64) {
        self.xmm[x.number() as usize][0] = bits;
    }

    /// Stack pointer convenience accessor.
    #[inline]
    pub fn rsp(&self) -> u64 {
        self.get(Gpr::Rsp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_write_semantics() {
        let mut s = CpuState::default();
        s.set(Gpr::Rax, 0xFFFF_FFFF_FFFF_FFFF);
        s.set_w(Gpr::Rax, Width::W32, 0x1234_5678);
        assert_eq!(s.get(Gpr::Rax), 0x1234_5678, "32-bit write zero-extends");

        s.set(Gpr::Rbx, 0xAABB_CCDD_EEFF_0011);
        s.set_w(Gpr::Rbx, Width::W8, 0x42);
        assert_eq!(s.get(Gpr::Rbx), 0xAABB_CCDD_EEFF_0042, "8-bit write merges");
    }

    #[test]
    fn xmm_lanes() {
        let mut s = CpuState::default();
        s.xmm[3] = [2.5f64.to_bits(), 7.0f64.to_bits()];
        assert_eq!(s.xmm_f64(Xmm::Xmm3), 2.5);
        s.set_xmm_low(Xmm::Xmm3, 9.0f64.to_bits());
        assert_eq!(s.xmm_f64(Xmm::Xmm3), 9.0);
        assert_eq!(f64::from_bits(s.xmm[3][1]), 7.0, "high lane preserved");
    }
}
