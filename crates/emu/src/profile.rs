//! Value profiling of function arguments.
//!
//! §III.D of the paper: *"statistical information can be collected by
//! profiling. For example, it may be observed that a parameter to a function
//! often is 42. In this case, a specific variant can be generated which is
//! called after a check for the parameter actually being 42."*
//!
//! [`ValueProfile`] is attached to a [`crate::Machine`] as a call observer;
//! it histograms the integer argument registers per call target, and
//! [`ValueProfile::hot_value`] answers the question guarded specialization
//! asks: which constant (if any) dominates a given parameter.

use crate::state::CpuState;
use brew_x86::reg::Gpr;
use std::collections::HashMap;

/// Per-target, per-parameter histograms of observed argument values.
#[derive(Debug, Default, Clone)]
pub struct ValueProfile {
    /// (target, param index) → (value → count).
    hist: HashMap<(u64, usize), HashMap<u64, u64>>,
    /// target → number of observed calls.
    calls: HashMap<u64, u64>,
    params_tracked: usize,
}

impl ValueProfile {
    /// Track the first `params` integer parameters (at most 6).
    pub fn new(params: usize) -> Self {
        ValueProfile {
            params_tracked: params.min(6),
            ..Default::default()
        }
    }

    /// How many leading integer parameters are histogrammed (clamped to
    /// the 6 SysV integer argument registers).
    pub fn params_tracked(&self) -> usize {
        self.params_tracked
    }

    /// Record one call. Matches the [`crate::machine::CallObserver`] shape.
    pub fn record(&mut self, target: u64, cpu: &CpuState) {
        *self.calls.entry(target).or_insert(0) += 1;
        for (idx, reg) in Gpr::SYSV_ARGS.iter().take(self.params_tracked).enumerate() {
            let v = cpu.get(*reg);
            *self
                .hist
                .entry((target, idx))
                .or_default()
                .entry(v)
                .or_insert(0) += 1;
        }
    }

    /// Number of calls observed for `target`.
    pub fn call_count(&self, target: u64) -> u64 {
        self.calls.get(&target).copied().unwrap_or(0)
    }

    /// The dominant value of parameter `param` of `target`, if it accounts
    /// for at least `min_share` (0.0–1.0) of the observed calls. This is the
    /// input to guarded specialization (`brew-core`'s dispatch stubs).
    pub fn hot_value(&self, target: u64, param: usize, min_share: f64) -> Option<u64> {
        let total = self.call_count(target);
        if total == 0 {
            return None;
        }
        let h = self.hist.get(&(target, param))?;
        let (&v, &n) = h.iter().max_by_key(|&(_, &n)| n)?;
        if n as f64 >= min_share * total as f64 {
            Some(v)
        } else {
            None
        }
    }

    /// All observed targets, sorted by call count descending — the
    /// "performance sensitive hot code paths" the paper says rewriting
    /// should focus on.
    pub fn hottest_targets(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.calls.iter().map(|(&t, &n)| (t, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_with_args(a: u64, b: u64) -> CpuState {
        let mut c = CpuState::default();
        c.set(Gpr::Rdi, a);
        c.set(Gpr::Rsi, b);
        c
    }

    #[test]
    fn hot_value_detection() {
        let mut p = ValueProfile::new(2);
        for _ in 0..90 {
            p.record(0x400000, &cpu_with_args(42, 1));
        }
        for i in 0..10 {
            p.record(0x400000, &cpu_with_args(i, 2));
        }
        assert_eq!(p.call_count(0x400000), 100);
        assert_eq!(p.hot_value(0x400000, 0, 0.8), Some(42));
        assert_eq!(p.hot_value(0x400000, 0, 0.95), None);
        // Param 1 is bimodal 90/10: the dominant value is 1.
        assert_eq!(p.hot_value(0x400000, 1, 0.5), Some(1));
    }

    #[test]
    fn unknown_target() {
        let p = ValueProfile::new(1);
        assert_eq!(p.call_count(0x1), 0);
        assert_eq!(p.hot_value(0x1, 0, 0.5), None);
    }

    #[test]
    fn tie_at_exactly_min_share_qualifies() {
        // 50/50 split with min_share = 0.5: `n >= min_share * total` holds
        // for both values, so *a* hot value is reported (which of the two
        // is a HashMap iteration detail).
        let mut p = ValueProfile::new(1);
        for _ in 0..5 {
            p.record(0x400000, &cpu_with_args(7, 0));
        }
        for _ in 0..5 {
            p.record(0x400000, &cpu_with_args(9, 0));
        }
        let hot = p.hot_value(0x400000, 0, 0.5);
        assert!(hot == Some(7) || hot == Some(9), "got {hot:?}");
        // Just above the tie threshold neither value qualifies.
        assert_eq!(p.hot_value(0x400000, 0, 0.51), None);
    }

    #[test]
    fn single_call_is_fully_dominant() {
        let mut p = ValueProfile::new(1);
        p.record(0x400000, &cpu_with_args(3, 0));
        // One observation is 100% of the calls — even min_share = 1.0.
        assert_eq!(p.hot_value(0x400000, 0, 1.0), Some(3));
    }

    #[test]
    fn params_tracked_clamps_at_six() {
        assert_eq!(ValueProfile::new(0).params_tracked(), 0);
        assert_eq!(ValueProfile::new(4).params_tracked(), 4);
        assert_eq!(ValueProfile::new(6).params_tracked(), 6);
        assert_eq!(ValueProfile::new(17).params_tracked(), 6);
    }

    #[test]
    fn untracked_param_has_no_hot_value() {
        let mut p = ValueProfile::new(1);
        for _ in 0..10 {
            p.record(0x400000, &cpu_with_args(42, 42));
        }
        // Param 0 is tracked; param 1 is beyond params_tracked — no
        // histogram exists even though the register always held 42.
        assert_eq!(p.hot_value(0x400000, 0, 0.9), Some(42));
        assert_eq!(p.hot_value(0x400000, 1, 0.1), None);
        // Way out of ABI range is equally silent.
        assert_eq!(p.hot_value(0x400000, 9, 0.1), None);
    }

    #[test]
    fn hottest_ordering() {
        let mut p = ValueProfile::new(0);
        let c = CpuState::default();
        for _ in 0..3 {
            p.record(0xB, &c);
        }
        for _ in 0..5 {
            p.record(0xA, &c);
        }
        assert_eq!(p.hottest_targets(), vec![(0xA, 5), (0xB, 3)]);
    }
}
