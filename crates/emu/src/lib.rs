//! # brew-emu — the CPU execution substrate
//!
//! The paper measures its rewriter on a real Intel CPU; this crate is the
//! substituted execution substrate (DESIGN.md §2 item 3): a concrete
//! interpreter for the x86-64 subset over a [`brew_image::Image`], with a
//! SysV AMD64 call harness, a documented cycle cost model, execution
//! statistics and a value profiler.
//!
//! Both the original (mini-C-compiled) functions and the rewriter's output
//! run here, so every experiment compares variants under identical
//! semantics and cost accounting.

#![warn(missing_docs)]

pub mod cost;
pub mod machine;
pub mod profile;
pub mod state;

pub use cost::{CostModel, Stats};
pub use machine::{CallArgs, CallOutcome, EmuError, Machine, STOP_ADDR};
pub use profile::ValueProfile;
pub use state::CpuState;
