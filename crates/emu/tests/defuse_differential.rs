//! Differential check of the def/use model against the emulator.
//!
//! `brew_x86::defuse` is load-bearing twice over: the rewriter's
//! optimization passes trust its read/write sets for liveness and dead-store
//! elimination, and the static verifier trusts `for_each_write` to spot
//! unmodeled RSP writes. A stale entry there silently corrupts variants, so
//! this test cross-examines the model against ground truth — the emulator:
//!
//! * **write soundness** — every architectural register the emulator
//!   actually changed must appear in `defuse::writes`;
//! * **read soundness** — perturbing every register *outside*
//!   `reads ∪ writes` must not change the instruction's effect (written
//!   register values, flags, or touched memory).

use brew_emu::{Machine, Stats};
use brew_image::layout;
use brew_image::Image;
use brew_x86::defuse::{self, Loc};
use brew_x86::{
    encode, AluOp, Cond, Flags, Gpr, Inst, MemRef, Operand, ShOp, ShiftCount, SseOp, UnOp, Width,
    Xmm,
};
use proptest::prelude::*;

/// Registers safe to use as explicit operands (RSP stays pinned to the
/// stack; RBX is the designated memory base).
const OPERAND_GPRS: [Gpr; 10] = [
    Gpr::Rax,
    Gpr::Rcx,
    Gpr::Rdx,
    Gpr::Rsi,
    Gpr::Rdi,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
    Gpr::R11,
    Gpr::R12,
];

fn gpr() -> impl Strategy<Value = Gpr> {
    proptest::sample::select(&OPERAND_GPRS[..])
}

fn xmm() -> impl Strategy<Value = Xmm> {
    proptest::sample::select(&Xmm::ALL[..8])
}

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W32), Just(Width::W64)]
}

/// A memory operand guaranteed to land inside the 128-byte scratch buffer
/// (RBX points at its midpoint; packed 16-byte accesses still fit).
fn mem() -> impl Strategy<Value = MemRef> {
    (-64i32..=48).prop_map(|disp| MemRef {
        base: Some(Gpr::Rbx),
        index: None,
        disp,
    })
}

fn int_rm() -> impl Strategy<Value = Operand> {
    prop_oneof![
        gpr().prop_map(Operand::Reg),
        mem().prop_map(Operand::Mem),
        (-1000i64..1000).prop_map(Operand::Imm),
    ]
}

fn xmm_rm() -> impl Strategy<Value = Operand> {
    prop_oneof![xmm().prop_map(Operand::Xmm), mem().prop_map(Operand::Mem),]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Cmp),
    ]
}

fn sse_op() -> impl Strategy<Value = SseOp> {
    prop_oneof![
        Just(SseOp::Addsd),
        Just(SseOp::Subsd),
        Just(SseOp::Mulsd),
        Just(SseOp::Divsd),
        Just(SseOp::Addpd),
        Just(SseOp::Mulpd),
        Just(SseOp::Xorpd),
        Just(SseOp::Unpcklpd),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    proptest::sample::select(&Cond::ALL[..])
}

/// Every non-control, non-faulting instruction shape the subset supports.
fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (width(), gpr(), int_rm()).prop_map(|(w, d, src)| Inst::Mov {
            w,
            dst: Operand::Reg(d),
            src,
        }),
        (width(), mem(), gpr()).prop_map(|(w, m, s)| Inst::Mov {
            w,
            dst: Operand::Mem(m),
            src: Operand::Reg(s),
        }),
        (gpr(), any::<u64>()).prop_map(|(d, imm)| Inst::MovAbs { dst: d, imm }),
        (gpr(), int_rm())
            .prop_filter("movsxd needs r/m", |(_, s)| !matches!(s, Operand::Imm(_)))
            .prop_map(|(d, src)| Inst::Movsxd { dst: d, src }),
        (width(), gpr(), gpr()).prop_map(|(w, d, s)| Inst::Movzx8 {
            w,
            dst: d,
            src: Operand::Reg(s),
        }),
        (gpr(), mem()).prop_map(|(d, m)| Inst::Lea { dst: d, src: m }),
        (gpr(), gpr(), gpr(), 0u8..4, -64i32..=48).prop_map(|(d, b, i, s, disp)| Inst::Lea {
            dst: d,
            src: MemRef {
                base: Some(b),
                index: Some((i, 1 << s)),
                disp,
            },
        }),
        (alu_op(), width(), gpr(), int_rm()).prop_map(|(op, w, d, src)| Inst::Alu {
            op,
            w,
            dst: Operand::Reg(d),
            src,
        }),
        (alu_op(), width(), mem(), gpr()).prop_map(|(op, w, m, s)| Inst::Alu {
            op,
            w,
            dst: Operand::Mem(m),
            src: Operand::Reg(s),
        }),
        (width(), gpr(), gpr()).prop_map(|(w, a, b)| Inst::Test {
            w,
            a: Operand::Reg(a),
            b: Operand::Reg(b),
        }),
        (width(), gpr(), int_rm())
            .prop_filter("imul needs r/m", |(_, _, s)| !matches!(s, Operand::Imm(_)))
            .prop_map(|(w, d, src)| Inst::Imul { w, dst: d, src }),
        (width(), gpr(), gpr(), -1000i32..1000).prop_map(|(w, d, s, imm)| Inst::ImulImm {
            w,
            dst: d,
            src: Operand::Reg(s),
            imm,
        }),
        (
            prop_oneof![
                Just(UnOp::Neg),
                Just(UnOp::Not),
                Just(UnOp::Inc),
                Just(UnOp::Dec)
            ],
            width(),
            gpr()
        )
            .prop_map(|(op, w, d)| Inst::Unary {
                op,
                w,
                dst: Operand::Reg(d),
            }),
        (
            prop_oneof![Just(ShOp::Shl), Just(ShOp::Shr), Just(ShOp::Sar)],
            width(),
            gpr(),
            prop_oneof![(0u8..64).prop_map(ShiftCount::Imm), Just(ShiftCount::Cl)]
        )
            .prop_map(|(op, w, d, count)| Inst::Shift {
                op,
                w,
                dst: Operand::Reg(d),
                count,
            }),
        width().prop_map(|w| Inst::Cqo { w }),
        gpr().prop_map(|r| Inst::Push {
            src: Operand::Reg(r)
        }),
        gpr().prop_map(|r| Inst::Pop {
            dst: Operand::Reg(r)
        }),
        (cond(), gpr()).prop_map(|(c, d)| Inst::Setcc {
            cond: c,
            dst: Operand::Reg(d),
        }),
        (xmm(), xmm_rm()).prop_map(|(d, src)| Inst::MovSd {
            dst: Operand::Xmm(d),
            src,
        }),
        (mem(), xmm()).prop_map(|(m, s)| Inst::MovSd {
            dst: Operand::Mem(m),
            src: Operand::Xmm(s),
        }),
        (xmm(), xmm_rm()).prop_map(|(d, src)| Inst::MovUpd {
            dst: Operand::Xmm(d),
            src,
        }),
        (mem(), xmm()).prop_map(|(m, s)| Inst::MovUpd {
            dst: Operand::Mem(m),
            src: Operand::Xmm(s),
        }),
        (sse_op(), xmm(), xmm_rm()).prop_map(|(op, d, src)| Inst::Sse { op, dst: d, src }),
        (xmm(), xmm_rm()).prop_map(|(a, b)| Inst::Ucomisd { a, b }),
        (width(), xmm(), gpr()).prop_map(|(w, d, s)| Inst::Cvtsi2sd {
            w,
            dst: d,
            src: Operand::Reg(s),
        }),
        (width(), gpr(), xmm()).prop_map(|(w, d, s)| Inst::Cvttsd2si {
            w,
            dst: d,
            src: Operand::Xmm(s),
        }),
        Just(Inst::Nop),
    ]
}

struct MemSnapshot {
    scratch: [u8; 128],
    stack: [u8; 32],
}

struct Fixture {
    img: Image,
    code: u64,
    scratch: u64,
    rsp: u64,
}

impl Fixture {
    fn new(inst: &Inst) -> Option<Fixture> {
        let img = Image::new();
        let scratch = img.alloc_heap(128, 16);
        let code = layout::JIT_BASE;
        let mut buf = Vec::new();
        encode(inst, code, &mut buf).ok()?;
        img.write_bytes(code, &buf).unwrap();
        Some(Fixture {
            img,
            code,
            scratch,
            rsp: layout::STACK_TOP - 0x200,
        })
    }

    fn snapshot(&self) -> MemSnapshot {
        let mut s = MemSnapshot {
            scratch: [0; 128],
            stack: [0; 32],
        };
        self.img.read_bytes(self.scratch, &mut s.scratch).unwrap();
        self.img.read_bytes(self.rsp - 16, &mut s.stack).unwrap();
        s
    }

    fn restore(&self, s: &MemSnapshot) {
        self.img.write_bytes(self.scratch, &s.scratch).unwrap();
        self.img.write_bytes(self.rsp - 16, &s.stack).unwrap();
    }

    /// Install the base register file: random values with RSP and the
    /// memory base RBX pinned to mapped regions.
    fn init(&self, m: &mut Machine, gprs: &[u64; 16], xmms: &[[u64; 2]; 8], flags: Flags) {
        m.cpu.gpr = *gprs;
        m.cpu.set(Gpr::Rsp, self.rsp);
        m.cpu.set(Gpr::Rbx, self.scratch + 64);
        for (i, v) in xmms.iter().enumerate() {
            m.cpu.xmm[i] = *v;
        }
        m.cpu.flags = flags;
        m.cpu.rip = self.code;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    #[test]
    fn defuse_matches_emulator_effects(
        inst in inst(),
        gprs in proptest::array::uniform16(any::<u64>()),
        xmms in proptest::array::uniform8(proptest::array::uniform2(any::<u64>())),
        flag_bits in 0u8..32,
    ) {
        let Some(fx) = Fixture::new(&inst) else {
            // The encoder rejects this operand combination — nothing the
            // rewriter could ever emit, so nothing to cross-check.
            return Ok(());
        };
        let flags = Flags {
            cf: flag_bits & 1 != 0,
            zf: flag_bits & 2 != 0,
            sf: flag_bits & 4 != 0,
            of: flag_bits & 8 != 0,
            pf: flag_bits & 16 != 0,
        };
        let reads = defuse::reads(&inst);
        let writes = defuse::writes(&inst);

        let before_mem = fx.snapshot();
        let mut m = Machine::new();
        fx.init(&mut m, &gprs, &xmms, flags);
        let before_cpu = m.cpu.clone();
        let mut stats = Stats::default();
        if m.step(&fx.img, &mut stats).is_err() {
            // Faulting corner (e.g. an unrepresentable conversion): the
            // def/use contract only covers completed instructions.
            return Ok(());
        }

        // Write soundness: any register the emulator changed is declared.
        for g in Gpr::ALL {
            if m.cpu.get(g) != before_cpu.get(g) {
                prop_assert!(
                    writes.contains(&Loc::Gpr(g)),
                    "{inst}: emulator changed {g:?} but defuse::writes omits it"
                );
            }
        }
        for (i, x) in Xmm::ALL.iter().enumerate() {
            if m.cpu.xmm[i] != before_cpu.xmm[i] {
                prop_assert!(
                    writes.contains(&Loc::Xmm(*x)),
                    "{inst}: emulator changed {x:?} but defuse::writes omits it"
                );
            }
        }
        let after_cpu = m.cpu.clone();
        let after_mem = fx.snapshot();

        // Read soundness: scramble every register outside reads ∪ writes
        // (the declared frame) and re-run; the effect must be identical.
        fx.restore(&before_mem);
        fx.init(&mut m, &gprs, &xmms, flags);
        for g in OPERAND_GPRS {
            if !reads.contains(&Loc::Gpr(g)) && !writes.contains(&Loc::Gpr(g)) {
                m.cpu.set(g, m.cpu.get(g) ^ 0x5A5A_5A5A_5A5A_5A5A);
            }
        }
        for (i, x) in Xmm::ALL.iter().enumerate().take(8) {
            if !reads.contains(&Loc::Xmm(*x)) && !writes.contains(&Loc::Xmm(*x)) {
                m.cpu.xmm[i][0] ^= 0xA5A5_A5A5_A5A5_A5A5;
                m.cpu.xmm[i][1] ^= 0xA5A5_A5A5_A5A5_A5A5;
            }
        }
        prop_assert!(m.step(&fx.img, &mut stats).is_ok());
        prop_assert_eq!(m.cpu.rip, after_cpu.rip);
        prop_assert_eq!(m.cpu.flags, after_cpu.flags,
            "{}: flags depend on a register defuse::reads omits", inst);
        for loc in &writes {
            match loc {
                Loc::Gpr(g) => prop_assert_eq!(
                    m.cpu.get(*g),
                    after_cpu.get(*g),
                    "{}: result in {:?} depends on a register defuse::reads omits",
                    inst,
                    g
                ),
                Loc::Xmm(x) => prop_assert_eq!(
                    m.cpu.xmm[x.number() as usize],
                    after_cpu.xmm[x.number() as usize],
                    "{}: result in {:?} depends on a register defuse::reads omits",
                    inst,
                    x
                ),
            }
        }
        let final_mem = fx.snapshot();
        prop_assert_eq!(
            &final_mem.scratch[..],
            &after_mem.scratch[..],
            "{}: memory effect depends on a register defuse::reads omits",
            inst
        );
        prop_assert_eq!(&final_mem.stack[..], &after_mem.stack[..]);
    }
}
