//! Per-instruction semantic tests: each supported instruction is executed
//! through the full assemble→decode→execute path and checked against
//! hand-computed results, including width, flag and lane edge cases.

use brew_emu::{CallArgs, CpuState, Machine, Stats};
use brew_image::Image;
use brew_x86::encode::encode;
use brew_x86::prelude::*;

/// Assemble a body at the start of the code segment.
fn asm(insts: &[Inst]) -> (Image, u64) {
    let img = Image::new();
    let base = brew_image::layout::CODE_BASE;
    let mut bytes = Vec::new();
    for i in insts {
        let addr = base + bytes.len() as u64;
        encode(i, addr, &mut bytes).unwrap();
    }
    let entry = img.alloc_code(&bytes);
    assert_eq!(entry, base);
    (img, entry)
}

/// Run a body that ends with `ret`; returns the outcome.
fn run(insts: &[Inst], args: CallArgs) -> (u64, f64, CpuState) {
    let (img, entry) = asm(insts);
    let mut m = Machine::new();
    let out = m.call(&img, entry, &args).unwrap();
    (out.ret_int, out.ret_f64, m.cpu.clone())
}

fn rax() -> Operand {
    Operand::Reg(Gpr::Rax)
}

#[test]
fn mov_w32_zero_extends() {
    let (r, _, _) = run(
        &[
            Inst::MovAbs {
                dst: Gpr::Rax,
                imm: 0xFFFF_FFFF_FFFF_FFFF,
            },
            Inst::Mov {
                w: Width::W32,
                dst: rax(),
                src: Operand::Imm(-1),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r, 0xFFFF_FFFF, "32-bit write zero-extends");
}

#[test]
fn movsxd_sign_extends() {
    let (r, _, _) = run(
        &[
            Inst::Mov {
                w: Width::W32,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Imm(-5),
            },
            Inst::Movsxd {
                dst: Gpr::Rax,
                src: Operand::Reg(Gpr::Rcx),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r as i64, -5);
}

#[test]
fn movzx8_takes_low_byte() {
    let (r, _, _) = run(
        &[
            Inst::MovAbs {
                dst: Gpr::Rcx,
                imm: 0x1234_5678_9ABC_DEF0,
            },
            Inst::Movzx8 {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Operand::Reg(Gpr::Rcx),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r, 0xF0);
}

#[test]
fn lea_computes_full_address_math() {
    let (r, _, _) = run(
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Imm(100),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rdx),
                src: Operand::Imm(7),
            },
            Inst::Lea {
                dst: Gpr::Rax,
                src: MemRef::base_index(Gpr::Rcx, Gpr::Rdx, 8, -6),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r, 100 + 7 * 8 - 6);
}

#[test]
fn alu_mem_rmw() {
    // add [rsp-8], rcx (below-rsp scratch is fine in the emulator).
    let (r, _, _) = run(
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
                src: Operand::Imm(40),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Imm(2),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
                src: Operand::Reg(Gpr::Rcx),
            },
            Inst::Mov {
                w: Width::W64,
                dst: rax(),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r, 42);
}

#[test]
fn imul_three_operand() {
    let (r, _, _) = run(
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Imm(-6),
            },
            Inst::ImulImm {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Operand::Reg(Gpr::Rcx),
                imm: -7,
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r, 42);
}

#[test]
fn shifts_and_cl() {
    let (r, _, _) = run(
        &[
            Inst::Mov {
                w: Width::W64,
                dst: rax(),
                src: Operand::Imm(1),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Imm(5),
            },
            Inst::Shift {
                op: ShOp::Shl,
                w: Width::W64,
                dst: rax(),
                count: ShiftCount::Cl,
            },
            Inst::Shift {
                op: ShOp::Shr,
                w: Width::W64,
                dst: rax(),
                count: ShiftCount::Imm(2),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r, 8);
}

#[test]
fn sar_is_arithmetic() {
    let (r, _, _) = run(
        &[
            Inst::Mov {
                w: Width::W64,
                dst: rax(),
                src: Operand::Imm(-64),
            },
            Inst::Shift {
                op: ShOp::Sar,
                w: Width::W64,
                dst: rax(),
                count: ShiftCount::Imm(3),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r as i64, -8);
}

#[test]
fn cqo_idiv_signed() {
    let (r, _, cpu) = run(
        &[
            Inst::Mov {
                w: Width::W64,
                dst: rax(),
                src: Operand::Imm(-43),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Imm(5),
            },
            Inst::Cqo { w: Width::W64 },
            Inst::Idiv {
                w: Width::W64,
                src: Operand::Reg(Gpr::Rcx),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r as i64, -8, "C-style truncation toward zero");
    assert_eq!(
        cpu.get(Gpr::Rdx) as i64,
        -3,
        "remainder keeps dividend sign"
    );
}

#[test]
fn setcc_all_conditions_after_cmp() {
    // cmp 3, 5 then setcc for each condition; compare against Flags::cond.
    let (_, flags) = brew_x86::alu::alu(AluOp::Cmp, Width::W64, 3, 5);
    for cond in Cond::ALL {
        let (r, _, _) = run(
            &[
                Inst::Mov {
                    w: Width::W64,
                    dst: rax(),
                    src: Operand::Imm(3),
                },
                Inst::Alu {
                    op: AluOp::Cmp,
                    w: Width::W64,
                    dst: rax(),
                    src: Operand::Imm(5),
                },
                Inst::Setcc { cond, dst: rax() },
                Inst::Movzx8 {
                    w: Width::W64,
                    dst: Gpr::Rax,
                    src: rax(),
                },
                Inst::Ret,
            ],
            CallArgs::new(),
        );
        assert_eq!(r, flags.cond(cond) as u64, "set{cond}");
    }
}

#[test]
fn jcc_taken_and_not_taken() {
    // if (rdi == 1) return 10; else return 20;
    let base = brew_image::layout::CODE_BASE;
    // cmp rdi,1 (4) + jcc (6) + mov rax,20 (7) + ret (1) => taken target at +18.
    let insts = [
        Inst::Alu {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rdi),
            src: Operand::Imm(1),
        },
        Inst::Jcc {
            cond: Cond::E,
            target: base + 18,
        },
        Inst::Mov {
            w: Width::W64,
            dst: rax(),
            src: Operand::Imm(20),
        },
        Inst::Ret,
        Inst::Mov {
            w: Width::W64,
            dst: rax(),
            src: Operand::Imm(10),
        },
        Inst::Ret,
    ];
    let (r, _, _) = run(&insts, CallArgs::new().int(1));
    assert_eq!(r, 10);
    let (r, _, _) = run(&insts, CallArgs::new().int(2));
    assert_eq!(r, 20);
}

#[test]
fn movsd_load_zeroes_high_lane_reg_copy_does_not() {
    let img = Image::new();
    let d = img.alloc_data_bytes(&3.5f64.to_bits().to_le_bytes(), 8);
    let base = brew_image::layout::CODE_BASE;
    let mut bytes = Vec::new();
    for i in [
        // xmm1 = [?, ?] -> set both lanes via movupd from a 16-byte pattern
        Inst::MovSd {
            dst: Operand::Xmm(Xmm::Xmm1),
            src: Operand::Mem(MemRef::abs(d as i32)),
        },
        Inst::Sse {
            op: SseOp::Unpcklpd,
            dst: Xmm::Xmm1,
            src: Operand::Xmm(Xmm::Xmm1),
        }, // [3.5, 3.5]
        // load into xmm1 again: movsd from memory zeroes the high lane
        Inst::MovSd {
            dst: Operand::Xmm(Xmm::Xmm1),
            src: Operand::Mem(MemRef::abs(d as i32)),
        },
        Inst::Ret,
    ] {
        let addr = base + bytes.len() as u64;
        encode(&i, addr, &mut bytes).unwrap();
    }
    img.alloc_code(&bytes);
    let mut m = Machine::new();
    m.call(&img, base, &CallArgs::new()).unwrap();
    assert_eq!(f64::from_bits(m.cpu.xmm[1][0]), 3.5);
    assert_eq!(m.cpu.xmm[1][1], 0, "movsd from memory zeroes lane 1");
}

#[test]
fn packed_ops_touch_both_lanes() {
    let img = Image::new();
    let a = img.alloc_data_bytes(
        &[1.5f64, 2.5f64]
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect::<Vec<u8>>(),
        16,
    );
    let b = img.alloc_data_bytes(
        &[10.0f64, 20.0f64]
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect::<Vec<u8>>(),
        16,
    );
    let base = brew_image::layout::CODE_BASE;
    let mut bytes = Vec::new();
    for i in [
        Inst::MovUpd {
            dst: Operand::Xmm(Xmm::Xmm0),
            src: Operand::Mem(MemRef::abs(a as i32)),
        },
        Inst::Sse {
            op: SseOp::Addpd,
            dst: Xmm::Xmm0,
            src: Operand::Mem(MemRef::abs(b as i32)),
        },
        Inst::Sse {
            op: SseOp::Mulpd,
            dst: Xmm::Xmm0,
            src: Operand::Xmm(Xmm::Xmm0),
        },
        Inst::Ret,
    ] {
        let addr = base + bytes.len() as u64;
        encode(&i, addr, &mut bytes).unwrap();
    }
    img.alloc_code(&bytes);
    let mut m = Machine::new();
    m.call(&img, base, &CallArgs::new()).unwrap();
    assert_eq!(f64::from_bits(m.cpu.xmm[0][0]), (1.5 + 10.0) * (1.5 + 10.0));
    assert_eq!(f64::from_bits(m.cpu.xmm[0][1]), (2.5 + 20.0) * (2.5 + 20.0));
}

#[test]
fn ucomisd_branches() {
    // return (xmm0 < xmm1) ? 1 : 0 using the seta idiom (swap operands).
    let base = brew_image::layout::CODE_BASE;
    let insts = [
        Inst::Ucomisd {
            a: Xmm::Xmm1,
            b: Operand::Xmm(Xmm::Xmm0),
        },
        Inst::Setcc {
            cond: Cond::A,
            dst: rax(),
        },
        Inst::Movzx8 {
            w: Width::W64,
            dst: Gpr::Rax,
            src: rax(),
        },
        Inst::Ret,
    ];
    let _ = base;
    let (r, _, _) = run(&insts, CallArgs::new().f64(1.0).f64(2.0));
    assert_eq!(r, 1);
    let (r, _, _) = run(&insts, CallArgs::new().f64(2.0).f64(1.0));
    assert_eq!(r, 0);
    let (r, _, _) = run(&insts, CallArgs::new().f64(f64::NAN).f64(1.0));
    assert_eq!(r, 0, "NaN compares false under the seta idiom");
}

#[test]
fn cvt_round_trip() {
    let (_, f, _) = run(
        &[
            Inst::Mov {
                w: Width::W64,
                dst: rax(),
                src: Operand::Imm(-7),
            },
            Inst::Cvtsi2sd {
                w: Width::W64,
                dst: Xmm::Xmm0,
                src: rax(),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(f, -7.0);

    let (r, _, _) = run(
        &[
            Inst::Cvttsd2si {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Operand::Xmm(Xmm::Xmm0),
            },
            Inst::Ret,
        ],
        CallArgs::new().f64(-7.9),
    );
    assert_eq!(r as i64, -7, "truncation toward zero");
}

#[test]
fn push_pop_lifo() {
    let (r, _, _) = run(
        &[
            Inst::Push {
                src: Operand::Imm(1),
            },
            Inst::Push {
                src: Operand::Imm(2),
            },
            Inst::Pop { dst: rax() }, // 2
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rcx),
            }, // 1
            Inst::Shift {
                op: ShOp::Shl,
                w: Width::W64,
                dst: rax(),
                count: ShiftCount::Imm(4),
            },
            Inst::Alu {
                op: AluOp::Or,
                w: Width::W64,
                dst: rax(),
                src: Operand::Reg(Gpr::Rcx),
            },
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r, 0x21);
}

#[test]
fn neg_not_inc_dec() {
    let (r, _, _) = run(
        &[
            Inst::Mov {
                w: Width::W64,
                dst: rax(),
                src: Operand::Imm(10),
            },
            Inst::Unary {
                op: UnOp::Neg,
                w: Width::W64,
                dst: rax(),
            }, // -10
            Inst::Unary {
                op: UnOp::Dec,
                w: Width::W64,
                dst: rax(),
            }, // -11
            Inst::Unary {
                op: UnOp::Not,
                w: Width::W64,
                dst: rax(),
            }, // 10
            Inst::Unary {
                op: UnOp::Inc,
                w: Width::W64,
                dst: rax(),
            }, // 11
            Inst::Ret,
        ],
        CallArgs::new(),
    );
    assert_eq!(r, 11);
}

#[test]
fn test_inst_sets_zf() {
    let base = brew_image::layout::CODE_BASE;
    // test rdi, rdi; je +...: return rdi==0 ? 1 : 0
    // test(3) jcc(6) mov(7) ret(1) -> target at +17
    let insts = [
        Inst::Test {
            w: Width::W64,
            a: Operand::Reg(Gpr::Rdi),
            b: Operand::Reg(Gpr::Rdi),
        },
        Inst::Jcc {
            cond: Cond::E,
            target: base + 17,
        },
        Inst::Mov {
            w: Width::W64,
            dst: rax(),
            src: Operand::Imm(0),
        },
        Inst::Ret,
        Inst::Mov {
            w: Width::W64,
            dst: rax(),
            src: Operand::Imm(1),
        },
        Inst::Ret,
    ];
    let (r, _, _) = run(&insts, CallArgs::new().int(0));
    assert_eq!(r, 1);
    let (r, _, _) = run(&insts, CallArgs::new().int(9));
    assert_eq!(r, 0);
}

#[test]
fn stats_classify_instructions() {
    let (img, entry) = asm(&[
        Inst::Mov {
            w: Width::W64,
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
            src: Operand::Imm(1),
        },
        Inst::Mov {
            w: Width::W64,
            dst: rax(),
            src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
        },
        Inst::Sse {
            op: SseOp::Addsd,
            dst: Xmm::Xmm0,
            src: Operand::Xmm(Xmm::Xmm1),
        },
        Inst::Ret,
    ]);
    let mut m = Machine::new();
    let out = m.call(&img, entry, &CallArgs::new()).unwrap();
    let s: Stats = out.stats;
    assert_eq!(s.insts, 4);
    assert_eq!(s.stores, 1);
    assert_eq!(s.loads, 1);
    assert_eq!(s.fp_ops, 1);
    assert_eq!(s.rets, 1);
}

#[test]
fn nop_does_nothing_but_count() {
    let (img, entry) = asm(&[Inst::Nop, Inst::Nop, Inst::Ret]);
    let mut m = Machine::new();
    let out = m.call(&img, entry, &CallArgs::new()).unwrap();
    assert_eq!(out.stats.insts, 3);
}

#[test]
fn xorpd_zeroes_register() {
    let (_, f, cpu) = run(
        &[
            Inst::Sse {
                op: SseOp::Xorpd,
                dst: Xmm::Xmm0,
                src: Operand::Xmm(Xmm::Xmm0),
            },
            Inst::Ret,
        ],
        CallArgs::new().f64(123.456),
    );
    assert_eq!(f, 0.0);
    assert_eq!(cpu.xmm[0][1], 0);
}
