//! `tables` — regenerate every table/figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p brew-bench --bin tables                  # everything
//! cargo run --release -p brew-bench --bin tables -- e1 e2         # selected
//! cargo run --release -p brew-bench --bin tables -- --exp cache   # one experiment
//! ```
//!
//! Experiment ids follow DESIGN.md §3. Independent experiments run in
//! parallel via `std::thread` scoped threads.

use brew_bench::*;
use brew_core::{RetKind, Rewriter, SpecRequest};
use brew_stencil::{programs, Stencil};
use std::collections::BTreeMap;

fn main() {
    // `--exp` is accepted (and ignored) before any experiment id, so both
    // `tables cache` and `tables --exp cache` spell the same thing.
    let args: Vec<String> = std::env::args().skip(1).filter(|a| a != "--exp").collect();
    let all = [
        "e1", "e2", "e3", "e4", "e5", "a1", "a2", "a3", "a4", "a5", "a6", "p1", "cache", "conc",
        "obs", "life", "verify", "tier", "serve", "prof",
    ];
    let wanted: Vec<&str> = if args.is_empty() {
        all.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    // Run independent experiments in parallel, print in order.
    let results: BTreeMap<usize, String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, exp) in wanted.iter().enumerate() {
            let exp = exp.to_string();
            handles.push((i, scope.spawn(move || run_experiment(&exp))));
        }
        handles
            .into_iter()
            .map(|(i, h)| (i, h.join().expect("experiment thread")))
            .collect()
    });

    for (_, text) in results {
        println!("{text}");
    }
}

fn run_experiment(exp: &str) -> String {
    match exp {
        "e1" => render(
            "E1 — §V.A/§V.B runtimes (paper: generic 100%, manual 37%, specialized 44%, \
             grouped-generic 110%, grouped-specialized 37%, manual-same-CU 24%)",
            &stencil_study(XS, YS, ITERS),
        ),
        "e2" => e2_listing(),
        "e3" => {
            // E3 is the grouped subset of the study; rendered against the
            // grouped-generic baseline for the §V.B framing.
            let rows = stencil_study(XS, YS, ITERS);
            let grouped: Vec<_> = rows
                .into_iter()
                .filter(|r| r.label.contains("grouped") || r.label.contains("manual"))
                .collect();
            render("E3 — §V.B grouped coefficients", &grouped)
        }
        "e4" => render(
            "E4 — whole-sweep rewriting with controlled unrolling (§V.B outlook)",
            &sweep_study(XS, YS, ITERS, &[1, 2, 4, 8]),
        ),
        "e5" => e5_make_dynamic(),
        "a1" => a1_variants(),
        "a2" => render(
            "A2 — optimization-pass ablation",
            &passes_study(XS, YS, ITERS),
        ),
        "a3" => render(
            "A3 — inlining ablation (§IV: 'the most important aspect')",
            &inline_study(XS, YS, ITERS),
        ),
        "a4" => render(
            "A4 — vectorization headroom (§IV future work; hand-scheduled packed target)",
            &vectorize_study(XS, YS, ITERS),
        ),
        "a5" => render("A5 — guarded specialization (§III.D)", &guard_study()),
        "a6" => render(
            "A6 — rewrite cost (cycles column = guest insts traced, insts column = emitted)",
            &rewrite_cost_study(XS, YS),
        ),
        "p1" => render("P1 — PGAS global-to-local translation", &pgas_study(240, 4)),
        "cache" => render_cache(
            "C1 — variant-cache amortization (cached re-requests vs the A6 cold rewrite)",
            &cache_study(XS, YS, 1_000),
        ),
        "conc" => render_conc(
            "C2 — shared manager under concurrency (single-flight + sharded hit path)",
            &conc_study(XS, YS, 2_000, &[1, 2, 4, 8]),
        ),
        "obs" => render_obs(
            "OBS — end-to-end telemetry (registry, self-counting stubs, explain report)",
            &obs_study(XS, YS),
        ),
        "verify" => render_verify(
            "V1 — static variant verifier (translation validation at publish time)",
            &verify_study(),
        ),
        "life" => render_lifecycle(
            "C3 — failure-path amortization & staleness sweeps (negative cache, revalidate)",
            &lifecycle_study(XS, YS, 1_000),
        ),
        "tier" => render_tier(
            "C4 — adaptive tiering under a drifting zipf workload (no operator input)",
            &tier_study(4, 12, 256),
        ),
        "prof" => render_prof(
            "PROF — flight recorder, variant self-time attribution & symbolization",
            &prof_study(XS, YS),
        ),
        "serve" => render_serve(
            "C5 — wait-free serving read path & verified persistence (zipfian torture)",
            &serve_study(4_000, &[1, 2, 4]),
        ),
        other => format!("unknown experiment `{other}`\n"),
    }
}

/// E2: the Figure-6 listing — the generated code of the specialized apply,
/// with the structural properties the paper points out.
fn e2_listing() -> String {
    let mut s = Stencil::new(XS, YS);
    let res = s.specialize_apply().expect("rewrite");
    let lines = brew_core::disasm_result(&s.img, &res);
    let mut out = String::from("## E2 — Figure 6: generated code of the specialized apply\n\n");
    let muls = lines.iter().filter(|l| l.contains("mulsd")).count();
    let branches = lines.iter().filter(|l| l.contains(" j")).count();
    let abs_refs = lines.iter().filter(|l| l.contains("[0x6")).count();
    out.push_str(&format!(
        "{} instructions, {} bytes; {muls} mulsd (5 stencil points), \
         {branches} branches (loop fully unrolled), {abs_refs} absolute data references \
         (coefficients at fixed addresses, as in the paper's i-01)\n\n",
        lines.len(),
        res.code_len
    ));
    for l in &lines {
        out.push_str("    ");
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// E5: the failed `makeDynamic` approach of §V.C.
fn e5_make_dynamic() -> String {
    let img = brew_image::Image::new();
    let prog = brew_minic::compile_into(programs::MAKE_DYNAMIC_PROGRAM, &img).unwrap();
    let s5 = prog.global("s5").unwrap();
    let make_dynamic = prog.func("makeDynamic").unwrap();
    let (xs, ys) = (24i64, 24i64);

    let mut out = String::from("## E5 — §V.C: failed attempts to avoid loop unrolling\n\n");

    // Rewrite both sweep shapes with makeDynamic treated as an opaque call
    // (not inlined => its result is unknown, the paper's intent).
    for (name, label) in [
        (
            "sweep_dynamic",
            "as written (loops start at makeDynamic(1))",
        ),
        (
            "sweep_dynamic_transformed",
            "as gcc emitted (fresh counter from 0)",
        ),
    ] {
        let f = prog.func(name).unwrap();
        let req = SpecRequest::new()
            .unknown_int() // m1
            .unknown_int() // m2
            .known_int(xs)
            .known_int(ys)
            .known_mem(s5..s5 + brew_stencil::S_SIZE)
            .ret(RetKind::Void)
            // the linker-visible barrier
            .func(make_dynamic, |o| o.inline = false)
            .max_trace_insts(8_000_000)
            .max_code_bytes(1 << 22);
        let res = Rewriter::new(&img).rewrite(f, &req);
        match res {
            Ok(r) => out.push_str(&format!(
                "{label:<46}: {:>8} bytes, {:>6} blocks  {}\n",
                r.code_len,
                r.stats.blocks,
                if r.stats.blocks > 4 * (ys as u64) {
                    "(fully unrolled — the transformation defeated makeDynamic)"
                } else {
                    "(unrolling avoided)"
                }
            )),
            Err(e) => out.push_str(&format!("{label:<46}: rewrite failed: {e}\n")),
        }
    }

    // The working fix: the brute-force fresh_unknown configuration.
    let f = prog.func("sweep_dynamic_transformed").unwrap();
    let req = SpecRequest::new()
        .unknown_int()
        .unknown_int()
        .known_int(xs)
        .known_int(ys)
        .known_mem(s5..s5 + brew_stencil::S_SIZE)
        .ret(RetKind::Void)
        .func(make_dynamic, |o| o.inline = false)
        .func(f, |o| o.fresh_unknown = true)
        .max_trace_insts(8_000_000);
    let r = Rewriter::new(&img)
        .rewrite(f, &req)
        .expect("fresh_unknown rewrite");
    out.push_str(&format!(
        "{:<46}: {:>8} bytes, {:>6} blocks  (bounded: values forced unknown; inlined apply still specialized)\n",
        "with fresh_unknown (the working configuration)",
        r.code_len,
        r.stats.blocks
    ));
    out
}

/// A1: variant-threshold sweep — code size vs speed for the whole-sweep
/// rewrite (world-migration in action).
fn a1_variants() -> String {
    let mut out =
        String::from("## A1 — variant threshold & world migration (whole-sweep rewrite)\n\n");
    out.push_str(&format!(
        "{:<12} {:>12} {:>10} {:>12} {:>14}\n",
        "max_variants", "code bytes", "blocks", "migrations", "model cycles"
    ));
    for unroll in [1u32, 2, 4, 8, 16] {
        let mut s = Stencil::new(XS, YS);
        let res = s.specialize_sweep(unroll).unwrap();
        let mut m = brew_emu::Machine::new();
        let st = s
            .run(
                &mut m,
                brew_stencil::Variant::SpecializedSweep(res.entry),
                ITERS,
            )
            .unwrap();
        assert_eq!(s.checksum(ITERS), s.host_checksum(ITERS));
        out.push_str(&format!(
            "{:<12} {:>12} {:>10} {:>12} {:>14}\n",
            unroll, res.code_len, res.stats.blocks, res.stats.migrations, st.cycles
        ));
    }
    out
}
