//! `brew-inspect` — render a flight-recorder dump as an aligned timeline,
//! cross-referenced against a perf map of the JIT'd variants.
//!
//! ```sh
//! brew-inspect <flight.dump> [--map <perf.map>]   # inspect saved artifacts
//! brew-inspect --demo                             # self-contained smoke run
//! ```
//!
//! The dump format is what `FlightDump::render_text` emits (a `# brew
//! flight dump v1 ...` header, then `ts=<ns> tid=<n> kind=<LABEL> k=v ...`
//! lines); the map format is `/tmp/perf-<pid>.map` (`STARTADDR SIZE name`,
//! hex without `0x`). Every hex argument that lands inside a mapped range
//! is symbolized in place, so a timeline line reads
//! `entry=0x900040(brew::0x400000@0x2a#1)` instead of bare hex.
//!
//! `--demo` drives a small dispatcher workload through a real manager,
//! writes the dump and map to temp files, and then inspects them through
//! the same file path a user would — the CI smoke test greps its output.

use std::collections::BTreeMap;
use std::process::exit;

/// One perf-map range: `[start, start+len)` named `name`.
struct MapSym {
    start: u64,
    len: u64,
    name: String,
}

/// One parsed dump line.
struct Event {
    ts_ns: u64,
    tid: u64,
    kind: String,
    /// Remaining `k=v` tokens, in dump order.
    args: Vec<(String, String)>,
}

/// Dump-header accounting (zeros if the header line is absent).
#[derive(Default)]
struct Header {
    recorded: u64,
    dropped: u64,
    torn: u64,
    lapped: u64,
}

fn fail(msg: &str) -> ! {
    eprintln!("brew-inspect: {msg}");
    exit(2);
}

fn main() {
    let mut dump_path: Option<String> = None;
    let mut map_path: Option<String> = None;
    let mut demo = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--demo" => demo = true,
            "--map" => {
                map_path = Some(args.next().unwrap_or_else(|| fail("--map needs a path")));
            }
            "-h" | "--help" => {
                println!("usage: brew-inspect <flight.dump> [--map <perf.map>] | --demo");
                return;
            }
            other if other.starts_with('-') => fail(&format!("unknown flag `{other}`")),
            other => {
                if dump_path.replace(other.to_string()).is_some() {
                    fail("more than one dump path given");
                }
            }
        }
    }

    if demo {
        let (d, m) = demo_artifacts();
        println!("demo artifacts: dump={} map={}\n", d.display(), m.display());
        dump_path = Some(d.display().to_string());
        map_path = Some(m.display().to_string());
    }
    let Some(dump_path) = dump_path else {
        fail("no dump file given (or use --demo); see --help");
    };

    let dump_text = std::fs::read_to_string(&dump_path)
        .unwrap_or_else(|e| fail(&format!("cannot read `{dump_path}`: {e}")));
    let map = match &map_path {
        Some(p) => parse_map(
            &std::fs::read_to_string(p)
                .unwrap_or_else(|e| fail(&format!("cannot read `{p}`: {e}"))),
        ),
        None => Vec::new(),
    };
    let (header, events) = parse_dump(&dump_text);
    print!("{}", render(&header, &events, &map, map_path.is_some()));
}

/// Parse `STARTADDR SIZE name` lines; malformed lines are skipped.
fn parse_map(text: &str) -> Vec<MapSym> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut it = line.split_whitespace();
        let (Some(start), Some(len), Some(name)) = (it.next(), it.next(), it.next()) else {
            continue;
        };
        let (Ok(start), Ok(len)) = (u64::from_str_radix(start, 16), u64::from_str_radix(len, 16))
        else {
            continue;
        };
        out.push(MapSym {
            start,
            len,
            name: name.to_string(),
        });
    }
    out.sort_by_key(|s| s.start);
    out
}

/// Parse the dump text: header accounting plus one [`Event`] per line.
fn parse_dump(text: &str) -> (Header, Vec<Event>) {
    let mut header = Header::default();
    let mut events = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if rest.trim_start().starts_with("brew flight dump") {
                for (k, v) in rest.split_whitespace().filter_map(|t| t.split_once('=')) {
                    let v = v.parse().unwrap_or(0);
                    match k {
                        "recorded" => header.recorded = v,
                        "dropped" => header.dropped = v,
                        "torn" => header.torn = v,
                        "lapped" => header.lapped = v,
                        _ => {}
                    }
                }
            }
            continue;
        }
        let mut ts = None;
        let mut tid = None;
        let mut kind = None;
        let mut args = Vec::new();
        for tok in line.split_whitespace() {
            let Some((k, v)) = tok.split_once('=') else {
                fail(&format!("line {}: bare token `{tok}`", ln + 1));
            };
            match k {
                "ts" => ts = v.parse().ok(),
                "tid" => tid = v.parse().ok(),
                "kind" => kind = Some(v.to_string()),
                _ => args.push((k.to_string(), v.to_string())),
            }
        }
        let (Some(ts_ns), Some(tid), Some(kind)) = (ts, tid, kind) else {
            fail(&format!("line {}: missing ts/tid/kind", ln + 1));
        };
        events.push(Event {
            ts_ns,
            tid,
            kind,
            args,
        });
    }
    (header, events)
}

/// The symbol covering `addr`, rendered `name` or `name+0x<off>`.
fn symbolize(map: &[MapSym], addr: u64) -> Option<String> {
    let i = map.partition_point(|s| s.start <= addr).checked_sub(1)?;
    let s = &map[i];
    if addr >= s.start + s.len {
        return None;
    }
    if addr == s.start {
        Some(s.name.clone())
    } else {
        Some(format!("{}+{:#x}", s.name, addr - s.start))
    }
}

/// Render the timeline and the cross-reference summary.
fn render(header: &Header, events: &[Event], map: &[MapSym], have_map: bool) -> String {
    let t0 = events.first().map(|e| e.ts_ns).unwrap_or(0);
    let mut out = format!(
        "# flight timeline ({} entries, recorded={}, dropped={}, torn={}, lapped={})\n\n",
        events.len(),
        header.recorded,
        header.dropped,
        header.torn,
        header.lapped
    );
    out.push_str(&format!(
        "{:>12} {:>4}  {:<11} details\n",
        "Δt(ms)", "tid", "kind"
    ));

    let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
    let mut hex_total = 0u64;
    let mut hex_resolved = 0u64;
    // Live symbol set reconstructed from SYM_PUB/SYM_RET events.
    let mut live: BTreeMap<u64, u64> = BTreeMap::new(); // entry -> publishes live
    let mut published = 0u64;
    let mut retired = 0u64;

    for e in events {
        *by_kind.entry(&e.kind).or_default() += 1;
        let mut details = String::new();
        for (k, v) in &e.args {
            if !details.is_empty() {
                details.push(' ');
            }
            details.push_str(k);
            details.push('=');
            details.push_str(v);
            if let Some(hex) = v.strip_prefix("0x") {
                if let Ok(addr) = u64::from_str_radix(hex, 16) {
                    hex_total += 1;
                    if let Some(name) = symbolize(map, addr) {
                        hex_resolved += 1;
                        details.push_str(&format!("({name})"));
                    }
                    if e.kind == "SYM_PUB" && k == "entry" {
                        *live.entry(addr).or_default() += 1;
                        published += 1;
                    }
                    if e.kind == "SYM_RET" && k == "entry" {
                        retired += 1;
                        if let Some(n) = live.get_mut(&addr) {
                            *n -= 1;
                            if *n == 0 {
                                live.remove(&addr);
                            }
                        }
                    }
                }
            }
        }
        out.push_str(&format!(
            "{:>12.3} {:>4}  {:<11} {}\n",
            (e.ts_ns - t0) as f64 / 1e6,
            e.tid,
            e.kind,
            details
        ));
    }

    out.push_str("\n## cross-reference\n\nevents by kind:\n");
    let mut kinds: Vec<_> = by_kind.into_iter().collect();
    kinds.sort_by_key(|(k, n)| (std::cmp::Reverse(*n), *k));
    for (k, n) in kinds {
        out.push_str(&format!("  {k:<12} {n:>6}\n"));
    }
    if have_map {
        let matched = live
            .keys()
            .filter(|a| map.iter().any(|s| s.start == **a))
            .count();
        out.push_str(&format!(
            "symbols      : {published} published, {retired} retired, {} live in dump; \
             perf map lists {}; {matched}/{} live publishes match a map line\n",
            live.len(),
            map.len(),
            live.len(),
        ));
        out.push_str(&format!(
            "symbolization: {hex_resolved} of {hex_total} hex arguments resolved against the map\n"
        ));
    } else {
        out.push_str("symbols      : no perf map given (--map) — addresses left bare\n");
    }
    out
}

/// Drive a small dispatcher workload through a real manager and write its
/// flight dump + perf map to temp files for the normal inspect path.
fn demo_artifacts() -> (std::path::PathBuf, std::path::PathBuf) {
    use brew_core::{RetKind, SpecRequest, SpecializationManager};
    use brew_emu::{CallArgs, Machine};

    let src = "int poly(int x, int n) { int r = 1; for (int i = 0; i < n; i++) r *= x; return r; }";
    let img = brew_image::Image::new();
    let prog = brew_minic::compile_into(src, &img).expect("demo compile");
    let poly = prog.func("poly").expect("poly");
    let mgr = SpecializationManager::builder().build();
    for n in [8i64, 4] {
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(n)
            .ret(RetKind::Int);
        mgr.get_or_rewrite(&img, poly, &req).expect("demo rewrite");
    }
    let (entry, page) = mgr
        .build_dispatcher_counting(&img, poly, poly)
        .expect("demo dispatcher");
    let mut prof = mgr.profile_dispatcher(poly, page);
    prof.prime(&img).expect("prime");
    let mut m = Machine::new();
    let mut sum = 0u64;
    for i in 0..40u32 {
        let n: i64 = if i % 3 == 0 { 4 } else { 8 };
        let out = m
            .call(&img, entry, &CallArgs::new().int(2).int(n))
            .expect("demo call");
        sum = sum.wrapping_add(out.ret_int);
        prof.observe(&img, out.stats.cycles).expect("observe");
    }
    std::hint::black_box(sum);
    mgr.tick(&img);

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let dump_path = dir.join(format!("brew-inspect-demo-{pid}.dump"));
    let map_path = dir.join(format!("brew-inspect-demo-{pid}.map"));
    std::fs::write(&dump_path, mgr.flight().dump().render_text()).expect("write dump");
    std::fs::write(&map_path, mgr.symbols().render_perf_map()).expect("write map");
    (dump_path, map_path)
}
