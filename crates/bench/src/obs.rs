//! OBS: end-to-end telemetry over a real run — the always-on metrics
//! registry fed by the specialization manager, guard hit/fall-through
//! rates read back from a self-counting dispatch stub, the overhead of
//! that counting, and the structured rewrite trace rendered as a
//! Figure-6-style explain report.
//!
//! Every export is validated in here (strict JSON check, exposition line
//! shape), so `tables --exp obs` doubles as the observability gate in
//! `scripts/check.sh`.

use crate::Row;
use brew_core::telemetry::metrics::{Ctr, Hst};
use brew_core::{
    explain_report, validate_json, RetKind, Rewriter, SpecRequest, SpecializationManager,
};
use brew_emu::{CallArgs, Machine, Stats};
use brew_stencil::Stencil;

/// Everything `obs_study` produced: the export payloads (pre-validated)
/// plus the numbers the report renders.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Prometheus text exposition of the manager's registry.
    pub prometheus: String,
    /// JSON snapshot of the same registry (validated).
    pub snapshot_json: String,
    /// chrome://tracing span dump of the traced stencil rewrite
    /// (validated).
    pub chrome_json: String,
    /// Number of span events in the chrome trace.
    pub span_events: usize,
    /// Explain report of the traced stencil rewrite (Figure 6 annotated).
    pub explain: String,
    /// Counter-page readback of the poly dispatcher: per-case hits,
    /// fall-through last.
    pub guard_slots: Vec<u64>,
    /// Calls replayed through each dispatcher flavor.
    pub calls: u64,
    /// Model cycles of the replay through the plain stub.
    pub plain: Stats,
    /// Model cycles of the same replay through the counting stub.
    pub counting: Stats,
    /// Manager counters after the stencil run.
    pub stats: brew_core::CacheStats,
}

/// The OBS experiment. Two images are exercised:
///
/// 1. The stencil: `apply` is specialized through a
///    [`SpecializationManager`] (miss), re-requested (hits) and traced
///    once more with span recording for the explain report. The
///    manager's registry picks all of it up with **no sink attached**.
/// 2. A polynomial kernel: three variants are cached, chained into a
///    *self-counting* dispatcher, and a skewed 200-call stream is
///    replayed through both the plain and the counting stub — same
///    stream, so the cycle delta is the counting overhead, and the
///    counter page must sum to exactly the call count.
pub fn obs_study(xs: i64, ys: i64) -> ObsReport {
    // --- stencil through the manager (registry fed, no sink) ---
    let s = Stencil::new(xs, ys);
    let apply = s.prog.func("apply").expect("apply");
    let mgr = SpecializationManager::new();
    mgr.get_or_rewrite(&s.img, apply, &s.apply_request())
        .expect("apply rewrite");
    for _ in 0..3 {
        mgr.get_or_rewrite(&s.img, apply, &s.apply_request())
            .expect("cached apply");
    }

    // --- traced rewrite: span tree + explain report (Figure 6) ---
    let (res, rec) = Rewriter::new(&s.img)
        .rewrite_with_trace(apply, &s.apply_request())
        .expect("traced apply rewrite");
    let explain = explain_report(&s.img, apply, &res, &rec);
    let chrome_json = rec.to_chrome_json();
    validate_json(&chrome_json).expect("chrome trace JSON malformed");

    // --- self-counting dispatch over poly variants ---
    let src = "int poly(int x, int n) { int r = 1; for (int i = 0; i < n; i++) r *= x; return r; }";
    let pimg = brew_image::Image::new();
    let prog = brew_minic::compile_into(src, &pimg).expect("poly compile");
    let poly = prog.func("poly").expect("poly");
    let pmgr = SpecializationManager::new();
    for n in [16i64, 8, 4] {
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(n)
            .ret(RetKind::Int);
        pmgr.get_or_rewrite(&pimg, poly, &req)
            .expect("poly rewrite");
    }
    let plain_entry = pmgr
        .build_dispatcher(&pimg, poly, poly)
        .expect("plain dispatcher");
    let (count_entry, page) = pmgr
        .build_dispatcher_counting(&pimg, poly, poly)
        .expect("counting dispatcher");

    // Skewed stream: mostly the hottest variant, some misses.
    let mut m = Machine::new();
    let (mut plain, mut counting) = (Stats::default(), Stats::default());
    let mut calls = 0u64;
    for i in 0..200u32 {
        let n: i64 = match i % 10 {
            0..=6 => 16, // 70% hottest case
            7 => 8,
            8 => 4,
            _ => 5, // fall-through to the original
        };
        let args = CallArgs::new().int(3).int(n);
        let p = m.call(&pimg, plain_entry, &args).expect("plain call");
        let c = m.call(&pimg, count_entry, &args).expect("counting call");
        assert_eq!(p.ret_int, c.ret_int, "stub flavors diverged at n={n}");
        plain.merge(&p.stats);
        counting.merge(&c.stats);
        calls += 1;
    }
    let guard_slots = page.snapshot(&pimg).expect("counter page readback");
    assert_eq!(
        guard_slots.iter().sum::<u64>(),
        calls,
        "counter page must account for every call"
    );

    // Fold the observed dispatch rates into the stencil manager's
    // registry so the exposition covers guard metrics too.
    let reg = mgr.metrics();
    let fallthrough = *guard_slots.last().unwrap_or(&0);
    reg.count(Ctr::GuardHits, calls - fallthrough);
    reg.count(Ctr::GuardFallthrough, fallthrough);

    // --- exports, validated here so the check.sh gate can trust them ---
    let prometheus = reg.render_prometheus();
    for metric in [
        "brew_cache_hits_total",
        "brew_cache_misses_total",
        "brew_rewrite_trace_ns_bucket",
        "brew_guard_hits_total",
        "brew_guard_fallthrough_total",
    ] {
        assert!(
            prometheus.contains(metric),
            "exposition lost metric {metric}"
        );
    }
    let snapshot_json = reg.snapshot_json();
    validate_json(&snapshot_json).expect("registry snapshot JSON malformed");
    assert_eq!(
        reg.histogram(Hst::TotalNs).count(),
        1,
        "one managed rewrite"
    );

    ObsReport {
        prometheus,
        snapshot_json,
        span_events: rec.events().len(),
        chrome_json,
        explain,
        guard_slots,
        calls,
        plain,
        counting,
        stats: mgr.stats(),
    }
}

/// Render the OBS report: counting overhead, guard rates, the exposition
/// and snapshot payloads, and the explain report.
pub fn render_obs(title: &str, r: &ObsReport) -> String {
    let mut s = format!("## {title}\n\n");
    let d_cyc = r.counting.cycles.saturating_sub(r.plain.cycles);
    let d_inst = r.counting.insts.saturating_sub(r.plain.insts);
    s.push_str(&format!(
        "plain dispatch stub     : {} cycles, {} insts over {} calls\n",
        r.plain.cycles, r.plain.insts, r.calls
    ));
    s.push_str(&format!(
        "counting stub, same mix : {} cycles, {} insts (+{} cycles, +{} insts; \
         +{:.2} cycles/call, {:+.2}% cycles)\n",
        r.counting.cycles,
        r.counting.insts,
        d_cyc,
        d_inst,
        d_cyc as f64 / r.calls.max(1) as f64,
        d_cyc as f64 / r.plain.cycles.max(1) as f64 * 100.0,
    ));
    s.push_str(&format!(
        "guard counter page      : {:?} (fall-through last; sums to {})\n",
        r.guard_slots, r.calls
    ));
    s.push_str(&format!(
        "manager after the run   : {} hits, {} misses, {} bytes resident; \
         span events recorded: {}\n",
        r.stats.hits, r.stats.misses, r.stats.resident_bytes, r.span_events
    ));
    s.push_str(&format!(
        "chrome trace            : {} bytes of valid chrome://tracing JSON\n\n",
        r.chrome_json.len()
    ));
    s.push_str("### Prometheus exposition (validated)\n\n");
    for line in r.prometheus.lines() {
        s.push_str("    ");
        s.push_str(line);
        s.push('\n');
    }
    s.push_str("\n### JSON snapshot (validated)\n\n    ");
    s.push_str(&r.snapshot_json);
    s.push_str("\n\n### Explain report of the specialized stencil apply\n\n");
    for line in r.explain.lines() {
        s.push_str("    ");
        s.push_str(line);
        s.push('\n');
    }
    s
}

/// Rows comparing the overhead of self-counting dispatch for the bench
/// harness: plain stub first (the baseline), counting stub second.
pub fn guard_overhead_rows(r: &ObsReport) -> Vec<Row> {
    vec![
        Row {
            label: format!("plain dispatch stub ({} calls)", r.calls),
            cycles: r.plain.cycles,
            insts: r.plain.insts,
        },
        Row {
            label: "self-counting dispatch stub (same stream)".into(),
            cycles: r.counting.cycles,
            insts: r.counting.insts,
        },
    ]
}
