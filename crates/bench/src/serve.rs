//! C5 — wait-free serving read path + verified variant persistence under
//! a zipfian dispatch torture.
//!
//! Four phases over one kernel family (`madd`, specialized per known trip
//! count, so every key is a distinct straight-line variant):
//!
//! 1. **Cold start**: a gated manager rewrites every key from scratch —
//!    trace, passes, emit, publish-gate verification. Wall-clock.
//! 2. **Checkpoint + warm start**: the resident set is serialized with
//!    [`brew_core::persist`] and re-materialized into a *fresh* process
//!    image through a manager carrying the same publish gate — every
//!    entry re-verified before publication. The headline gate: warm start
//!    must be >= 5x faster than cold.
//! 3. **Serving**: reader threads hammer `request` with a zipfian draw
//!    over the warm keys and record per-dispatch latency (p50/p99). Every
//!    dispatch must come back `Specialized` — a hit through the
//!    epoch-pinned, lock-free shard read path. One extra row runs the
//!    same measurement while a writer thread churns the index
//!    (publish + invalidate on a sibling function) to show the RCU swap
//!    keeps reader tail latency bounded.
//! 4. **Corruption sweep**: every entry of the checkpoint is bit-flipped
//!    in turn (plus a truncation and a version skew) and offered to a
//!    fresh gated manager; each corruption must be rejected with zero
//!    false accepts.

use brew_core::persist;
use brew_core::telemetry::metrics::Ctr;
use brew_core::{Invalidation, RetKind, SpecRequest, SpecializationManager};
use brew_image::Image;
use brew_minic::compile_into;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The serving kernels: `madd` is the served family (one variant per
/// known `b`); `churn` is the sibling the writer thread republishes and
/// invalidates to keep the shard index swapping during measurement.
const PROG: &str = r#"
    int madd(int x, int b) {
        int acc = 0;
        for (int i = 0; i < b; i++) {
            int k = (i * 3 + b) * (i * 5 + 7);
            acc = acc + x + k + i;
        }
        return acc;
    }
    int churn(int x, int b) {
        int acc = 0;
        for (int i = 0; i < b; i++) acc = acc + x * 2 + i;
        return acc;
    }
"#;

/// Distinct served fingerprints (`b = B_OFF+1..=B_OFF+KEYS`).
pub const KEYS: u64 = 24;
/// Trip-count offset: larger known `b` means more traced guest
/// instructions and more optimization-pass work per cold rewrite, the
/// cost the warm start amortizes away.
const B_OFF: i64 = 40;
/// Zipf head size carrying [`SERVE_HEAD_MASS_PCT`] of the draws.
const HOT: usize = 8;
/// Percentage of draws landing in the hot head.
pub const SERVE_HEAD_MASS_PCT: u64 = 90;
/// Churn-function fingerprints the writer cycles through.
const CHURN_KEYS: i64 = 6;

/// One serving measurement row.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Reader threads dispatching concurrently.
    pub threads: u32,
    /// Whether a writer thread churned the shard index during the row.
    pub churn: bool,
    /// Total dispatches measured across all readers.
    pub dispatches: u64,
    /// Median per-dispatch latency in ns (request + fingerprint + hit).
    pub p50_ns: u64,
    /// 99th-percentile per-dispatch latency in ns.
    pub p99_ns: u64,
    /// Whether every dispatch returned a specialized variant (pure hit
    /// path — no miss, no fallback to the original).
    pub all_specialized: bool,
}

/// The C5 report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Variants in the served set.
    pub keys: u64,
    /// Wall-clock ns of the gated cold start (all keys rewritten).
    pub cold_ns: u64,
    /// Checkpoint size in bytes.
    pub checkpoint_bytes: usize,
    /// Wall-clock ns of the gated warm start (decode + re-place +
    /// re-verify + publish all keys into a fresh image).
    pub warm_ns: u64,
    /// Entries the warm start published (must equal `keys`).
    pub warm_published: usize,
    /// One row per serving configuration.
    pub serving: Vec<ServeRow>,
    /// Epoch snapshots published by index writers over the run.
    pub epoch_published: u64,
    /// Epoch snapshots reclaimed after their grace period.
    pub epoch_reclaimed: u64,
    /// Corruption cases offered to the load path.
    pub corrupted_total: usize,
    /// Corruption cases rejected (typed error, variant not published).
    pub corrupted_rejected: usize,
    /// Corrupted entries that loaded anyway — must be zero.
    pub false_accepts: usize,
}

impl ServeReport {
    /// cold / warm wall-clock ratio.
    pub fn warm_speedup(&self) -> f64 {
        self.cold_ns as f64 / self.warm_ns.max(1) as f64
    }

    /// The three gates the CI stage greps for.
    pub fn gates_hold(&self) -> bool {
        self.warm_speedup() >= 5.0
            && self.serving.iter().all(|r| r.all_specialized)
            && self.false_accepts == 0
            && self.corrupted_rejected == self.corrupted_total
    }
}

/// Deterministic 64-bit mixer (splitmix64) — the study's only RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw one served `b`: [`SERVE_HEAD_MASS_PCT`]% of draws hit the
/// [`HOT`]-value zipf head (rank r weighted 1/(r+1)), the rest spread
/// uniformly over the tail.
fn draw(rng: &mut u64) -> i64 {
    if splitmix64(rng) % 100 < SERVE_HEAD_MASS_PCT {
        let total: u64 = (1..=HOT as u64).map(|r| 1_000_000 / r).sum();
        let mut pick = splitmix64(rng) % total;
        for r in 0..HOT {
            let w = 1_000_000 / (r as u64 + 1);
            if pick < w {
                return B_OFF + r as i64 + 1;
            }
            pick -= w;
        }
        B_OFF + HOT as i64
    } else {
        B_OFF + HOT as i64 + 1 + (splitmix64(rng) % (KEYS - HOT as u64)) as i64
    }
}

fn req_of(b: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(b)
        .ret(RetKind::Int)
}

/// Fresh image + compiled kernels. The compile is deterministic, so every
/// "process restart" lands functions and JIT regions at identical
/// addresses — the property the placement re-reservation relies on.
fn boot() -> (Image, u64, u64) {
    let img = Image::new();
    let prog = compile_into(PROG, &img).expect("compile serving kernels");
    let madd = prog.func("madd").expect("madd symbol");
    let churn = prog.func("churn").expect("churn symbol");
    (img, madd, churn)
}

fn gated_manager() -> SpecializationManager {
    SpecializationManager::builder()
        .publish_gate(brew_verify::publish_gate())
        .build()
}

/// One serving row: `threads` readers each measure `draws` dispatch
/// latencies through the hit path; with `churn`, a writer concurrently
/// publishes and invalidates `churn`-function variants so every reader
/// lookup races index swaps and epoch reclamation.
fn serving_row(
    img: &Image,
    mgr: &SpecializationManager,
    madd: u64,
    churn_fn: Option<u64>,
    threads: u32,
    draws: u32,
    seed: u64,
) -> ServeRow {
    let stop = AtomicBool::new(false);
    let mut lat: Vec<u64> = Vec::with_capacity(threads as usize * draws as usize);
    let mut all_specialized = true;
    std::thread::scope(|scope| {
        if let Some(cf) = churn_fn {
            let (stop, mgr) = (&stop, &mgr);
            scope.spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let b = B_OFF + KEYS as i64 + 1 + i % CHURN_KEYS;
                    let _ = mgr.get_or_rewrite(img, cf, &req_of(b));
                    mgr.apply_invalidation(Invalidation::Func(cf));
                    i += 1;
                }
            });
        }
        let readers: Vec<_> = (0..threads)
            .map(|tid| {
                let mgr = &mgr;
                scope.spawn(move || {
                    let mut rng = seed ^ (0xC5 + u64::from(tid)).wrapping_mul(0x9E37);
                    let mut lats = Vec::with_capacity(draws as usize);
                    let mut pure = true;
                    for _ in 0..draws {
                        let req = req_of(draw(&mut rng));
                        let t = Instant::now();
                        let d = mgr.request(img, madd, &req).expect("dispatch");
                        lats.push(t.elapsed().as_nanos() as u64);
                        pure &= d.is_specialized();
                    }
                    (lats, pure)
                })
            })
            .collect();
        for r in readers {
            let (lats, pure) = r.join().expect("reader");
            lat.extend(lats);
            all_specialized &= pure;
        }
        stop.store(true, Ordering::Relaxed);
    });
    lat.sort_unstable();
    let pct = |p: usize| lat[(lat.len() - 1) * p / 100];
    ServeRow {
        threads,
        churn: churn_fn.is_some(),
        dispatches: lat.len() as u64,
        p50_ns: pct(50),
        p99_ns: pct(99),
        all_specialized,
    }
}

/// C5: cold start, checkpoint, gated warm start, zipfian serving torture,
/// and the corruption sweep. `draws_per_thread` scales the serving rows;
/// `thread_counts` picks the reader parallelism (the last count is
/// repeated with writer churn).
pub fn serve_study(draws_per_thread: u32, thread_counts: &[u32]) -> ServeReport {
    // Both wall-clock phases take the minimum over a few fresh attempts:
    // a single descheduling or page-fault burst otherwise dominates a
    // millisecond-scale measurement, and the min is the honest estimate
    // of what the work itself costs.
    const ATTEMPTS: usize = 3;

    // Phase 1 — cold: every key pays trace + passes + emit + gate.
    let mut cold_ns = u64::MAX;
    let mut checkpoint: Option<(Image, u64, Vec<u8>)> = None;
    for _ in 0..ATTEMPTS {
        let (img, madd, _) = boot();
        let mgr = gated_manager();
        let t0 = Instant::now();
        for b in B_OFF + 1..=B_OFF + KEYS as i64 {
            mgr.get_or_rewrite(&img, madd, &req_of(b))
                .expect("cold rewrite");
        }
        cold_ns = cold_ns.min((t0.elapsed().as_nanos() as u64).max(1));
        if checkpoint.is_none() {
            let bytes = mgr.save_variant_bytes(&img);
            checkpoint = Some((img, madd, bytes));
        }
    }
    let (_cold_img, madd, bytes) = checkpoint.expect("one cold attempt ran");

    // Phase 2 — warm start the checkpoint into a fresh "process".
    let mut warm_ns = u64::MAX;
    let mut warm: Option<(Image, u64, u64, SpecializationManager, usize)> = None;
    for _ in 0..ATTEMPTS {
        let (img2, madd2, churn2) = boot();
        assert_eq!(madd, madd2, "deterministic layout across restarts");
        let mgr2 = gated_manager();
        let t1 = Instant::now();
        let report = mgr2
            .load_variant_bytes(&img2, &bytes)
            .expect("warm start decodes");
        warm_ns = warm_ns.min((t1.elapsed().as_nanos() as u64).max(1));
        assert_eq!(report.published, KEYS as usize, "all keys republished");
        if warm.is_none() {
            warm = Some((img2, madd2, churn2, mgr2, report.published));
        }
    }
    let (img2, madd2, churn2, mgr2, warm_published) = warm.expect("one warm attempt ran");

    // Every republished variant must compute the original semantics —
    // call each one through the emulator against the host ground truth.
    let mut m = brew_emu::Machine::new();
    for b in B_OFF + 1..=B_OFF + KEYS as i64 {
        let d = mgr2
            .request(&img2, madd2, &req_of(b))
            .expect("warm dispatch");
        assert!(d.is_specialized(), "warm key must be resident");
        for x in [0i64, 3, -7] {
            let out = m
                .call(&img2, d.entry(), &brew_emu::CallArgs::new().int(x).int(b))
                .expect("warm variant call");
            let host: i64 = (0..b).map(|i| x + (i * 3 + b) * (i * 5 + 7) + i).sum();
            assert_eq!(
                out.ret_int as i64, host,
                "madd({x},{b}) diverged after warm start"
            );
        }
    }

    // Phase 3 — serving rows; last thread count repeats with churn.
    let mut serving = Vec::new();
    let mut seed = 0xC5_5EED_u64;
    for &threads in thread_counts {
        let s = splitmix64(&mut seed);
        serving.push(serving_row(
            &img2,
            &mgr2,
            madd2,
            None,
            threads,
            draws_per_thread,
            s,
        ));
    }
    if let Some(&max_threads) = thread_counts.last() {
        let s = splitmix64(&mut seed);
        serving.push(serving_row(
            &img2,
            &mgr2,
            madd2,
            Some(churn2),
            max_threads,
            draws_per_thread,
            s,
        ));
    }
    let m = mgr2.metrics();
    let epoch_published = m.counter(Ctr::EpochPublished).get();
    let epoch_reclaimed = m.counter(Ctr::EpochReclaimed).get();

    // Phase 4 — corruption sweep: flip one code byte per entry, plus a
    // truncation and a version skew; every case must be rejected.
    let spans = persist::entry_code_spans(&bytes).expect("spans of a clean checkpoint");
    let mut corrupted_total = 0usize;
    let mut corrupted_rejected = 0usize;
    let mut false_accepts = 0usize;
    for span in &spans {
        let mut evil = bytes.clone();
        evil[span.start] ^= 0x40;
        corrupted_total += 1;
        let (img3, _, _) = boot();
        let mgr3 = gated_manager();
        match mgr3.load_variant_bytes(&img3, &evil) {
            Ok(r) => {
                if r.published == KEYS as usize - 1 && r.rejected.len() == 1 {
                    corrupted_rejected += 1;
                } else if r.published > KEYS as usize - 1 {
                    false_accepts += 1;
                }
            }
            // A whole-file rejection also never publishes the bad entry.
            Err(_) => corrupted_rejected += 1,
        }
    }
    for evil in [bytes[..bytes.len() / 2].to_vec(), {
        let mut b = bytes.clone();
        b[8] = b[8].wrapping_add(1); // format-version byte
        b
    }] {
        corrupted_total += 1;
        let (img3, _, _) = boot();
        let mgr3 = gated_manager();
        match mgr3.load_variant_bytes(&img3, &evil) {
            Err(_) => corrupted_rejected += 1,
            Ok(r) if r.published == 0 => corrupted_rejected += 1,
            Ok(_) => false_accepts += 1,
        }
    }

    ServeReport {
        keys: KEYS,
        cold_ns,
        checkpoint_bytes: bytes.len(),
        warm_ns,
        warm_published,
        serving,
        epoch_published,
        epoch_reclaimed,
        corrupted_total,
        corrupted_rejected,
        false_accepts,
    }
}

/// Render the C5 serving report (the `serve` CI stage greps the three
/// gate lines).
pub fn render_serve(title: &str, r: &ServeReport) -> String {
    let mut s = format!("## {title}\n\n");
    s.push_str(&format!(
        "cold start (gated)      : {:>10} ns   ({} variants rewritten + verified; {} ns/variant)\n",
        r.cold_ns,
        r.keys,
        r.cold_ns / r.keys.max(1),
    ));
    s.push_str(&format!(
        "checkpoint              : {:>10} bytes ({} variants, code + request + snapshot + checksum)\n",
        r.checkpoint_bytes, r.keys,
    ));
    s.push_str(&format!(
        "warm start (gated)      : {:>10} ns   ({} republished through the same gate; {:.1}x faster)\n",
        r.warm_ns,
        r.warm_published,
        r.warm_speedup(),
    ));
    s.push_str(&format!(
        "warm start >= 5x faster than cold: {}\n\n",
        if r.warm_speedup() >= 5.0 { "yes" } else { "NO" },
    ));
    s.push_str(&format!(
        "serving: zipf draws over {} keys ({}-value head, {}% of draws)\n",
        r.keys, HOT, SERVE_HEAD_MASS_PCT,
    ));
    s.push_str("threads  writer-churn  dispatches   p50 ns   p99 ns   pure-hit-path\n");
    for row in &r.serving {
        s.push_str(&format!(
            "{:>7}  {:>12}  {:>10}  {:>7}  {:>7}   {}\n",
            row.threads,
            if row.churn { "yes" } else { "no" },
            row.dispatches,
            row.p50_ns,
            row.p99_ns,
            if row.all_specialized { "yes" } else { "NO" },
        ));
    }
    let pure = r.serving.iter().all(|row| row.all_specialized);
    s.push_str(&format!(
        "all serving dispatches hit the lock-free read path: {}\n",
        if pure { "yes" } else { "NO" },
    ));
    s.push_str(&format!(
        "epoch lifecycle         : {} index snapshots published, {} reclaimed after grace\n\n",
        r.epoch_published, r.epoch_reclaimed,
    ));
    s.push_str(&format!(
        "corruption sweep        : {}/{} rejected, {} false accepts\n",
        r.corrupted_rejected, r.corrupted_total, r.false_accepts,
    ));
    s
}
