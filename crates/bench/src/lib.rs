//! # brew-bench — shared experiment drivers
//!
//! Each experiment of DESIGN.md §3 is a function here, used both by the
//! Criterion benches (wall-clock of the emulated runs) and by the `tables`
//! binary (model-cycle tables, the unit the paper's ratios are compared
//! against — see EXPERIMENTS.md).

#![warn(missing_docs)]

mod obs;
mod prof;
mod serve;
mod tier;
mod verify;

pub use obs::{guard_overhead_rows, obs_study, render_obs, ObsReport};
pub use prof::{prof_study, render_prof, ProfReport, SelfRow, FLIGHT_OVERHEAD_GATE_NS};
pub use serve::{render_serve, serve_study, ServeReport, ServeRow, KEYS, SERVE_HEAD_MASS_PCT};
pub use tier::{render_tier, tier_study, TierPhase, TierReport, FPS, HEAD_MASS_PCT, HOT};
pub use verify::{render_verify, verify_study, CleanRow, KindRow, VerifyV1Report};

use brew_core::PassConfig;
use brew_emu::{Machine, Stats};
use brew_pgas::PgasArray;
use brew_stencil::{Stencil, Variant};

/// Default experiment grid (the paper uses 500²×1000 wall-clock; the
/// emulated substrate uses a smaller grid — ratios are the result).
pub const XS: i64 = 64;
/// Grid height.
pub const YS: i64 = 64;
/// Sweeps per measurement.
pub const ITERS: u32 = 2;

/// One measured row: label, cycles, instructions.
#[derive(Debug, Clone)]
pub struct Row {
    /// Variant name.
    pub label: String,
    /// Model cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub insts: u64,
}

fn row(label: &str, s: Stats) -> Row {
    Row {
        label: label.to_string(),
        cycles: s.cycles,
        insts: s.insts,
    }
}

/// E1+E3: the §V.A/§V.B study. Returns rows in paper order:
/// generic, manual(fn-ptr), specialized, grouped-generic,
/// grouped-specialized, manual-same-CU.
pub fn stencil_study(xs: i64, ys: i64, iters: u32) -> Vec<Row> {
    let mut m = Machine::new();
    let mut out = Vec::new();
    let host = Stencil::new(xs, ys).host_checksum(iters);

    let mut s = Stencil::new(xs, ys);
    let st = s.run(&mut m, Variant::Generic, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    out.push(row("generic apply (Fig. 4)", st));

    let mut s = Stencil::new(xs, ys);
    let st = s.run(&mut m, Variant::Manual, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    out.push(row("manual stencil (fn ptr)", st));

    let mut s = Stencil::new(xs, ys);
    let spec = s.specialize_apply().unwrap();
    let st = s.run_with_apply(&mut m, spec.entry, false, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    out.push(row("BREW-specialized apply", st));

    let mut s = Stencil::new(xs, ys);
    let st = s.run(&mut m, Variant::Grouped, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    out.push(row("grouped generic", st));

    let mut s = Stencil::new(xs, ys);
    let spec = s.specialize_apply_grouped().unwrap();
    let st = s.run_with_apply(&mut m, spec.entry, true, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    out.push(row("BREW-specialized grouped", st));

    let mut s = Stencil::new(xs, ys);
    let st = s.run(&mut m, Variant::ManualInline, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    out.push(row("manual, same comp. unit", st));

    out
}

/// E4: whole-sweep rewriting at different controlled-unrolling factors.
pub fn sweep_study(xs: i64, ys: i64, iters: u32, unrolls: &[u32]) -> Vec<Row> {
    let mut m = Machine::new();
    let host = Stencil::new(xs, ys).host_checksum(iters);
    let mut out = Vec::new();
    for &u in unrolls {
        let mut s = Stencil::new(xs, ys);
        let res = s.specialize_sweep(u).unwrap();
        let st = s
            .run(&mut m, Variant::SpecializedSweep(res.entry), iters)
            .unwrap();
        assert_eq!(s.checksum(iters), host);
        out.push(row(&format!("sweep rewrite, unroll={u}"), st));
    }
    out
}

/// A2: specialized `apply` with passes on/off.
pub fn passes_study(xs: i64, ys: i64, iters: u32) -> Vec<Row> {
    let mut m = Machine::new();
    let host = Stencil::new(xs, ys).host_checksum(iters);
    let mut out = Vec::new();
    let configs: [(&str, PassConfig); 7] = [
        ("no passes (paper prototype)", PassConfig::none()),
        (
            "+ peephole",
            PassConfig {
                dead_store_elim: false,
                redundant_load_elim: false,
                peephole: true,
                slot_promotion: false,
                frame_compression: false,
                regalloc: false,
            },
        ),
        (
            "+ dead-store elim",
            PassConfig {
                dead_store_elim: true,
                redundant_load_elim: false,
                peephole: true,
                slot_promotion: false,
                frame_compression: false,
                regalloc: false,
            },
        ),
        (
            "+ redundant-load elim",
            PassConfig {
                dead_store_elim: true,
                redundant_load_elim: true,
                peephole: true,
                slot_promotion: false,
                frame_compression: false,
                regalloc: false,
            },
        ),
        (
            "+ slot promotion",
            PassConfig {
                dead_store_elim: true,
                redundant_load_elim: true,
                peephole: true,
                slot_promotion: true,
                frame_compression: false,
                regalloc: false,
            },
        ),
        (
            "+ frame compression",
            PassConfig {
                regalloc: false,
                ..PassConfig::default()
            },
        ),
        ("all passes (+ register allocation)", PassConfig::default()),
    ];
    for (label, pc) in configs {
        let mut s = Stencil::new(xs, ys);
        let res = s.specialize_apply_with_passes(&pc).unwrap();
        let st = s.run_with_apply(&mut m, res.entry, false, iters).unwrap();
        assert_eq!(s.checksum(iters), host);
        out.push(Row {
            label: format!("{label} ({} bytes)", res.code_len),
            cycles: st.cycles,
            insts: st.insts,
        });
    }
    out
}

/// A3: inlining on vs off for the specialized apply.
pub fn inline_study(xs: i64, ys: i64, iters: u32) -> Vec<Row> {
    use brew_core::{RetKind, Rewriter, SpecRequest};
    let mut m = Machine::new();
    let host = Stencil::new(xs, ys).host_checksum(iters);
    let mut out = Vec::new();
    for inline in [true, false] {
        let mut s = Stencil::new(xs, ys);
        // Specialize the *sweep-ptr3 caller's* callee: rewrite apply while
        // allowing / forbidding inlining of nothing (apply is a leaf), so
        // instead rewrite sweep_generic with apply inline on/off.
        let sweep = s.prog.func("sweep_generic").unwrap();
        let apply = s.prog.func("apply").unwrap();
        let s5 = s.s5();
        let req = SpecRequest::new()
            .unknown_int() // m1
            .unknown_int() // m2
            .known_int(xs)
            .known_int(ys)
            .known_mem(s5..s5 + brew_stencil::S_SIZE)
            .ret(RetKind::Void)
            .func(sweep, |o| {
                o.branch_unknown = true;
                o.max_variants = 2;
            })
            .func(apply, |o| o.inline = inline)
            .max_trace_insts(16_000_000)
            .max_code_bytes(1 << 22);
        let res = Rewriter::new(&s.img).rewrite(sweep, &req).unwrap();
        let st = s
            .run(&mut m, Variant::SpecializedSweep(res.entry), iters)
            .unwrap();
        assert_eq!(s.checksum(iters), host);
        out.push(row(
            if inline {
                "sweep rewrite, apply inlined"
            } else {
                "sweep rewrite, call kept"
            },
            st,
        ));
    }
    out
}

/// A5: guarded dispatch — hot-path hit-rate sweep. Each hit rate compares
/// the guarded entry point and the plain original *on the same call
/// stream*, so the guard's dispatch overhead and the specialization's win
/// are both visible.
pub fn guard_study() -> Vec<Row> {
    use brew_core::{RetKind, Rewriter, SpecRequest};
    use brew_emu::CallArgs;
    let src = "int poly(int x, int n) { int r = 1; for (int i = 0; i < n; i++) r *= x; return r; }";
    let mut out = Vec::new();
    for hot_pct in [100u32, 90, 50, 0] {
        let img = brew_image::Image::new();
        let prog = brew_minic::compile_into(src, &img).unwrap();
        let poly = prog.func("poly").unwrap();
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(16)
            .ret(RetKind::Int);
        let mut rw = Rewriter::new(&img);
        let spec = rw.rewrite(poly, &req).unwrap();
        let guard = rw.guard(1, 16, spec.entry, poly).unwrap();
        let mut m = Machine::new();
        let (mut guarded, mut original) = (Stats::default(), Stats::default());
        for i in 0..100u32 {
            let n = if i % 100 < hot_pct { 16 } else { 15 };
            let args = CallArgs::new().int(3).int(n as i64);
            let g = m.call(&img, guard, &args).unwrap();
            let o = m.call(&img, poly, &args).unwrap();
            assert_eq!(g.ret_int, o.ret_int);
            guarded.merge(&g.stats);
            original.merge(&o.stats);
        }
        out.push(row(&format!("guarded poly, {hot_pct}% hot"), guarded));
        out.push(row(
            &format!("original poly, same stream ({hot_pct}%)"),
            original,
        ));
    }
    out
}

/// A4: packed-execution headroom — what the paper's planned greedy
/// vectorization pass (§IV) would unlock over the scalar variants.
pub fn vectorize_study(xs: i64, ys: i64, iters: u32) -> Vec<Row> {
    use brew_emu::CallArgs;
    let mut m = Machine::new();
    let host = Stencil::new(xs, ys).host_checksum(iters);
    let mut out = Vec::new();

    let mut s = Stencil::new(xs, ys);
    let res = s.specialize_sweep(4).unwrap();
    let st = s
        .run(&mut m, Variant::SpecializedSweep(res.entry), iters)
        .unwrap();
    assert_eq!(s.checksum(iters), host);
    out.push(row("BREW sweep rewrite (scalar, unroll=4)", st));

    let mut s = Stencil::new(xs, ys);
    let st = s.run(&mut m, Variant::ManualInline, iters).unwrap();
    out.push(row("manual scalar sweep (same CU)", st));

    for (label, packed) in [
        ("hand-scheduled scalar sweep", false),
        ("hand-scheduled packed sweep (the pass target)", true),
    ] {
        let s = Stencil::new(xs, ys);
        let f = if packed {
            brew_stencil::simd::build_packed_sweep(&s.img, xs, ys)
        } else {
            brew_stencil::simd::build_scalar_handtuned_sweep(&s.img, xs, ys)
        };
        let mut total = Stats::default();
        let (mut src, mut dst) = (s.m1, s.m2);
        for _ in 0..iters {
            let o = m
                .call(&s.img, f, &CallArgs::new().ptr(src).ptr(dst))
                .unwrap();
            total.merge(&o.stats);
            std::mem::swap(&mut src, &mut dst);
        }
        assert_eq!(s.checksum(iters), host);
        out.push(row(label, total));
    }
    out
}

/// A6: the cost of rewriting itself (traced guest instructions and
/// generated bytes — amortization data).
pub fn rewrite_cost_study(xs: i64, ys: i64) -> Vec<Row> {
    let mut out = Vec::new();
    let mut s = Stencil::new(xs, ys);
    let res = s.specialize_apply().unwrap();
    out.push(Row {
        label: format!("rewrite apply: {} bytes out", res.code_len),
        cycles: res.stats.traced,
        insts: res.stats.emitted,
    });
    let mut s = Stencil::new(xs, ys);
    let res = s.specialize_apply_grouped().unwrap();
    out.push(Row {
        label: format!("rewrite grouped: {} bytes out", res.code_len),
        cycles: res.stats.traced,
        insts: res.stats.emitted,
    });
    let mut s = Stencil::new(xs, ys);
    let res = s.specialize_sweep(4).unwrap();
    out.push(Row {
        label: format!("rewrite sweep(u=4): {} bytes out", res.code_len),
        cycles: res.stats.traced,
        insts: res.stats.emitted,
    });
    out
}

/// C1 numbers: cost of a cold specialization request (a full rewrite, the
/// A6 baseline) vs a cached re-request through the variant cache.
#[derive(Debug, Clone)]
pub struct CacheReport {
    /// Wall-clock ns of the initial (miss) request — decode, trace,
    /// passes, layout, encode.
    pub cold_ns: u64,
    /// Per-phase breakdown of that cold rewrite.
    pub cold_stats: brew_core::RewriteStats,
    /// Average wall-clock ns of one cached re-request (a hash lookup).
    pub cached_avg_ns: u64,
    /// Number of re-requests replayed.
    pub rerequests: u32,
    /// Manager counters at the end of the replay.
    pub stats: brew_core::CacheStats,
}

/// C1: variant-cache amortization. Replays a skewed stream of
/// specialization requests — the hot request re-arrives 7 of 8 times, a
/// second request shape (same function, passes off, distinct fingerprint)
/// takes the rest — through a [`brew_core::SpecializationManager`] and
/// measures cold-vs-cached request cost.
pub fn cache_study(xs: i64, ys: i64, rerequests: u32) -> CacheReport {
    use brew_core::SpecializationManager;
    use std::time::Instant;

    let s = Stencil::new(xs, ys);
    let func = s.prog.func("apply").unwrap();
    let hot = s.apply_request();
    let alt = s.apply_request().passes(PassConfig::none());

    let mgr = SpecializationManager::new();
    let t0 = Instant::now();
    let first = mgr.get_or_rewrite(&s.img, func, &hot).unwrap();
    let cold_ns = (t0.elapsed().as_nanos() as u64).max(1);
    let cold_stats = first.stats;
    mgr.get_or_rewrite(&s.img, func, &alt).unwrap();

    let t1 = Instant::now();
    for i in 0..rerequests {
        let req = if i % 8 == 7 { &alt } else { &hot };
        let v = mgr.get_or_rewrite(&s.img, func, req).unwrap();
        std::hint::black_box(v.entry);
    }
    let cached_avg_ns = (t1.elapsed().as_nanos() as u64) / u64::from(rerequests.max(1));

    CacheReport {
        cold_ns,
        cold_stats,
        cached_avg_ns,
        rerequests,
        stats: mgr.stats(),
    }
}

/// Render the C1 amortization report.
pub fn render_cache(title: &str, r: &CacheReport) -> String {
    let pct = r.cached_avg_ns as f64 / r.cold_ns as f64 * 100.0;
    let mut s = format!("## {title}\n\n");
    s.push_str(&format!(
        "cold rewrite (miss)     : {:>10} ns   ({}us trace + {}us passes + {}us emit; \
         {} guest insts traced)\n",
        r.cold_ns,
        r.cold_stats.trace_ns / 1_000,
        r.cold_stats.pass_ns / 1_000,
        r.cold_stats.emit_ns / 1_000,
        r.cold_stats.traced,
    ));
    s.push_str(&format!(
        "cached re-request (avg) : {:>10} ns   ({pct:.2}% of a cold rewrite, \
         over {} re-requests)\n",
        r.cached_avg_ns, r.rerequests,
    ));
    s.push_str(&format!(
        "cache counters          : {} hits, {} misses, {} evictions, {} bytes resident\n",
        r.stats.hits, r.stats.misses, r.stats.evictions, r.stats.resident_bytes,
    ));
    s.push_str(&format!(
        "traced guest insts      : {} total — flat across every cached re-request\n",
        r.stats.traced_total,
    ));
    s
}

/// C3 numbers: cost of rediscovering a failing specialization (a full
/// doomed trace) vs a negative-cache denial, plus the cost of a staleness
/// sweep.
#[derive(Debug, Clone)]
pub struct LifecycleReport {
    /// Wall-clock ns of the initial failing request — the rewrite runs
    /// until the trace budget blows.
    pub cold_fail_ns: u64,
    /// Average wall-clock ns of one denied re-request (a shard lookup).
    pub denied_avg_ns: u64,
    /// Denied re-requests replayed.
    pub denials: u32,
    /// Wall-clock ns of one `revalidate` sweep over the resident variants
    /// (all snapshots re-hashed, none stale).
    pub revalidate_clean_ns: u64,
    /// Variants resident during the sweep.
    pub resident: usize,
    /// Variants dropped after one folded byte was mutated.
    pub dropped_after_mutation: usize,
    /// Manager counters at the end.
    pub stats: brew_core::CacheStats,
}

/// C3: failure-path amortization and staleness sweeps. A doomed request
/// (code-size budget too small for the specialized apply) pays the full
/// pipeline once, then is replayed through the negative cache;
/// `revalidate` is timed over the healthy variants, and one byte of the
/// folded descriptor is mutated to show the sweep dropping exactly the
/// dependent variants.
pub fn lifecycle_study(xs: i64, ys: i64, denials: u32) -> LifecycleReport {
    use brew_core::{Invalidation, NegativePolicy, SpecializationManager};
    use std::time::Instant;

    let s = Stencil::new(xs, ys);
    let func = s.prog.func("apply").unwrap();
    let hot = s.apply_request();
    // Doomed at the *end* of the pipeline: the full trace, passes and
    // encoding all run before the code-size budget rejects the result —
    // the expensive way a specialization attempt actually fails.
    let doomed = s.apply_request().max_code_bytes(16);

    let mgr = SpecializationManager::builder()
        .negative_policy(NegativePolicy {
            base_backoff: u64::MAX / 2,
            attempt_cap: 10,
        })
        .build();
    // Two healthy variants for the sweep to re-hash.
    mgr.get_or_rewrite(&s.img, func, &hot).unwrap();
    mgr.get_or_rewrite(&s.img, func, &hot.clone().passes(PassConfig::none()))
        .unwrap();

    let t0 = Instant::now();
    mgr.get_or_rewrite(&s.img, func, &doomed).unwrap_err();
    let cold_fail_ns = (t0.elapsed().as_nanos() as u64).max(1);

    let t1 = Instant::now();
    for _ in 0..denials {
        let e = mgr.get_or_rewrite(&s.img, func, &doomed).unwrap_err();
        std::hint::black_box(e);
    }
    let denied_avg_ns = (t1.elapsed().as_nanos() as u64) / u64::from(denials.max(1));

    let resident = mgr.len();
    let t2 = Instant::now();
    assert_eq!(
        mgr.apply_invalidation(Invalidation::Revalidate(&s.img)),
        0,
        "nothing was mutated yet"
    );
    let revalidate_clean_ns = (t2.elapsed().as_nanos() as u64).max(1);

    // Flip one folded byte of the stencil descriptor: both variants baked
    // it, so the sweep drops both.
    let s5 = s.s5();
    let saved = s.img.read_u64(s5).unwrap();
    s.img.write_u64(s5, saved ^ 1).unwrap();
    let dropped_after_mutation = mgr.apply_invalidation(Invalidation::Revalidate(&s.img));
    s.img.write_u64(s5, saved).unwrap();

    LifecycleReport {
        cold_fail_ns,
        denied_avg_ns,
        denials,
        revalidate_clean_ns,
        resident,
        dropped_after_mutation,
        stats: mgr.stats(),
    }
}

/// Render the C3 failure-path/lifecycle report.
pub fn render_lifecycle(title: &str, r: &LifecycleReport) -> String {
    let ratio = r.cold_fail_ns as f64 / r.denied_avg_ns.max(1) as f64;
    let mut s = format!("## {title}\n\n");
    s.push_str(&format!(
        "cold failing request    : {:>10} ns   (full trace+passes+emit before the budget rejects)\n",
        r.cold_fail_ns,
    ));
    s.push_str(&format!(
        "denied re-request (avg) : {:>10} ns   ({ratio:.0}x cheaper, over {} denials)\n",
        r.denied_avg_ns, r.denials,
    ));
    s.push_str(&format!(
        "revalidate, all clean   : {:>10} ns   ({} variants re-hashed, 0 dropped)\n",
        r.revalidate_clean_ns, r.resident,
    ));
    s.push_str(&format!(
        "after 1-byte mutation   : {:>10} variants dropped by the sweep\n",
        r.dropped_after_mutation,
    ));
    s.push_str(&format!(
        "lifecycle counters      : {} denied, {} stale, {} invalidated, {} misses total\n",
        r.stats.denied, r.stats.stale, r.stats.invalidated, r.stats.misses,
    ));
    s
}

/// One C2 row: request-path throughput at a given thread count.
#[derive(Debug, Clone)]
pub struct ConcRow {
    /// Worker threads issuing requests concurrently.
    pub threads: u32,
    /// Total requests issued across all threads.
    pub requests: u64,
    /// Wall-clock ns for the whole request storm.
    pub wall_ns: u64,
    /// Manager counters at quiescence.
    pub stats: brew_core::CacheStats,
}

/// The distinct request fingerprints `conc_study` replays.
pub const CONC_DISTINCT: u64 = 4;

/// C2: concurrent request throughput through one shared
/// [`brew_core::SpecializationManager`]. Every thread hammers the same
/// skewed mix (the hot `apply` shape 5 of 8, three colder shapes for the
/// rest); single-flight coalescing means the miss count stays at the
/// distinct-fingerprint count no matter how many threads race the cold
/// start, and the hit path is a sharded lock-per-shard lookup, so ns/req
/// should stay roughly flat as threads scale.
pub fn conc_study(xs: i64, ys: i64, rounds: u32, thread_counts: &[u32]) -> Vec<ConcRow> {
    use brew_core::SpecializationManager;
    use std::time::Instant;

    let mut out = Vec::new();
    for &nthreads in thread_counts {
        let s = Stencil::new(xs, ys);
        let func = s.prog.func("apply").unwrap();
        // Four distinct fingerprints: the hot shape plus three
        // semantically identical variants distinguished only by config
        // (trace-budget tweaks change the fingerprint, not the code).
        let reqs = [
            s.apply_request(),
            s.apply_request().passes(PassConfig::none()),
            s.apply_request().max_trace_insts(3_999_999),
            s.apply_request().max_trace_insts(3_999_998),
        ];
        const MIX: [usize; 8] = [0, 0, 0, 0, 0, 1, 2, 3];
        let mgr = SpecializationManager::new();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for tid in 0..nthreads {
                let (mgr, img, reqs) = (&mgr, &s.img, &reqs);
                scope.spawn(move || {
                    for i in 0..rounds {
                        let req = &reqs[MIX[(tid as usize * 3 + i as usize) % MIX.len()]];
                        let v = mgr.get_or_rewrite(img, func, req).unwrap();
                        std::hint::black_box(v.entry);
                    }
                });
            }
        });
        let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
        out.push(ConcRow {
            threads: nthreads,
            requests: u64::from(nthreads) * u64::from(rounds),
            wall_ns,
            stats: mgr.stats(),
        });
    }
    out
}

/// Render the C2 concurrency table.
pub fn render_conc(title: &str, rows: &[ConcRow]) -> String {
    let mut s = format!("## {title}\n\n");
    s.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8} {:>11}\n",
        "threads", "requests", "wall us", "ns/req", "hits", "coalesced", "misses", "dup traces"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<8} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8} {:>11}\n",
            r.threads,
            r.requests,
            r.wall_ns / 1_000,
            r.wall_ns / r.requests.max(1),
            r.stats.hits,
            r.stats.coalesced,
            r.stats.misses,
            r.stats.misses.saturating_sub(CONC_DISTINCT),
        ));
    }
    s.push_str(
        "\nsingle-flight: misses stay at the distinct-fingerprint count (4) at every \
         thread count;\na duplicate trace would show up in the last column.\n",
    );
    s
}

/// P1: the PGAS study.
pub fn pgas_study(n: i64, nnodes: i64) -> Vec<Row> {
    let mut m = Machine::new();
    let mut out = Vec::new();
    let mut p = PgasArray::new(n, nnodes, 1.min(nnodes - 1));
    let host = p.host_sum();

    let (v, st) = p.gsum_generic(&mut m).unwrap();
    assert_eq!(v, host);
    out.push(row("generic gsum (gread per element)", st));

    let spec = p.specialize_gsum().unwrap();
    let (v, st) = p.gsum_with(&mut m, spec.entry).unwrap();
    assert_eq!(v, host);
    out.push(row("BREW-specialized gsum", st));

    let (v, st) = p.lsum_manual(&mut m).unwrap();
    assert_eq!(v, host);
    out.push(row("manual local sum", st));

    let inst = p.instrument_remote_detection().unwrap();
    let (v, st) = p.gsum_with(&mut m, inst.entry).unwrap();
    assert_eq!(v, host);
    out.push(row("instrumented gsum (remote detection)", st));
    out
}

/// Render rows as a ratio table against the first row.
pub fn render(title: &str, rows: &[Row]) -> String {
    let mut s = format!("## {title}\n\n");
    s.push_str(&format!(
        "{:<42} {:>14} {:>12} {:>10}\n",
        "variant", "model cycles", "insts", "vs first"
    ));
    let base = rows.first().map(|r| r.cycles).unwrap_or(1).max(1);
    for r in rows {
        s.push_str(&format!(
            "{:<42} {:>14} {:>12} {:>9.0}%\n",
            r.label,
            r.cycles,
            r.insts,
            r.cycles as f64 / base as f64 * 100.0
        ));
    }
    s
}
