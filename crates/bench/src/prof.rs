//! PROF: variant-attributed time profiling, the flight recorder and the
//! external-profiler symbolization surface, exercised end to end.
//!
//! Four questions, each with a machine-checkable gate line that
//! `scripts/check.sh prof` greps for:
//!
//! 1. **Recorder overhead** — `record()` must stay lock-free cheap
//!    (≤ 100 ns/event on this container class) or it cannot be always-on.
//! 2. **Attribution** — replaying the stencil (specialized vs original
//!    apply) and a C4-style zipf poly workload must produce per-variant
//!    self-time that sums to the measured cycles.
//! 3. **Dump integrity** — a flight dump taken after the run has zero
//!    torn entries and renders/exports as valid chrome://tracing JSON
//!    merged with the rewrite span tree.
//! 4. **Symbolization** — every resident variant has a perf-map line;
//!    the jitdump render round-trips the code bytes.

use brew_core::telemetry::merged_chrome_json;
use brew_core::{
    validate_json, DispatchProfiler, FlightKind, FlightRecorder, RetKind, Rewriter, SpecRequest,
    SpecializationManager, SymbolKind, TieringConfig,
};
use brew_emu::{CallArgs, Machine};
use brew_stencil::Stencil;

/// Model-cycle gate for one `FlightRecorder::record` call (host ns).
pub const FLIGHT_OVERHEAD_GATE_NS: f64 = 100.0;

/// One attributed self-time row.
#[derive(Debug, Clone)]
pub struct SelfRow {
    /// `original` or the variant fingerprint, plus context.
    pub label: String,
    /// Calls attributed.
    pub calls: u64,
    /// Total attributed model cycles.
    pub cycles: u64,
    /// Costliest single call.
    pub exemplar: u64,
}

/// Everything `prof_study` measured.
#[derive(Debug, Clone)]
pub struct ProfReport {
    /// Host ns per `record()` call in the micro-bench.
    pub overhead_ns: f64,
    /// Events recorded in the micro-bench.
    pub overhead_events: u64,
    /// Stencil attribution: specialized apply first, original second.
    pub stencil: Vec<SelfRow>,
    /// Zipf poly attribution, hottest variant first, original last.
    pub zipf: Vec<SelfRow>,
    /// Calls replayed through the counting poly dispatcher.
    pub zipf_calls: u64,
    /// Model cycles the zipf replay measured (sum over all calls).
    pub zipf_cycles: u64,
    /// `TickSummary::cycles_sampled` accumulated over the run's ticks.
    pub cycles_sampled: u64,
    /// Entries in the final flight dump.
    pub dump_entries: usize,
    /// Drop-oldest losses in that dump.
    pub dump_dropped: u64,
    /// Torn (skipped mid-write) slots in that dump — must be 0 at rest.
    pub dump_torn: u64,
    /// Slots holding another lap's record in that dump — 0 at rest.
    pub dump_lapped: u64,
    /// First lines of the rendered dump, for the report.
    pub flight_head: String,
    /// The perf-map render of the poly manager's symbol table.
    pub perf_map: String,
    /// Live variant symbols in that table.
    pub map_variants: usize,
    /// Variants resident in the cache — must equal `map_variants`.
    pub resident: usize,
    /// Bytes of the merged span+flight chrome://tracing export
    /// (validated before this struct exists).
    pub merged_chrome_bytes: usize,
    /// Bytes of the jitdump render.
    pub jitdump_bytes: usize,
}

/// Micro-bench: tight-loop `record()` into a ring sized so most events
/// drop-oldest, i.e. the steady state of an always-on recorder.
///
/// The per-event cost is the *minimum* over fixed-size batches: `tables`
/// runs every experiment on its own thread, so on a small machine this
/// loop is preempted by sibling experiments and a single wall-clock
/// average would charge their timeslices to `record()`. A ~300 µs batch
/// fits inside one scheduler quantum, so the fastest batch is the
/// uncontended cost.
fn flight_overhead(events: u64) -> f64 {
    const BATCHES: u64 = 64;
    let rec = FlightRecorder::new(4096);
    rec.record(FlightKind::Hit, [0, 0, 0, 0]); // warm the clock epoch
    let per_batch = (events / BATCHES).max(1);
    let mut best = f64::INFINITY;
    let mut i = 0u64;
    while i < events {
        let n = per_batch.min(events - i);
        let t0 = std::time::Instant::now();
        for j in i..i + n {
            rec.record(FlightKind::Hit, [0x40_0000, j, 0, 0]);
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / n as f64);
        i += n;
    }
    assert_eq!(rec.recorded(), events + 1, "every record accepted");
    best
}

/// The PROF experiment; see the module docs.
pub fn prof_study(xs: i64, ys: i64) -> ProfReport {
    let overhead_events = 200_000u64;
    let overhead_ns = flight_overhead(overhead_events);

    // --- stencil: specialized vs original apply, attributed ---
    let s = Stencil::new(xs, ys);
    let apply = s.prog.func("apply").expect("apply");
    let smgr = SpecializationManager::new();
    let req = s.apply_request();
    let v = smgr
        .get_or_rewrite(&s.img, apply, &req)
        .expect("apply rewrite");
    // No dispatch stub here — the study calls both bodies directly, so
    // attribution is explicit: case 0 is the specialized variant, the
    // fall-through pseudo-case is the original.
    let page = brew_core::CounterPage::alloc(&s.img, 1);
    let prof = DispatchProfiler::new(apply, page, vec![req.fingerprint()], Some(smgr.metrics()));
    let mut m = Machine::new();
    let iters = 2u32;
    let host = Stencil::new(xs, ys).host_checksum(iters);
    let mut s1 = Stencil::new(xs, ys);
    let spec = s1.specialize_apply().expect("specialized apply");
    let _ = v; // the managed variant pins apply in the cache/symbol table
    let st_spec = s1
        .run_with_apply(&mut m, spec.entry, false, iters)
        .expect("specialized run");
    assert_eq!(s1.checksum(iters), host);
    prof.attribute(&s.img, 0, st_spec.cycles)
        .expect("attribute specialized");
    let mut s2 = Stencil::new(xs, ys);
    let st_orig = s2
        .run(&mut m, brew_stencil::Variant::Generic, iters)
        .expect("generic run");
    assert_eq!(s2.checksum(iters), host);
    prof.attribute(&s.img, 1, st_orig.cycles)
        .expect("attribute original");
    let stencil: Vec<SelfRow> = smgr
        .metrics()
        .self_times()
        .iter()
        .map(|t| SelfRow {
            label: if t.fingerprint == brew_core::telemetry::ORIGINAL_FP {
                "original apply (generic sweep)".into()
            } else {
                format!("specialized apply (fp 0x{:x})", t.fingerprint)
            },
            calls: t.count,
            cycles: t.sum_cycles,
            exemplar: t.exemplar_cycles,
        })
        .collect();
    assert_eq!(
        stencil.iter().map(|r| r.cycles).sum::<u64>(),
        st_spec.cycles + st_orig.cycles,
        "stencil attribution conserves cycles"
    );

    // --- C4-style zipf workload over poly variants ---
    let src = "int poly(int x, int n) { int r = 1; for (int i = 0; i < n; i++) r *= x; return r; }";
    let img = brew_image::Image::new();
    let prog = brew_minic::compile_into(src, &img).expect("poly compile");
    let poly = prog.func("poly").expect("poly");
    let mgr = SpecializationManager::builder()
        .tiering(TieringConfig {
            // Promotion out of reach: the tick only samples/decays here,
            // so the dispatcher (and attribution order) stays stable.
            promote_heat: f64::MAX,
            demote_heat: 0.0,
            decay: 0.5,
            cooldown_ticks: 0,
            cycle_weight: 1e-4,
        })
        .build();
    let exponents = [16i64, 8, 4];
    for n in exponents {
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(n)
            .ret(RetKind::Int);
        mgr.get_or_rewrite(&img, poly, &req).expect("poly rewrite");
    }
    let (entry, page) = mgr
        .build_dispatcher_counting(&img, poly, poly)
        .expect("counting dispatcher");
    let mut prof = mgr.profile_dispatcher(poly, page);
    prof.prime(&img).expect("prime profiler");

    // Zipf-ish skew: the hottest exponent takes ~70%, a long tail of
    // fall-through `n`s models the un-specialized mass.
    let mut zipf_calls = 0u64;
    let mut zipf_cycles = 0u64;
    let mut cycles_sampled = 0u64;
    let mut msum = 0u64;
    for i in 0..240u32 {
        let n: i64 = match i % 10 {
            0..=6 => 16,
            7 => 8,
            8 => 4,
            _ => 3 + (i as i64 % 5), // miss: falls through to the original
        };
        let out = m
            .call(&img, entry, &CallArgs::new().int(3).int(n))
            .expect("dispatched poly call");
        msum = msum.wrapping_add(out.ret_int);
        prof.observe(&img, out.stats.cycles).expect("observe call");
        zipf_calls += 1;
        zipf_cycles += out.stats.cycles;
        if i % 60 == 59 {
            cycles_sampled += mgr.tick(&img).cycles_sampled;
        }
    }
    std::hint::black_box(msum);
    cycles_sampled += mgr.tick(&img).cycles_sampled;
    assert_eq!(
        cycles_sampled, zipf_cycles,
        "ticks must drain exactly the attributed cycles"
    );
    let mut zipf: Vec<SelfRow> = mgr
        .metrics()
        .self_times()
        .iter()
        .map(|t| SelfRow {
            label: if t.fingerprint == brew_core::telemetry::ORIGINAL_FP {
                "original poly (fall-through)".into()
            } else {
                format!("poly variant fp 0x{:x}", t.fingerprint)
            },
            calls: t.count,
            cycles: t.sum_cycles,
            exemplar: t.exemplar_cycles,
        })
        .collect();
    zipf.sort_by_key(|r| std::cmp::Reverse(r.calls));
    assert_eq!(
        zipf.iter().map(|r| r.cycles).sum::<u64>(),
        zipf_cycles,
        "zipf attribution conserves cycles"
    );

    // --- symbolization: perf map / jitdump vs the resident set ---
    let symbols = mgr.symbols();
    let perf_map = symbols.render_perf_map();
    let map_variants = symbols.live_count(SymbolKind::Variant);
    let resident = mgr.len();
    let jitdump_bytes = symbols.render_jitdump(&img).len();

    // --- flight dump + merged chrome export ---
    // A traced rewrite supplies the span tree the flight events merge
    // with; its SpanRecorder anchors the shared timeline.
    let (_, rec) = Rewriter::new(&s.img)
        .rewrite_with_trace(apply, &s.apply_request())
        .expect("traced apply rewrite");
    let dump = mgr.flight().dump();
    let merged = merged_chrome_json(&rec, &dump);
    validate_json(&merged).expect("merged chrome export malformed");
    let text = dump.render_text();
    let flight_head = text.lines().take(14).collect::<Vec<_>>().join("\n");

    ProfReport {
        overhead_ns,
        overhead_events,
        stencil,
        zipf,
        zipf_calls,
        zipf_cycles,
        cycles_sampled,
        dump_entries: dump.entries.len(),
        dump_dropped: dump.dropped,
        dump_torn: dump.torn,
        dump_lapped: dump.lapped,
        flight_head,
        perf_map,
        map_variants,
        resident,
        merged_chrome_bytes: merged.len(),
        jitdump_bytes,
    }
}

/// Render the PROF report with its gate lines.
pub fn render_prof(title: &str, r: &ProfReport) -> String {
    let mut s = format!("## {title}\n\n");
    s.push_str(&format!(
        "flight record overhead  : {:>10.1} ns/event (best batch over {} events, gate <= {:.0}: {})\n",
        r.overhead_ns,
        r.overhead_events,
        FLIGHT_OVERHEAD_GATE_NS,
        if r.overhead_ns <= FLIGHT_OVERHEAD_GATE_NS {
            "ok"
        } else {
            "EXCEEDED"
        },
    ));
    s.push_str(&format!(
        "torn entries in dump    : {:>10} ({} lapped, {} entries, {} dropped, over {} recorded)\n",
        r.dump_torn,
        r.dump_lapped,
        r.dump_entries,
        r.dump_dropped,
        r.dump_entries as u64 + r.dump_dropped,
    ));
    s.push_str(&format!(
        "perf map / resident     : {} symbols / {} variants (match: {})\n",
        r.map_variants,
        r.resident,
        if r.map_variants == r.resident {
            "yes"
        } else {
            "NO"
        },
    ));
    s.push_str(&format!(
        "merged chrome export    : {:>10} bytes of valid JSON (spans + flight events)\n",
        r.merged_chrome_bytes,
    ));
    s.push_str(&format!(
        "jitdump render          : {:>10} bytes\n",
        r.jitdump_bytes,
    ));
    s.push_str(&format!(
        "tick cycle sampling     : {:>10} model cycles drained over the zipf replay \
         ({} calls, {} cycles measured)\n\n",
        r.cycles_sampled, r.zipf_calls, r.zipf_cycles,
    ));

    s.push_str("### Stencil: where the time went (model cycles)\n\n");
    s.push_str(&format!(
        "{:<44} {:>7} {:>14} {:>14}\n",
        "body", "calls", "self cycles", "worst call"
    ));
    for row in &r.stencil {
        s.push_str(&format!(
            "{:<44} {:>7} {:>14} {:>14}\n",
            row.label, row.calls, row.cycles, row.exemplar
        ));
    }

    s.push_str("\n### Zipf poly: per-variant self time\n\n");
    s.push_str(&format!(
        "{:<44} {:>7} {:>14} {:>10} {:>14}\n",
        "variant", "calls", "self cycles", "cyc/call", "worst call"
    ));
    for row in &r.zipf {
        s.push_str(&format!(
            "{:<44} {:>7} {:>14} {:>10.1} {:>14}\n",
            row.label,
            row.calls,
            row.cycles,
            row.cycles as f64 / row.calls.max(1) as f64,
            row.exemplar
        ));
    }

    s.push_str("\n### Perf map (`/tmp/perf-<pid>.map` format)\n\n");
    for line in r.perf_map.lines() {
        s.push_str("    ");
        s.push_str(line);
        s.push('\n');
    }
    s.push_str("\n### Flight dump (head)\n\n");
    for line in r.flight_head.lines() {
        s.push_str("    ");
        s.push_str(line);
        s.push('\n');
    }
    s
}
