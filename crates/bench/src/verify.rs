//! V1: the static variant verifier as an experiment — zero false
//! positives on real variants, 100% detection of seeded mutants, and the
//! latency of translation-validating a variant at publish time.
//!
//! Three sections, each rendered as greppable lines so `tables --exp
//! verify` doubles as the verification gate in `scripts/check.sh`:
//!
//! 1. **clean** — every corpus variant (plus the §V stencil apply) is
//!    verified under `strict_provenance`; any rejection is a false
//!    positive and fails the gate;
//! 2. **mutants** — every applicable corruption from
//!    `brew_verify::mutate` is seeded into every corpus variant; any
//!    escape fails the gate;
//! 3. **gate** — the same requests replayed through a
//!    `SpecializationManager` running `verify_on_publish`, reporting the
//!    manager-observed verification latency.

use brew_core::telemetry::metrics::{Ctr, Hst};
use brew_core::{RetKind, RewriteResult, Rewriter, SpecRequest, SpecializationManager};
use brew_image::Image;
use brew_verify::{mutate, publish_gate, verify, Rule, VerifyOptions};
use std::time::Instant;

const PROG: &str = r#"
    int hits;
    void tick(int f) { hits += 1; }

    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
    int scale(int x, int k) { return x * k + k / 3; }
    int clamp(int x, int lo, int hi) {
        if (x < lo) return lo;
        if (x > hi) return hi;
        return x;
    }
    int sum(int* p, int n) {
        int s = 0;
        for (int i = 0; i < n; i++) s += p[i];
        return s;
    }
    int dotk(int* xs, int* ys, int n) {
        tick(0);
        int d = 0;
        for (int i = 0; i < n; i++) d += xs[i] * ys[i];
        return d;
    }
"#;

/// One verified variant.
#[derive(Debug, Clone)]
pub struct CleanRow {
    /// Corpus label.
    pub label: String,
    /// Instructions the verifier re-decoded.
    pub insts: usize,
    /// Wall-clock ns of one standalone `verify` call.
    pub latency_ns: u64,
    /// Error findings — any non-zero entry is a false positive.
    pub errors: usize,
}

/// Per-mutation-kind detection tally.
#[derive(Debug, Clone)]
pub struct KindRow {
    /// Mutation kind (kebab-case name).
    pub kind: &'static str,
    /// Rule family the kind targets.
    pub rule: Rule,
    /// Sites found across the corpus.
    pub applied: usize,
    /// Mutants the verifier rejected.
    pub detected: usize,
}

/// Everything `verify_study` measured.
#[derive(Debug, Clone)]
pub struct VerifyV1Report {
    /// Clean-variant section (false positives show up here).
    pub clean: Vec<CleanRow>,
    /// Per-kind seeded-mutant tallies.
    pub kinds: Vec<KindRow>,
    /// Mutants whose rejection carried an Error finding of each rule.
    pub per_rule: [(Rule, usize); 5],
    /// Variants published through the gated manager.
    pub gate_passed: u64,
    /// Variants the gate rejected (must be 0 — the corpus is clean).
    pub gate_rejected: u64,
    /// Average manager-observed gate latency (ns/variant).
    pub gate_avg_ns: u64,
}

fn corpus(img: &Image) -> Vec<(String, u64, SpecRequest)> {
    let prog = brew_minic::compile_into(PROG, img).unwrap();
    let known = img.alloc_heap(6 * 8, 8);
    for i in 0..6 {
        img.write_u64(known + i * 8, 100 + i * 7).unwrap();
    }
    let f = |n: &str| prog.func(n).unwrap();
    vec![
        (
            "poly n=6".into(),
            f("poly"),
            SpecRequest::new()
                .unknown_int()
                .known_int(6)
                .ret(RetKind::Int),
        ),
        (
            "scale k=123456789".into(),
            f("scale"),
            SpecRequest::new()
                .unknown_int()
                .known_int(123_456_789)
                .ret(RetKind::Int),
        ),
        (
            "clamp unknown bounds".into(),
            f("clamp"),
            SpecRequest::new()
                .unknown_int()
                .unknown_int()
                .unknown_int()
                .ret(RetKind::Int),
        ),
        (
            "hooked sum".into(),
            f("sum"),
            SpecRequest::new()
                .unknown_int()
                .known_int(4)
                .ret(RetKind::Int)
                .entry_hook(f("tick"))
                .func(f("tick"), |o| o.inline = false),
        ),
        (
            "dotk known xs".into(),
            f("dotk"),
            SpecRequest::new()
                .ptr_to_known(known, 6 * 8)
                .unknown_int()
                .known_int(6)
                .ret(RetKind::Int),
        ),
    ]
}

/// The V1 experiment.
pub fn verify_study() -> VerifyV1Report {
    let img = Image::new();
    let cases = corpus(&img);
    let opts = VerifyOptions {
        strict_provenance: true,
        ..VerifyOptions::default()
    };

    // --- section 1: clean variants, standalone verify latency ---
    let mut clean = Vec::new();
    let mut variants: Vec<(String, u64, SpecRequest, RewriteResult)> = Vec::new();
    for (label, func, req) in cases {
        let res = Rewriter::new(&img)
            .rewrite(func, &req)
            .expect("corpus rewrite");
        let t0 = Instant::now();
        let report = verify(&img, func, &req, &res, &opts);
        clean.push(CleanRow {
            label: label.clone(),
            insts: report.insts,
            latency_ns: t0.elapsed().as_nanos() as u64,
            errors: report.error_count(),
        });
        variants.push((label, func, req, res));
    }
    // The §V workload rides along: the specialized stencil apply must be
    // just as clean as the synthetic corpus.
    {
        let mut st = brew_stencil::Stencil::new(crate::XS, crate::YS);
        let apply = st.prog.func("apply").unwrap();
        let req = st.apply_request();
        let res = st.specialize_apply().expect("stencil apply");
        let t0 = Instant::now();
        let report = verify(&st.img, apply, &req, &res, &opts);
        clean.push(CleanRow {
            label: "stencil apply".into(),
            insts: report.insts,
            latency_ns: t0.elapsed().as_nanos() as u64,
            errors: report.error_count(),
        });
    }

    // --- section 2: seeded mutants ---
    let mut kinds: Vec<KindRow> = mutate::Mutation::ALL
        .iter()
        .map(|k| KindRow {
            kind: k.name(),
            rule: k.rule(),
            applied: 0,
            detected: 0,
        })
        .collect();
    let mut per_rule = [
        (Rule::Roundtrip, 0usize),
        (Rule::CfgClosure, 0),
        (Rule::StackDiscipline, 0),
        (Rule::WriteContainment, 0),
        (Rule::Provenance, 0),
    ];
    for (_, func, req, res) in &variants {
        for (ki, kind) in mutate::Mutation::ALL.into_iter().enumerate() {
            let Some(m) = mutate::apply(&img, res, kind) else {
                continue;
            };
            kinds[ki].applied += 1;
            let report = verify(&img, *func, req, res, &opts);
            if !report.passed() {
                kinds[ki].detected += 1;
                for (rule, n) in report.errors_by_rule() {
                    if n > 0 {
                        per_rule.iter_mut().find(|(r, _)| *r == rule).unwrap().1 += 1;
                    }
                }
            }
            m.revert(&img);
        }
    }

    // --- section 3: the manager gate (verify_on_publish) ---
    let mgr = SpecializationManager::builder()
        .publish_gate(publish_gate())
        .build();
    for (_, func, req, _) in &variants {
        mgr.get_or_rewrite(&img, *func, req).expect("gated publish");
    }
    let metrics = mgr.metrics();
    let h = metrics.histogram(Hst::VerifyNs);
    let gate_avg_ns = h.sum() / h.count().max(1);

    VerifyV1Report {
        clean,
        kinds,
        per_rule,
        gate_passed: metrics.counter(Ctr::VerifyPassed).get(),
        gate_rejected: metrics.counter(Ctr::VerifyRejected).get(),
        gate_avg_ns,
    }
}

/// Render the V1 report.
pub fn render_verify(title: &str, r: &VerifyV1Report) -> String {
    let mut s = format!("## {title}\n\n");
    let fps: usize = r.clean.iter().map(|c| c.errors).sum();
    s.push_str(&format!(
        "clean variants            : {} verified, {} false positives\n",
        r.clean.len(),
        fps
    ));
    for c in &r.clean {
        s.push_str(&format!(
            "  {:<22}  : {:>4} insts, {:>9} ns\n",
            c.label, c.insts, c.latency_ns
        ));
    }
    let applied: usize = r.kinds.iter().map(|k| k.applied).sum();
    let detected: usize = r.kinds.iter().map(|k| k.detected).sum();
    let kinds_hit = r.kinds.iter().filter(|k| k.applied > 0).count();
    s.push_str(&format!(
        "seeded mutants            : {detected}/{applied} detected across {kinds_hit}/{} kinds\n",
        r.kinds.len()
    ));
    s.push_str(&format!(
        "mutant escape count       : {}\n",
        applied - detected
    ));
    for k in &r.kinds {
        s.push_str(&format!(
            "  {:<22}  : {}/{} ({})\n",
            k.kind,
            k.detected,
            k.applied,
            k.rule.name()
        ));
    }
    s.push_str("rule catch counts         :");
    for (rule, n) in &r.per_rule {
        s.push_str(&format!(" {}={n}", rule.name()));
    }
    s.push('\n');
    s.push_str(&format!(
        "publish gate              : {} passed, {} rejected, avg {} ns/variant\n",
        r.gate_passed, r.gate_rejected, r.gate_avg_ns
    ));
    s
}
