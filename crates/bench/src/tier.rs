//! C4 — long-horizon adaptive tiering under a drifting workload.
//!
//! A kernel is driven by a zipfian draw distribution over 32 distinct
//! fingerprints whose hot set is reshuffled every phase. The manager gets
//! **no operator input**: it sees only its own counter pages (fed by a
//! counting dispatcher) and the miss observations from `request`, and its
//! tiering policy must promote the new hot set and demote the old one,
//! phase after phase. The study reports, per phase, how many rounds the
//! resident set needs to re-converge onto the oracle hot set, plus the
//! steady-state dispatch cost of the converged adaptive manager against a
//! pre-warmed oracle that was *told* the hot set up front.

use brew_core::{SpecRequest, SpecializationManager, TieringConfig};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;
use brew_minic::compile_into;

/// The C4 kernel: a loop whose trip count is the specialization axis, so
/// each known `b` unrolls to a distinct straight-line variant.
const PROG: &str = r#"
    int madd(int x, int b) {
        int acc = 0;
        for (int i = 0; i < b; i++) acc = acc + x + i;
        return acc;
    }
"#;

/// Distinct fingerprints (`b = 1..=FPS`) the draw distribution covers.
pub const FPS: u64 = 32;
/// Hot-set size: the zipf head carrying [`HEAD_MASS_PCT`] of the draws.
pub const HOT: usize = 10;
/// Percentage of draws landing in the hot head.
pub const HEAD_MASS_PCT: u64 = 90;

/// Per-phase convergence outcome.
#[derive(Debug, Clone)]
pub struct TierPhase {
    /// Which drift phase (0-based).
    pub phase: usize,
    /// First round (1-based, within the phase) at which the resident set
    /// overlapped the oracle hot set by >= 90%; `None` = never converged.
    pub converged_round: Option<u32>,
    /// `|resident ∩ oracle hot set| / HOT` at phase end.
    pub final_overlap: f64,
    /// Variants resident at phase end (for this function).
    pub resident: usize,
}

/// The C4 report.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// One row per drift phase.
    pub phases: Vec<TierPhase>,
    /// Tick rounds per phase.
    pub rounds_per_phase: u32,
    /// Draws per round.
    pub draws_per_round: u32,
    /// Mean emulated cycles per draw through the converged adaptive
    /// manager's dispatcher, final phase.
    pub adaptive_cycles_per_draw: f64,
    /// Mean emulated cycles per draw through the oracle's dispatcher
    /// (pre-warmed with the exact hot set, same draws).
    pub oracle_cycles_per_draw: f64,
    /// Tiering promotions over the whole run.
    pub promoted: u64,
    /// Tiering demotions over the whole run.
    pub demoted: u64,
    /// Manager counters at the end.
    pub stats: brew_core::CacheStats,
    /// Whether every phase converged within its round budget.
    pub all_converged: bool,
}

/// Deterministic 64-bit mixer (splitmix64) — the study's only RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fresh pseudorandom permutation of `1..=FPS`; the first [`HOT`]
/// entries are the phase's hot set.
fn shuffled_bs(rng: &mut u64) -> Vec<i64> {
    let mut bs: Vec<i64> = (1..=FPS as i64).collect();
    for i in (1..bs.len()).rev() {
        let j = (splitmix64(rng) as usize) % (i + 1);
        bs.swap(i, j);
    }
    bs
}

/// Draw one `b` from the phase distribution: [`HEAD_MASS_PCT`]% of draws
/// hit the 10-value zipf head (rank r weighted 1/(r+1)), the rest spread
/// uniformly over the 22-value tail.
fn draw(rng: &mut u64, bs: &[i64]) -> i64 {
    if splitmix64(rng) % 100 < HEAD_MASS_PCT {
        // Inverse-CDF over harmonic weights 1/1..1/HOT, in 1e6 fixed point.
        let total: u64 = (1..=HOT as u64).map(|r| 1_000_000 / r).sum();
        let mut pick = splitmix64(rng) % total;
        for (r, &b) in bs.iter().enumerate().take(HOT) {
            let w = 1_000_000 / (r as u64 + 1);
            if pick < w {
                return b;
            }
            pick -= w;
        }
        bs[HOT - 1]
    } else {
        bs[HOT + (splitmix64(rng) as usize) % (bs.len() - HOT)]
    }
}

fn req_of(b: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(b)
        .ret(brew_core::RetKind::Int)
}

/// `madd(x, b)` on the original semantics — the emulated ground truth.
fn madd(x: i64, b: i64) -> i64 {
    (0..b).map(|i| x + i).sum()
}

/// Resident-set overlap with the phase's hot set, in `0.0..=1.0`.
fn overlap(mgr: &SpecializationManager, func: u64, hot: &[i64]) -> f64 {
    let n = hot
        .iter()
        .filter(|&&b| mgr.is_resident(func, req_of(b).fingerprint()))
        .count();
    n as f64 / hot.len() as f64
}

/// Mean emulated cycles per draw calling `entry` over one round of the
/// phase distribution (fresh RNG stream per caller for a fair A/B).
fn dispatch_cost(img: &Image, entry: u64, bs: &[i64], draws: u32, mut rng: u64) -> f64 {
    let mut m = Machine::new();
    let mut cycles = 0u64;
    for i in 0..draws {
        let b = draw(&mut rng, bs);
        let x = (i as i64) % 7;
        let out = m
            .call(img, entry, &CallArgs::new().int(x).int(b))
            .expect("dispatch");
        assert_eq!(out.ret_int as i64, madd(x, b), "madd({x},{b}) diverged");
        cycles += out.stats.cycles;
    }
    cycles as f64 / draws as f64
}

/// C4: drive the drifting zipf workload for `phases` phases of
/// `rounds_per_phase` rounds x `draws_per_round` draws, ticking the
/// tiering policy once per round, and measure convergence of the resident
/// set onto each phase's (undisclosed) hot set.
pub fn tier_study(phases: usize, rounds_per_phase: u32, draws_per_round: u32) -> TierReport {
    let img = Image::new();
    let prog = compile_into(PROG, &img).expect("compile madd");
    let func = prog.func("madd").expect("madd symbol");

    // Probe one variant's footprint, then budget for ~1.5 hot sets so the
    // transition (old set not yet demoted, new set already promoted) fits
    // without LRU eviction fighting the tiering policy for the verdict.
    let probe = SpecializationManager::new()
        .get_or_rewrite(&img, func, &req_of(FPS as i64))
        .unwrap()
        .code_len;
    let mgr = SpecializationManager::builder()
        .budget(probe * (HOT * 3 / 2))
        // The promote bar sits *between* one round's input for the coldest
        // hot rank (~8 draws) and its steady-state heat (~16): no key can
        // promote off a single round's burst, so the resident set is earned
        // over several ticks and convergence is a visible trajectory.
        .tiering(TieringConfig {
            promote_heat: 12.0,
            demote_heat: 3.0,
            decay: 0.5,
            cooldown_ticks: 1,
            cycle_weight: 0.0,
        })
        .build();

    let mut rng: u64 = 0xC4_5EED;
    let mut phase_rows = Vec::new();
    let mut last_bs: Vec<i64> = Vec::new();

    for phase in 0..phases {
        let bs = shuffled_bs(&mut rng);
        let hot = &bs[..HOT];
        let mut converged_round = None;

        for round in 1..=rounds_per_phase {
            // Rebuild the counting dispatcher from the current resident
            // set; building it registers the counter page as a heat
            // source, so stub traffic below feeds the next tick.
            let (stub, _page) = mgr
                .build_dispatcher_counting(&img, func, func)
                .expect("dispatcher");
            let mut m = Machine::new();
            for i in 0..draws_per_round {
                let b = draw(&mut rng, &bs);
                let x = (i as i64) % 5;
                let out = m
                    .call(&img, stub, &CallArgs::new().int(x).int(b))
                    .expect("stub call");
                assert_eq!(out.ret_int as i64, madd(x, b));
                // Fallthrough draws report the miss so the tiering layer
                // can attribute heat to the *fingerprint* (the shared
                // fallthrough counter slot cannot).
                if !mgr.is_resident(func, req_of(b).fingerprint()) {
                    mgr.request(&img, func, &req_of(b)).expect("request");
                }
            }
            mgr.tick(&img);
            if converged_round.is_none() && overlap(&mgr, func, hot) >= 0.9 {
                converged_round = Some(round);
            }
        }

        phase_rows.push(TierPhase {
            phase,
            converged_round,
            final_overlap: overlap(&mgr, func, hot),
            resident: mgr.variants_of(func).len(),
        });
        last_bs = bs;
    }

    // Steady-state dispatch cost, final phase: the converged adaptive
    // manager vs an oracle warmed with the exact hot set up front.
    let (adaptive_stub, _) = mgr
        .build_dispatcher_counting(&img, func, func)
        .expect("adaptive dispatcher");
    let oracle = SpecializationManager::new();
    for &b in &last_bs[..HOT] {
        oracle.get_or_rewrite(&img, func, &req_of(b)).unwrap();
    }
    let oracle_stub = oracle
        .build_dispatcher(&img, func, func)
        .expect("oracle dispatcher");
    let cost_rng = splitmix64(&mut rng);
    let adaptive_cycles_per_draw =
        dispatch_cost(&img, adaptive_stub, &last_bs, draws_per_round, cost_rng);
    let oracle_cycles_per_draw =
        dispatch_cost(&img, oracle_stub, &last_bs, draws_per_round, cost_rng);

    use brew_core::telemetry::metrics::Ctr;
    let m = mgr.metrics();
    let all_converged = phase_rows.iter().all(|p| p.converged_round.is_some());
    TierReport {
        phases: phase_rows,
        rounds_per_phase,
        draws_per_round,
        adaptive_cycles_per_draw,
        oracle_cycles_per_draw,
        promoted: m.counter(Ctr::TierPromoted).get(),
        demoted: m.counter(Ctr::TierDemoted).get(),
        stats: mgr.stats(),
        all_converged,
    }
}

/// Render the C4 adaptive-tiering report.
pub fn render_tier(title: &str, r: &TierReport) -> String {
    let mut s = format!("## {title}\n\n");
    s.push_str(&format!(
        "{} fingerprints, {}-value zipf head ({}% of draws), {} draws/round, {} rounds/phase\n\n",
        FPS, HOT, HEAD_MASS_PCT, r.draws_per_round, r.rounds_per_phase,
    ));
    s.push_str("phase   converged-at-round   final-overlap   resident\n");
    for p in &r.phases {
        let conv = match p.converged_round {
            Some(n) => format!("{n}"),
            None => "never".to_string(),
        };
        s.push_str(&format!(
            "{:>5}   {:>18}   {:>12.0}%   {:>8}\n",
            p.phase,
            conv,
            p.final_overlap * 100.0,
            p.resident,
        ));
    }
    let slowdown = r.adaptive_cycles_per_draw / r.oracle_cycles_per_draw.max(1.0);
    s.push_str(&format!(
        "\nsteady-state dispatch   : {:.1} cycles/draw adaptive vs {:.1} oracle ({slowdown:.2}x)\n",
        r.adaptive_cycles_per_draw, r.oracle_cycles_per_draw,
    ));
    s.push_str(&format!(
        "tiering actions         : {} promoted, {} demoted (no operator input)\n",
        r.promoted, r.demoted,
    ));
    s.push_str(&format!(
        "lifecycle counters      : {} misses, {} hits, {} evictions\n",
        r.stats.misses, r.stats.hits, r.stats.evictions,
    ));
    s.push_str(&format!(
        "all phases converged: {}\n",
        if r.all_converged { "yes" } else { "NO" },
    ));
    s
}
