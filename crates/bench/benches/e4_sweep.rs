//! E4 (§V.B outlook): whole-sweep rewriting with controlled unrolling.

use brew_emu::Machine;
use brew_stencil::{Stencil, Variant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const XS: i64 = 32;
const YS: i64 = 32;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_sweep");
    g.sample_size(10);
    for unroll in [1u32, 4] {
        g.bench_with_input(
            BenchmarkId::new("sweep_rewrite", unroll),
            &unroll,
            |b, &u| {
                let mut s = Stencil::new(XS, YS);
                let res = s.specialize_sweep(u).unwrap();
                let mut m = Machine::new();
                b.iter(|| {
                    s.run(&mut m, Variant::SpecializedSweep(res.entry), 1)
                        .unwrap()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
