//! A6: the cost of the rewrite itself (the paper argues it is "a delayed
//! step complementing static compilation" — amortizable).

use brew_stencil::Stencil;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a6_rewrite_cost");
    g.sample_size(10);
    g.bench_function("rewrite_apply", |b| {
        b.iter(|| {
            let mut s = Stencil::new(32, 32);
            s.specialize_apply().unwrap()
        });
    });
    g.bench_function("rewrite_grouped", |b| {
        b.iter(|| {
            let mut s = Stencil::new(32, 32);
            s.specialize_apply_grouped().unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
