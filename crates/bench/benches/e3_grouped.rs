//! E3 (§V.B): grouped-coefficient stencil, generic vs specialized.

use brew_emu::Machine;
use brew_stencil::{Stencil, Variant};
use criterion::{criterion_group, criterion_main, Criterion};

const XS: i64 = 32;
const YS: i64 = 32;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_grouped");
    g.sample_size(10);

    g.bench_function("grouped_generic", |b| {
        let mut s = Stencil::new(XS, YS);
        let mut m = Machine::new();
        b.iter(|| s.run(&mut m, Variant::Grouped, 1).unwrap());
    });
    g.bench_function("grouped_specialized", |b| {
        let mut s = Stencil::new(XS, YS);
        let spec = s.specialize_apply_grouped().unwrap();
        let mut m = Machine::new();
        b.iter(|| s.run_with_apply(&mut m, spec.entry, true, 1).unwrap());
    });
    g.bench_function("manual_inline", |b| {
        let mut s = Stencil::new(XS, YS);
        let mut m = Machine::new();
        b.iter(|| s.run(&mut m, Variant::ManualInline, 1).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
