//! P1: the PGAS global-to-local translation study.

use brew_emu::Machine;
use brew_pgas::PgasArray;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("p1_pgas");
    g.sample_size(10);
    g.bench_function("generic_gsum", |b| {
        let mut p = PgasArray::new(240, 4, 1);
        let mut m = Machine::new();
        b.iter(|| p.gsum_generic(&mut m).unwrap());
    });
    g.bench_function("specialized_gsum", |b| {
        let mut p = PgasArray::new(240, 4, 1);
        let spec = p.specialize_gsum().unwrap();
        let mut m = Machine::new();
        b.iter(|| p.gsum_with(&mut m, spec.entry).unwrap());
    });
    g.bench_function("manual_lsum", |b| {
        let mut p = PgasArray::new(240, 4, 1);
        let mut m = Machine::new();
        b.iter(|| p.lsum_manual(&mut m).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
