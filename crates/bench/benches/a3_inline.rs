//! A3: inlining ablation (§IV calls well-working inlining "the most
//! important aspect").

use brew_bench::inline_study;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a3_inline");
    g.sample_size(10);
    g.bench_function("study", |b| b.iter(|| inline_study(24, 24, 1)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
