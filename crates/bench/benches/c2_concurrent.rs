//! C2: the shared manager under concurrency — hit-path scaling across
//! thread counts and the cost of a coalesced cold start (every thread
//! racing the same fingerprint, single-flight electing one tracer).

use brew_bench::conc_study;
use brew_core::SpecializationManager;
use brew_stencil::Stencil;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c2_concurrent");
    g.sample_size(10);
    for threads in [1u32, 2, 4, 8] {
        g.bench_function(&format!("hit_path_{threads}t"), |b| {
            let s = Stencil::new(32, 32);
            let func = s.prog.func("apply").unwrap();
            let req = s.apply_request();
            let mgr = SpecializationManager::new();
            mgr.get_or_rewrite(&s.img, func, &req).unwrap();
            b.iter(|| {
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        let (mgr, img, req) = (&mgr, &s.img, &req);
                        scope.spawn(move || {
                            for _ in 0..250 {
                                std::hint::black_box(
                                    mgr.get_or_rewrite(img, func, req).unwrap().entry,
                                );
                            }
                        });
                    }
                });
            });
        });
    }
    g.bench_function("coalesced_cold_start_8t", |b| {
        let s = Stencil::new(32, 32);
        let func = s.prog.func("apply").unwrap();
        let req = s.apply_request();
        b.iter(|| {
            // Fresh manager each round: 8 threads race the cold miss, one
            // traces, seven coalesce.
            let mgr = SpecializationManager::new();
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    let (mgr, img, req) = (&mgr, &s.img, &req);
                    scope.spawn(move || {
                        std::hint::black_box(mgr.get_or_rewrite(img, func, req).unwrap().entry);
                    });
                }
            });
            assert_eq!(mgr.stats().misses, 1);
        });
    });
    g.bench_function("skewed_storm_4t_x500", |b| {
        b.iter(|| conc_study(32, 32, 500, &[4])[0].wall_ns);
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
