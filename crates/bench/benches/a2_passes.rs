//! A2: optimization-pass ablation — emulated execution speed of the
//! specialized stencil with passes on/off.

use brew_core::PassConfig;
use brew_emu::Machine;
use brew_stencil::Stencil;
use criterion::{criterion_group, criterion_main, Criterion};

const XS: i64 = 32;
const YS: i64 = 32;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a2_passes");
    g.sample_size(10);
    g.bench_function("no_passes", |b| {
        let mut s = Stencil::new(XS, YS);
        let res = s.specialize_apply_with_passes(&PassConfig::none()).unwrap();
        let mut m = Machine::new();
        b.iter(|| s.run_with_apply(&mut m, res.entry, false, 1).unwrap());
    });
    g.bench_function("all_passes", |b| {
        let mut s = Stencil::new(XS, YS);
        let res = s
            .specialize_apply_with_passes(&PassConfig::default())
            .unwrap();
        let mut m = Machine::new();
        b.iter(|| s.run_with_apply(&mut m, res.entry, false, 1).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
