//! E1 (§V.A): generic vs manual vs BREW-specialized stencil — wall-clock of
//! the emulated sweeps (model-cycle ratios come from the `tables` binary).

use brew_emu::Machine;
use brew_stencil::{Stencil, Variant};
use criterion::{criterion_group, criterion_main, Criterion};

const XS: i64 = 32;
const YS: i64 = 32;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_specialize");
    g.sample_size(10);

    g.bench_function("generic_apply", |b| {
        let mut s = Stencil::new(XS, YS);
        let mut m = Machine::new();
        b.iter(|| s.run(&mut m, Variant::Generic, 1).unwrap());
    });
    g.bench_function("manual_fnptr", |b| {
        let mut s = Stencil::new(XS, YS);
        let mut m = Machine::new();
        b.iter(|| s.run(&mut m, Variant::Manual, 1).unwrap());
    });
    g.bench_function("brew_specialized", |b| {
        let mut s = Stencil::new(XS, YS);
        let spec = s.specialize_apply().unwrap();
        let mut m = Machine::new();
        b.iter(|| s.run_with_apply(&mut m, spec.entry, false, 1).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
