//! C1: variant-cache amortization — a cached re-request vs the cold
//! rewrite it memoizes (the A6 cost, paid once) — plus the dispatch-stub
//! counting overhead (plain vs self-counting stub on the same stream).

use brew_bench::cache_study;
use brew_core::{RetKind, SpecRequest, SpecializationManager};
use brew_emu::{CallArgs, Machine};
use brew_stencil::Stencil;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c1_cache");
    g.sample_size(10);
    g.bench_function("cold_rewrite", |b| {
        b.iter(|| {
            let s = Stencil::new(32, 32);
            let func = s.prog.func("apply").unwrap();
            let req = s.apply_request();
            SpecializationManager::new()
                .get_or_rewrite(&s.img, func, &req)
                .unwrap()
                .entry
        });
    });
    g.bench_function("cached_rerequest", |b| {
        let s = Stencil::new(32, 32);
        let func = s.prog.func("apply").unwrap();
        let req = s.apply_request();
        let mgr = SpecializationManager::new();
        mgr.get_or_rewrite(&s.img, func, &req).unwrap();
        b.iter(|| mgr.get_or_rewrite(&s.img, func, &req).unwrap().entry);
    });
    g.bench_function("skewed_replay_1000", |b| {
        b.iter(|| cache_study(32, 32, 1_000).cached_avg_ns);
    });

    // Dispatch-stub counting overhead: identical 3-variant chains, one
    // plain and one incrementing its counter page, replayed on the same
    // skewed call stream.
    let img = brew_image::Image::new();
    let prog = brew_minic::compile_into(
        "int poly(int x, int n) { int r = 1; for (int i = 0; i < n; i++) r *= x; return r; }",
        &img,
    )
    .unwrap();
    let poly = prog.func("poly").unwrap();
    let mgr = SpecializationManager::new();
    for n in [16i64, 8, 4] {
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(n)
            .ret(RetKind::Int);
        mgr.get_or_rewrite(&img, poly, &req).unwrap();
    }
    let plain = mgr.build_dispatcher(&img, poly, poly).unwrap();
    let (counting, _page) = mgr.build_dispatcher_counting(&img, poly, poly).unwrap();
    for (name, entry) in [("dispatch_plain", plain), ("dispatch_counting", counting)] {
        g.bench_function(name, |b| {
            let mut m = Machine::new();
            let mut i = 0u64;
            b.iter(|| {
                let n: i64 = if i % 10 < 7 { 16 } else { 5 };
                i += 1;
                m.call(&img, entry, &CallArgs::new().int(3).int(n))
                    .unwrap()
                    .ret_int
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
