//! C1: variant-cache amortization — a cached re-request vs the cold
//! rewrite it memoizes (the A6 cost, paid once).

use brew_bench::cache_study;
use brew_core::SpecializationManager;
use brew_stencil::Stencil;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c1_cache");
    g.sample_size(10);
    g.bench_function("cold_rewrite", |b| {
        b.iter(|| {
            let s = Stencil::new(32, 32);
            let func = s.prog.func("apply").unwrap();
            let req = s.apply_request();
            SpecializationManager::new()
                .get_or_rewrite(&s.img, func, &req)
                .unwrap()
                .entry
        });
    });
    g.bench_function("cached_rerequest", |b| {
        let s = Stencil::new(32, 32);
        let func = s.prog.func("apply").unwrap();
        let req = s.apply_request();
        let mgr = SpecializationManager::new();
        mgr.get_or_rewrite(&s.img, func, &req).unwrap();
        b.iter(|| mgr.get_or_rewrite(&s.img, func, &req).unwrap().entry);
    });
    g.bench_function("skewed_replay_1000", |b| {
        b.iter(|| cache_study(32, 32, 1_000).cached_avg_ns);
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
