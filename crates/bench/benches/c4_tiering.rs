//! C4: adaptive tiering wall-clock — the full drifting-zipf study (the
//! closed counter→specialization loop re-converging per phase), one
//! tick's sampling cost over a warm resident set, and the end-to-end
//! convergence of a single phase from cold.

use brew_bench::tier_study;
use brew_core::{RetKind, SpecRequest, SpecializationManager, TieringConfig};
use brew_image::Image;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c4_tiering");
    g.sample_size(10);

    // Wall-clock of one tick over a warm manager: 16 resident variants'
    // heat sampled, decayed, and judged (no promotions or demotions fire).
    g.bench_function("tick_16_resident", |b| {
        let img = Image::new();
        let prog = brew_minic::compile_into(
            "int poly(int x, int n) { int r = 1; for (int i = 0; i < n; i++) r *= x; return r; }",
            &img,
        )
        .unwrap();
        let poly = prog.func("poly").unwrap();
        let mgr = SpecializationManager::builder()
            .tiering(TieringConfig {
                promote_heat: f64::MAX,
                demote_heat: 0.0,
                decay: 0.5,
                cooldown_ticks: u64::MAX,
                cycle_weight: 0.0,
            })
            .build();
        for n in 0..16 {
            let req = SpecRequest::new()
                .unknown_int()
                .known_int(n)
                .ret(RetKind::Int);
            mgr.get_or_rewrite(&img, poly, &req).unwrap();
        }
        b.iter(|| std::hint::black_box(mgr.tick(&img)).tracked);
    });

    // One drift phase from cold: 12 rounds x 256 draws converging onto a
    // 10-variant hot set.
    g.bench_function("one_phase_cold_convergence", |b| {
        b.iter(|| tier_study(1, 12, 256).all_converged);
    });

    // The headline study: four drift phases, no operator input.
    g.bench_function("drifting_zipf_4_phases", |b| {
        b.iter(|| tier_study(4, 12, 256).all_converged);
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
