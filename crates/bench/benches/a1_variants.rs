//! A1: cost of the rewrite at different variant thresholds (world
//! migration frequency vs trace effort).

use brew_stencil::Stencil;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_variants");
    g.sample_size(10);
    for unroll in [1u32, 8] {
        g.bench_with_input(
            BenchmarkId::new("rewrite_sweep", unroll),
            &unroll,
            |b, &u| {
                b.iter(|| {
                    let mut s = Stencil::new(24, 24);
                    s.specialize_sweep(u).unwrap()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
