//! A5: guarded specialization dispatch (§III.D).

use brew_bench::guard_study;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a5_guard");
    g.sample_size(10);
    g.bench_function("study", |b| b.iter(guard_study));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
