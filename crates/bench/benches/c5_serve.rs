//! C5: serving wall-clock — cold start vs gated warm start of the
//! persisted variant set, and the zipfian dispatch torture through the
//! epoch-pinned read path (with and without writer churn).

use brew_bench::serve_study;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c5_serve");
    g.sample_size(10);

    // The full study: cold, checkpoint, warm, serving rows, corruption
    // sweep — the gates must hold on every iteration.
    g.bench_function("full_study_small", |b| {
        b.iter(|| {
            let r = serve_study(500, &[1, 2]);
            assert!(r.gates_hold(), "C5 gates regressed");
            r.warm_ns
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
