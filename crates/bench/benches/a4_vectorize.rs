//! A4: packed-execution headroom — the hand-scheduled SIMD sweep the
//! paper's planned vectorization pass would generate.

use brew_emu::{CallArgs, Machine};
use brew_stencil::{simd::build_packed_sweep, Stencil, Variant};
use criterion::{criterion_group, criterion_main, Criterion};

const XS: i64 = 32;
const YS: i64 = 32;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a4_vectorize");
    g.sample_size(10);
    g.bench_function("scalar_manual_inline", |b| {
        let mut s = Stencil::new(XS, YS);
        let mut m = Machine::new();
        b.iter(|| s.run(&mut m, Variant::ManualInline, 1).unwrap());
    });
    g.bench_function("packed_sweep", |b| {
        let s = Stencil::new(XS, YS);
        let packed = build_packed_sweep(&s.img, XS, YS);
        let mut m = Machine::new();
        b.iter(|| {
            m.call(&s.img, packed, &CallArgs::new().ptr(s.m1).ptr(s.m2))
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
