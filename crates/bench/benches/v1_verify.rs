//! V1: wall-clock cost of translation-validating a variant — the price of
//! `verify_on_publish`, paid once per cold rewrite and amortized exactly
//! like the rewrite itself (C1).

use brew_core::{RetKind, Rewriter, SpecRequest};
use brew_image::Image;
use brew_verify::{verify, VerifyOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let img = Image::new();
    let prog = brew_minic::compile_into(
        r#"
        int poly(int x, int n) {
            int r = 1;
            for (int i = 0; i < n; i++) r *= x;
            return r;
        }
        "#,
        &img,
    )
    .unwrap();
    let poly = prog.func("poly").unwrap();
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(8)
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(poly, &req).unwrap();
    let opts = VerifyOptions {
        strict_provenance: true,
        ..VerifyOptions::default()
    };

    let mut st = brew_stencil::Stencil::new(32, 32);
    let apply = st.prog.func("apply").unwrap();
    let apply_req = st.apply_request();
    let apply_res = st.specialize_apply().unwrap();

    let mut g = c.benchmark_group("v1_verify");
    g.bench_function("verify_poly", |b| {
        b.iter(|| {
            let report = verify(&img, poly, &req, &res, &opts);
            assert!(report.passed());
            report
        });
    });
    g.bench_function("verify_stencil_apply", |b| {
        b.iter(|| {
            let report = verify(&st.img, apply, &apply_req, &apply_res, &opts);
            assert!(report.passed());
            report
        });
    });
    g.bench_function("rewrite_plus_verify_poly", |b| {
        b.iter(|| {
            let r = Rewriter::new(&img).rewrite(poly, &req).unwrap();
            let report = verify(&img, poly, &req, &r, &opts);
            assert!(report.passed());
            report
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
