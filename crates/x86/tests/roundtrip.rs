//! Property-based encode/decode roundtrip tests for the x86 subset.
//!
//! Invariants:
//!  1. `decode(encode(i)) == i` for every encodable instruction.
//!  2. Decoding arbitrary bytes never panics.
//!  3. If arbitrary bytes decode, re-encoding and re-decoding is stable
//!     (decode∘encode is idempotent on the decoded image).

use brew_x86::prelude::*;
use proptest::prelude::*;

const BASE: u64 = 0x40_0000;

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(Gpr::from_number)
}

fn arb_xmm() -> impl Strategy<Value = Xmm> {
    (0u8..16).prop_map(Xmm::from_number)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W32), Just(Width::W64)]
}

fn arb_mem() -> impl Strategy<Value = MemRef> {
    (
        proptest::option::of(arb_gpr()),
        proptest::option::of((
            arb_gpr().prop_filter("rsp can't index", |r| *r != Gpr::Rsp),
            0u8..4,
        )),
        any::<i32>(),
    )
        .prop_map(|(base, index, disp)| MemRef {
            base,
            index: index.map(|(r, s)| (r, 1u8 << s)),
            disp,
        })
}

fn arb_rm() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_gpr().prop_map(Operand::Reg),
        arb_mem().prop_map(Operand::Mem)
    ]
}

fn arb_xmm_rm() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_xmm().prop_map(Operand::Xmm),
        arb_mem().prop_map(Operand::Mem)
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..16).prop_map(Cond::from_code)
}

fn arb_target() -> impl Strategy<Value = u64> {
    // Within rel32 range of BASE.
    (-0x10_0000i64..0x10_0000).prop_map(|d| BASE.wrapping_add(d as u64))
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Cmp),
    ]
}

fn arb_sse_op() -> impl Strategy<Value = SseOp> {
    prop_oneof![
        Just(SseOp::Addsd),
        Just(SseOp::Subsd),
        Just(SseOp::Mulsd),
        Just(SseOp::Divsd),
        Just(SseOp::Addpd),
        Just(SseOp::Subpd),
        Just(SseOp::Mulpd),
        Just(SseOp::Divpd),
        Just(SseOp::Xorpd),
        Just(SseOp::Unpcklpd),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        // mov reg <- reg/mem/imm
        (arb_width(), arb_gpr(), arb_rm()).prop_map(|(w, d, s)| Inst::Mov {
            w,
            dst: Operand::Reg(d),
            src: s
        }),
        (arb_width(), arb_gpr(), any::<i32>()).prop_map(|(w, d, i)| Inst::Mov {
            w,
            dst: Operand::Reg(d),
            src: Operand::Imm(i as i64)
        }),
        (arb_width(), arb_mem(), arb_gpr()).prop_map(|(w, m, s)| Inst::Mov {
            w,
            dst: Operand::Mem(m),
            src: Operand::Reg(s)
        }),
        (arb_width(), arb_mem(), any::<i32>()).prop_map(|(w, m, i)| Inst::Mov {
            w,
            dst: Operand::Mem(m),
            src: Operand::Imm(i as i64)
        }),
        (arb_gpr(), any::<u64>()).prop_map(|(d, imm)| Inst::MovAbs { dst: d, imm }),
        (arb_gpr(), arb_rm()).prop_map(|(d, s)| Inst::Movsxd { dst: d, src: s }),
        (arb_width(), arb_gpr(), arb_rm()).prop_map(|(w, d, s)| Inst::Movzx8 { w, dst: d, src: s }),
        (arb_gpr(), arb_mem()).prop_map(|(d, m)| Inst::Lea { dst: d, src: m }),
        // ALU forms
        (arb_alu_op(), arb_width(), arb_gpr(), arb_rm()).prop_map(|(op, w, d, s)| Inst::Alu {
            op,
            w,
            dst: Operand::Reg(d),
            src: s
        }),
        (arb_alu_op(), arb_width(), arb_mem(), arb_gpr()).prop_map(|(op, w, m, s)| Inst::Alu {
            op,
            w,
            dst: Operand::Mem(m),
            src: Operand::Reg(s)
        }),
        (arb_alu_op(), arb_width(), arb_rm(), any::<i32>()).prop_map(|(op, w, d, i)| Inst::Alu {
            op,
            w,
            dst: d,
            src: Operand::Imm(i as i64)
        }),
        (arb_width(), arb_rm(), arb_gpr()).prop_map(|(w, a, b)| Inst::Test {
            w,
            a,
            b: Operand::Reg(b)
        }),
        (arb_width(), arb_gpr(), arb_rm()).prop_map(|(w, d, s)| Inst::Imul { w, dst: d, src: s }),
        (arb_width(), arb_gpr(), arb_rm(), any::<i32>()).prop_map(|(w, d, s, i)| Inst::ImulImm {
            w,
            dst: d,
            src: s,
            imm: i
        }),
        (
            prop_oneof![
                Just(UnOp::Neg),
                Just(UnOp::Not),
                Just(UnOp::Inc),
                Just(UnOp::Dec)
            ],
            arb_width(),
            arb_rm()
        )
            .prop_map(|(op, w, d)| Inst::Unary { op, w, dst: d }),
        (
            prop_oneof![Just(ShOp::Shl), Just(ShOp::Shr), Just(ShOp::Sar)],
            arb_width(),
            arb_rm(),
            prop_oneof![(0u8..64).prop_map(ShiftCount::Imm), Just(ShiftCount::Cl)]
        )
            .prop_map(|(op, w, d, c)| Inst::Shift {
                op,
                w,
                dst: d,
                count: c
            }),
        arb_width().prop_map(|w| Inst::Cqo { w }),
        (arb_width(), arb_rm()).prop_map(|(w, s)| Inst::Idiv { w, src: s }),
        arb_gpr().prop_map(|r| Inst::Push {
            src: Operand::Reg(r)
        }),
        arb_mem().prop_map(|m| Inst::Push {
            src: Operand::Mem(m)
        }),
        any::<i32>().prop_map(|i| Inst::Push {
            src: Operand::Imm(i as i64)
        }),
        arb_gpr().prop_map(|r| Inst::Pop {
            dst: Operand::Reg(r)
        }),
        arb_mem().prop_map(|m| Inst::Pop {
            dst: Operand::Mem(m)
        }),
        arb_target().prop_map(|t| Inst::CallRel { target: t }),
        arb_rm().prop_map(|s| Inst::CallInd { src: s }),
        Just(Inst::Ret),
        arb_target().prop_map(|t| Inst::JmpRel { target: t }),
        arb_rm().prop_map(|s| Inst::JmpInd { src: s }),
        (arb_cond(), arb_target()).prop_map(|(c, t)| Inst::Jcc { cond: c, target: t }),
        (arb_cond(), arb_rm()).prop_map(|(c, d)| Inst::Setcc { cond: c, dst: d }),
        // SSE
        (arb_xmm(), arb_xmm_rm()).prop_map(|(d, s)| Inst::MovSd {
            dst: Operand::Xmm(d),
            src: s
        }),
        (arb_mem(), arb_xmm()).prop_map(|(m, s)| Inst::MovSd {
            dst: Operand::Mem(m),
            src: Operand::Xmm(s)
        }),
        (arb_xmm(), arb_xmm_rm()).prop_map(|(d, s)| Inst::MovUpd {
            dst: Operand::Xmm(d),
            src: s
        }),
        (arb_mem(), arb_xmm()).prop_map(|(m, s)| Inst::MovUpd {
            dst: Operand::Mem(m),
            src: Operand::Xmm(s)
        }),
        (arb_sse_op(), arb_xmm(), arb_xmm_rm()).prop_map(|(op, d, s)| Inst::Sse {
            op,
            dst: d,
            src: s
        }),
        (arb_xmm(), arb_xmm_rm()).prop_map(|(a, b)| Inst::Ucomisd { a, b }),
        (arb_width(), arb_xmm(), arb_rm()).prop_map(|(w, d, s)| Inst::Cvtsi2sd {
            w,
            dst: d,
            src: s
        }),
        (arb_width(), arb_gpr(), arb_xmm_rm()).prop_map(|(w, d, s)| Inst::Cvttsd2si {
            w,
            dst: d,
            src: s
        }),
        Just(Inst::Nop),
        Just(Inst::Ud2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let mut bytes = Vec::new();
        let n = encode(&inst, BASE, &mut bytes).unwrap();
        prop_assert_eq!(n, bytes.len());
        prop_assert!(n <= 15, "x86 instructions are at most 15 bytes");
        let d = decode(&bytes, BASE).unwrap();
        prop_assert_eq!(d.inst, inst, "bytes {:02x?}", bytes);
        prop_assert_eq!(d.len, n);
    }

    #[test]
    fn encoded_len_agrees(inst in arb_inst()) {
        let mut bytes = Vec::new();
        // Length must not depend on the placement address.
        let n1 = encode(&inst, BASE, &mut bytes).unwrap();
        prop_assert_eq!(encoded_len(&inst).unwrap(), n1);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..18)) {
        let _ = decode(&bytes, BASE);
    }

    #[test]
    fn decode_encode_decode_stable(bytes in proptest::collection::vec(any::<u8>(), 1..16)) {
        if let Ok(d) = decode(&bytes, BASE) {
            let mut re = Vec::new();
            // Some decoded instructions re-encode differently (canonical
            // forms), but must decode back to the same instruction.
            if encode(&d.inst, BASE, &mut re).is_ok() {
                let d2 = decode(&re, BASE).unwrap();
                prop_assert_eq!(d2.inst, d.inst);
            }
        }
    }

    #[test]
    fn alu_matches_wide_arithmetic(a in any::<u64>(), b in any::<u64>()) {
        // Cross-check 64-bit add/sub flags against 128-bit arithmetic.
        let (r, f) = brew_x86::alu::alu(AluOp::Add, Width::W64, a, b);
        prop_assert_eq!(r, a.wrapping_add(b));
        prop_assert_eq!(f.cf, (a as u128 + b as u128) > u64::MAX as u128);
        let exact = a as i64 as i128 + b as i64 as i128;
        prop_assert_eq!(f.of, exact != (r as i64) as i128);

        let (r, f) = brew_x86::alu::alu(AluOp::Sub, Width::W64, a, b);
        prop_assert_eq!(r, a.wrapping_sub(b));
        prop_assert_eq!(f.cf, a < b);
        let exact = a as i64 as i128 - b as i64 as i128;
        prop_assert_eq!(f.of, exact != (r as i64) as i128);
        prop_assert_eq!(f.zf, a == b);
    }

    #[test]
    fn imul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (r, f) = brew_x86::alu::imul(Width::W64, a as u64, b as u64);
        let exact = a as i128 * b as i128;
        prop_assert_eq!(r as i64, a.wrapping_mul(b));
        prop_assert_eq!(f.of, exact != (r as i64) as i128);
    }

    #[test]
    fn idiv_matches_rust_division(n in any::<i64>(), d in any::<i64>()) {
        let hi = if n < 0 { u64::MAX } else { 0 };
        let res = brew_x86::alu::idiv(Width::W64, hi, n as u64, d as u64);
        if d == 0 || (n == i64::MIN && d == -1) {
            prop_assert_eq!(res, None);
        } else {
            prop_assert_eq!(res, Some(((n / d) as u64, (n % d) as u64)));
        }
    }
}

/// Packed-double subset only (the vectorizer's working set).
fn arb_pd_op() -> impl Strategy<Value = SseOp> {
    prop_oneof![
        Just(SseOp::Addpd),
        Just(SseOp::Subpd),
        Just(SseOp::Mulpd),
        Just(SseOp::Divpd),
        Just(SseOp::Xorpd),
        Just(SseOp::Unpcklpd),
    ]
}

/// An 8-byte-aligned absolute address in the positive-disp32 range, the
/// shape of every literal-pool slot emitted variants load from.
fn arb_pool_addr() -> impl Strategy<Value = i32> {
    (0x10_0000i32..0x7FF0_0000).prop_map(|a| a & !7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// PD ops against a literal-pool operand roundtrip exactly, and the
    /// encoding is placement-independent: absolute `[disp32]` bytes must
    /// be identical wherever the instruction lands — the proof that the
    /// subset never silently substitutes a rip-relative form.
    #[test]
    fn pd_literal_pool_roundtrips_placement_independent(
        op in arb_pd_op(),
        d in 0u8..16,
        addr in arb_pool_addr(),
    ) {
        let inst = Inst::Sse {
            op,
            dst: Xmm::from_number(d),
            src: Operand::Mem(MemRef::abs(addr)),
        };
        let mut bytes = Vec::new();
        let n = encode(&inst, BASE, &mut bytes).unwrap();
        let dec = decode(&bytes, BASE).unwrap();
        prop_assert_eq!(&dec.inst, &inst, "bytes {:02x?}", bytes);
        prop_assert_eq!(dec.len, n);

        let mut elsewhere = Vec::new();
        encode(&inst, BASE + 0x1_2345, &mut elsewhere).unwrap();
        prop_assert_eq!(bytes, elsewhere, "[abs32] must not depend on placement");
    }

    /// The literal-pool movs (packed and scalar, load and store)
    /// roundtrip and stay placement-independent too.
    #[test]
    fn literal_pool_movs_roundtrip(
        d in 0u8..16,
        addr in arb_pool_addr(),
        packed in any::<bool>(),
        load in any::<bool>(),
    ) {
        let xmm = Operand::Xmm(Xmm::from_number(d));
        let mem = Operand::Mem(MemRef::abs(addr));
        let inst = match (packed, load) {
            (true, true) => Inst::MovUpd { dst: xmm, src: mem },
            (true, false) => Inst::MovUpd { dst: mem, src: xmm },
            (false, true) => Inst::MovSd { dst: xmm, src: mem },
            (false, false) => Inst::MovSd { dst: mem, src: xmm },
        };
        let mut bytes = Vec::new();
        encode(&inst, BASE, &mut bytes).unwrap();
        let dec = decode(&bytes, BASE).unwrap();
        prop_assert_eq!(&dec.inst, &inst, "bytes {:02x?}", bytes);
        let mut elsewhere = Vec::new();
        encode(&inst, BASE + 0x6_7890, &mut elsewhere).unwrap();
        prop_assert_eq!(bytes, elsewhere);
    }

    /// Indexed literal-pool access (`[index*scale + disp32]`, the table
    /// form) roundtrips for PD operands.
    #[test]
    fn pd_indexed_pool_roundtrip(
        op in arb_pd_op(),
        d in 0u8..16,
        idx in arb_gpr().prop_filter("rsp can't index", |r| *r != Gpr::Rsp),
        scale in 0u8..4,
        addr in arb_pool_addr(),
    ) {
        let inst = Inst::Sse {
            op,
            dst: Xmm::from_number(d),
            src: Operand::Mem(MemRef {
                base: None,
                index: Some((idx, 1u8 << scale)),
                disp: addr,
            }),
        };
        let mut bytes = Vec::new();
        encode(&inst, BASE, &mut bytes).unwrap();
        let dec = decode(&bytes, BASE).unwrap();
        prop_assert_eq!(&dec.inst, &inst, "bytes {:02x?}", bytes);
    }

    /// The subset rejects rip-relative (`mod=00 rm=101`) by design; a PD
    /// instruction in that form must *fail* to decode, never misdecode
    /// as something else (e.g. as an absolute access).
    #[test]
    fn rip_relative_pd_forms_reject_not_misread(
        op in arb_pd_op(),
        d in 0u8..8, // xmm0-7: no REX prefix, fixed byte layout
        addr in arb_pool_addr(),
    ) {
        let inst = Inst::Sse {
            op,
            dst: Xmm::from_number(d),
            src: Operand::Mem(MemRef::abs(addr)),
        };
        let mut bytes = Vec::new();
        encode(&inst, BASE, &mut bytes).unwrap();
        // 66 0F <op> <modrm mod=00 reg rm=100> <sib 0x25> <disp32>
        prop_assert_eq!(bytes.len(), 9);
        prop_assert_eq!(bytes[3] & 0xC7, 0x04, "absolute form uses mod=00 rm=100");
        prop_assert_eq!(bytes[4], 0x25, "SIB base=101, no index");
        // Rewrite into the rip-relative encoding of the same disp.
        let mut rip = bytes.clone();
        rip[3] = (rip[3] & 0x38) | 0x05; // mod=00 rm=101
        rip.remove(4); // drop the SIB byte
        let err = decode(&rip, BASE).unwrap_err();
        let msg = format!("{err:?}").to_lowercase();
        prop_assert!(msg.contains("rip"), "wrong rejection: {}", msg);
    }
}

#[test]
fn w8_mov_forms_roundtrip() {
    for inst in [
        Inst::Mov {
            w: Width::W8,
            dst: Operand::Reg(Gpr::Rax),
            src: Operand::Imm(1),
        },
        Inst::Mov {
            w: Width::W8,
            dst: Operand::Reg(Gpr::Rdi),
            src: Operand::Imm(-1),
        },
        Inst::Mov {
            w: Width::W8,
            dst: Operand::Reg(Gpr::R9),
            src: Operand::Imm(0x7F),
        },
        Inst::Mov {
            w: Width::W8,
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, 8)),
            src: Operand::Imm(5),
        },
        Inst::Mov {
            w: Width::W8,
            dst: Operand::Reg(Gpr::Rax),
            src: Operand::Reg(Gpr::Rcx),
        },
        Inst::Mov {
            w: Width::W8,
            dst: Operand::Mem(MemRef::base(Gpr::Rdi)),
            src: Operand::Reg(Gpr::Rsi),
        },
        Inst::Mov {
            w: Width::W8,
            dst: Operand::Reg(Gpr::Rbx),
            src: Operand::Mem(MemRef::abs(0x601000)),
        },
    ] {
        let mut bytes = Vec::new();
        let n = encode(&inst, BASE, &mut bytes).unwrap();
        let d = decode(&bytes, BASE).unwrap();
        assert_eq!(d.inst, inst, "{inst} -> {bytes:02x?}");
        assert_eq!(d.len, n);
    }
}

#[test]
fn w8_mov_imm_is_one_byte_immediate() {
    // mov byte [rdi], 5 must be C6 07 05 — a 1-byte immediate, never imm32.
    let mut bytes = Vec::new();
    encode(
        &Inst::Mov {
            w: Width::W8,
            dst: Operand::Mem(MemRef::base(Gpr::Rdi)),
            src: Operand::Imm(5),
        },
        0,
        &mut bytes,
    )
    .unwrap();
    assert_eq!(bytes, vec![0xC6, 0x07, 0x05]);
}

#[test]
fn w8_mov_spl_needs_bare_rex() {
    // mov sil, 1 needs REX 40 to address SIL rather than DH.
    let mut bytes = Vec::new();
    encode(
        &Inst::Mov {
            w: Width::W8,
            dst: Operand::Reg(Gpr::Rsi),
            src: Operand::Imm(1),
        },
        0,
        &mut bytes,
    )
    .unwrap();
    assert_eq!(bytes, vec![0x40, 0xC6, 0xC6, 0x01]);
}
