//! Decoder robustness under arbitrary input: random byte soup must decode
//! to `Ok` or a clean `Err` — never panic, never loop, never report a
//! length that runs past the input. The static verifier re-decodes every
//! emitted variant, so the decoder is on the hot path for untrusted-looking
//! bytes (a corrupted JIT region looks exactly like random soup).

use brew_x86::decode::{decode, decode_all};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decode_never_panics_and_lengths_are_sane(
        bytes in proptest::collection::vec(any::<u8>(), 0..32),
        addr in any::<u32>(),
    ) {
        let addr = addr as u64;
        if let Ok(d) = decode(&bytes, addr) {
            prop_assert!(d.len > 0, "zero-length decode would loop forever");
            prop_assert!(
                d.len <= bytes.len(),
                "decoded length {} overruns the {}-byte input",
                d.len,
                bytes.len()
            );
        }
    }

    #[test]
    fn decode_all_terminates_and_accounts_for_every_byte(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        addr in any::<u32>(),
    ) {
        let addr = addr as u64;
        let (insts, err) = decode_all(&bytes, addr);
        // Addresses must be strictly increasing and inside the input.
        let mut prev = None;
        for (at, _) in &insts {
            prop_assert!(*at >= addr && *at < addr + bytes.len() as u64);
            if let Some(p) = prev {
                prop_assert!(*at > p, "decode_all did not advance");
            }
            prev = Some(*at);
        }
        // Error-free decodes must consume the entire input: re-decoding
        // from each reported address reproduces the same instruction.
        if err.is_none() {
            let mut pos = 0usize;
            for (at, inst) in &insts {
                prop_assert_eq!(*at, addr + pos as u64);
                let d = decode(&bytes[pos..], *at).expect("reported address must re-decode");
                prop_assert_eq!(&d.inst, inst);
                pos += d.len;
            }
            prop_assert_eq!(pos, bytes.len(), "error-free decode must cover the input");
        }
    }

    #[test]
    fn prefix_soup_never_hangs(
        prefixes in proptest::collection::vec(prop_oneof![Just(0x66u8), Just(0xF2u8)], 0..16),
        tail in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        // Runs of understood prefixes with no opcode are the classic
        // decoder hang; they must produce a clean truncation error.
        let mut bytes = prefixes;
        bytes.extend(tail);
        let _ = decode(&bytes, 0x40_0000);
    }
}
