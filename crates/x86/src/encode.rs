//! Machine-code encoder for the supported x86-64 subset.
//!
//! The encoder always emits the rel32 form for branches (never rel8), which
//! makes every instruction's encoded length independent of where it is
//! placed — the rewriter's layout pass depends on that property.

use crate::alu::{AluOp, ShOp, UnOp};
use crate::inst::{Inst, ShiftCount, SseOp};
use crate::operand::{MemRef, Operand};
use crate::reg::{Gpr, Width};
use std::fmt;

/// Errors produced while lowering a decoded instruction to bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit the instruction's immediate field.
    ImmTooLarge(i64),
    /// A rel32 branch displacement overflowed 32 bits.
    RelOutOfRange {
        /// Address of the branch instruction.
        from: u64,
        /// Branch target.
        to: u64,
    },
    /// The operand combination has no encoding in the subset.
    BadOperands(&'static str),
    /// RSP cannot be used as an index register.
    RspIndex,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmTooLarge(i) => write!(f, "immediate {i:#x} too large for field"),
            EncodeError::RelOutOfRange { from, to } => {
                write!(f, "rel32 out of range: {from:#x} -> {to:#x}")
            }
            EncodeError::BadOperands(m) => write!(f, "unencodable operands: {m}"),
            EncodeError::RspIndex => write!(f, "rsp cannot be an index register"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Immediate field appended after ModRM/SIB/disp.
#[derive(Clone, Copy)]
enum Imm {
    None,
    I8(i8),
    I32(i32),
}

/// The r/m side of a ModRM byte.
#[derive(Clone, Copy)]
enum Rm {
    Reg(u8),
    Mem(MemRef),
}

/// Emit one full instruction: optional legacy prefix, REX, opcode bytes,
/// ModRM + SIB + displacement, immediate.
///
/// `force_rex` is set for byte-register access to SPL/BPL/SIL/DIL.
#[allow(clippy::too_many_arguments)]
fn emit(
    out: &mut Vec<u8>,
    prefix: Option<u8>,
    rex_w: bool,
    opcode: &[u8],
    reg: u8,
    rm: Rm,
    imm: Imm,
    force_rex: bool,
) -> Result<(), EncodeError> {
    if let Some(p) = prefix {
        out.push(p);
    }
    // Compute REX bits.
    let r = (reg >> 3) & 1;
    let (b, x) = match rm {
        Rm::Reg(n) => ((n >> 3) & 1, 0),
        Rm::Mem(m) => {
            if let Some((idx, _)) = m.index {
                if idx == Gpr::Rsp {
                    return Err(EncodeError::RspIndex);
                }
            }
            let b = m.base.map_or(0, |g| (g.number() >> 3) & 1);
            let x = m.index.map_or(0, |(g, _)| (g.number() >> 3) & 1);
            (b, x)
        }
    };
    let rex = 0x40 | ((rex_w as u8) << 3) | (r << 2) | (x << 1) | b;
    if rex != 0x40 || force_rex {
        out.push(rex);
    }
    out.extend_from_slice(opcode);

    // ModRM / SIB / displacement.
    let reg3 = reg & 7;
    match rm {
        Rm::Reg(n) => out.push(0xC0 | (reg3 << 3) | (n & 7)),
        Rm::Mem(m) => encode_mem(out, reg3, &m)?,
    }

    match imm {
        Imm::None => {}
        Imm::I8(v) => out.push(v as u8),
        Imm::I32(v) => out.extend_from_slice(&v.to_le_bytes()),
    }
    Ok(())
}

/// Encode ModRM.mod/rm + SIB + disp for a memory reference.
fn encode_mem(out: &mut Vec<u8>, reg3: u8, m: &MemRef) -> Result<(), EncodeError> {
    match (m.base, m.index) {
        (None, None) => {
            // [disp32] absolute: mod=00 rm=100, SIB base=101 index=100.
            out.push(reg3 << 3 | 0b100);
            out.push(0x25);
            out.extend_from_slice(&m.disp.to_le_bytes());
        }
        (None, Some((idx, scale))) => {
            // [index*scale + disp32]: mod=00 rm=100, SIB base=101.
            out.push(reg3 << 3 | 0b100);
            out.push(scale_bits(scale)? << 6 | (idx.number() & 7) << 3 | 0b101);
            out.extend_from_slice(&m.disp.to_le_bytes());
        }
        (Some(base), index) => {
            let base3 = base.number() & 7;
            let needs_sib = index.is_some() || base3 == 0b100; // rsp/r12
                                                               // rbp/r13 cannot use mod=00 (that means disp32/RIP); force disp8.
            let (modbits, disp): (u8, &[u8]) = if m.disp == 0 && base3 != 0b101 {
                (0b00, &[])
            } else if let Ok(d8) = i8::try_from(m.disp) {
                (0b01, &[d8 as u8][..])
            } else {
                (0b10, &m.disp.to_le_bytes()[..])
            };
            // Copy disp before mutating out.
            let disp: Vec<u8> = disp.to_vec();
            if needs_sib {
                out.push(modbits << 6 | reg3 << 3 | 0b100);
                let (idx3, scale) = match index {
                    Some((idx, s)) => (idx.number() & 7, scale_bits(s)?),
                    None => (0b100, 0), // no index
                };
                out.push(scale << 6 | idx3 << 3 | base3);
            } else {
                out.push(modbits << 6 | reg3 << 3 | base3);
            }
            out.extend_from_slice(&disp);
        }
    }
    Ok(())
}

fn scale_bits(s: u8) -> Result<u8, EncodeError> {
    match s {
        1 => Ok(0),
        2 => Ok(1),
        4 => Ok(2),
        8 => Ok(3),
        // A synthesized MemRef can carry any scale; reject it as an
        // encoding error rather than aborting the process.
        _ => Err(EncodeError::BadOperands("invalid SIB scale")),
    }
}

fn rm_of(op: &Operand) -> Result<Rm, EncodeError> {
    match op {
        Operand::Reg(r) => Ok(Rm::Reg(r.number())),
        Operand::Xmm(x) => Ok(Rm::Reg(x.number())),
        Operand::Mem(m) => Ok(Rm::Mem(*m)),
        Operand::Imm(_) => Err(EncodeError::BadOperands("immediate in r/m position")),
    }
}

fn imm32(v: i64) -> Result<Imm, EncodeError> {
    i32::try_from(v)
        .map(Imm::I32)
        .map_err(|_| EncodeError::ImmTooLarge(v))
}

fn rex_w(w: Width) -> bool {
    w == Width::W64
}

/// True when an 8-bit register operand needs a REX prefix to address
/// SPL/BPL/SIL/DIL instead of AH/CH/DH/BH.
fn byte_reg_forces_rex(op: &Operand) -> bool {
    matches!(op, Operand::Reg(r) if (4..8).contains(&r.number()))
}

fn rel32(out: &mut Vec<u8>, addr: u64, prefix_len: usize, target: u64) -> Result<(), EncodeError> {
    // rel is computed from the end of the instruction: addr + prefix + 4.
    let end = addr.wrapping_add(prefix_len as u64 + 4);
    let rel = target.wrapping_sub(end) as i64;
    let rel = i32::try_from(rel).map_err(|_| EncodeError::RelOutOfRange {
        from: addr,
        to: target,
    })?;
    out.extend_from_slice(&rel.to_le_bytes());
    Ok(())
}

fn alu_opcodes(op: AluOp) -> (u8, u8, u8) {
    // (store-form `op r/m, r`, load-form `op r, r/m`, /digit for 81/83)
    match op {
        AluOp::Add => (0x01, 0x03, 0),
        AluOp::Or => (0x09, 0x0B, 1),
        AluOp::And => (0x21, 0x23, 4),
        AluOp::Sub => (0x29, 0x2B, 5),
        AluOp::Xor => (0x31, 0x33, 6),
        AluOp::Cmp => (0x39, 0x3B, 7),
    }
}

fn sse_arith(op: SseOp) -> (u8, u8) {
    // (mandatory prefix, opcode after 0F)
    match op {
        SseOp::Addsd => (0xF2, 0x58),
        SseOp::Mulsd => (0xF2, 0x59),
        SseOp::Subsd => (0xF2, 0x5C),
        SseOp::Divsd => (0xF2, 0x5E),
        SseOp::Addpd => (0x66, 0x58),
        SseOp::Mulpd => (0x66, 0x59),
        SseOp::Subpd => (0x66, 0x5C),
        SseOp::Divpd => (0x66, 0x5E),
        SseOp::Xorpd => (0x66, 0x57),
        SseOp::Unpcklpd => (0x66, 0x14),
    }
}

/// Encode `inst` as if placed at absolute address `addr`, appending the bytes
/// to `out`. Returns the encoded length.
pub fn encode(inst: &Inst, addr: u64, out: &mut Vec<u8>) -> Result<usize, EncodeError> {
    let start = out.len();
    match inst {
        Inst::Mov {
            w: Width::W8,
            dst,
            src,
        } => match (dst, src) {
            // Byte moves: C6 /0 imm8, 88/8A /r.
            (d @ (Operand::Reg(_) | Operand::Mem(_)), Operand::Imm(v)) => {
                let v8 = i8::try_from(*v)
                    .or_else(|_| u8::try_from(*v).map(|b| b as i8))
                    .map_err(|_| EncodeError::ImmTooLarge(*v))?;
                let force = byte_reg_forces_rex(d);
                emit(out, None, false, &[0xC6], 0, rm_of(d)?, Imm::I8(v8), force)?
            }
            (Operand::Reg(d), src @ (Operand::Reg(_) | Operand::Mem(_))) => {
                let force = byte_reg_forces_rex(dst) || byte_reg_forces_rex(src);
                emit(
                    out,
                    None,
                    false,
                    &[0x8A],
                    d.number(),
                    rm_of(src)?,
                    Imm::None,
                    force,
                )?
            }
            (Operand::Mem(m), s @ Operand::Reg(_)) => {
                let force = byte_reg_forces_rex(s);
                let Operand::Reg(sr) = s else {
                    return Err(EncodeError::BadOperands(
                        "byte store needs a register source",
                    ));
                };
                emit(
                    out,
                    None,
                    false,
                    &[0x88],
                    sr.number(),
                    Rm::Mem(*m),
                    Imm::None,
                    force,
                )?
            }
            _ => return Err(EncodeError::BadOperands("mov8")),
        },
        Inst::Mov { w, dst, src } => match (dst, src) {
            (Operand::Reg(d), Operand::Imm(v)) => {
                // C7 /0 imm32 (sign-extended for W64).
                emit(
                    out,
                    None,
                    rex_w(*w),
                    &[0xC7],
                    0,
                    Rm::Reg(d.number()),
                    imm32(*v)?,
                    false,
                )?
            }
            (Operand::Mem(m), Operand::Imm(v)) => emit(
                out,
                None,
                rex_w(*w),
                &[0xC7],
                0,
                Rm::Mem(*m),
                imm32(*v)?,
                false,
            )?,
            (Operand::Reg(d), src @ (Operand::Reg(_) | Operand::Mem(_))) => emit(
                out,
                None,
                rex_w(*w),
                &[0x8B],
                d.number(),
                rm_of(src)?,
                Imm::None,
                false,
            )?,
            (Operand::Mem(m), Operand::Reg(s)) => emit(
                out,
                None,
                rex_w(*w),
                &[0x89],
                s.number(),
                Rm::Mem(*m),
                Imm::None,
                false,
            )?,
            _ => return Err(EncodeError::BadOperands("mov")),
        },
        Inst::MovAbs { dst, imm } => {
            // REX.W B8+r imm64.
            let n = dst.number();
            out.push(0x48 | ((n >> 3) & 1));
            out.push(0xB8 + (n & 7));
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::Movsxd { dst, src } => emit(
            out,
            None,
            true,
            &[0x63],
            dst.number(),
            rm_of(src)?,
            Imm::None,
            false,
        )?,
        Inst::Movzx8 { w, dst, src } => {
            let force = byte_reg_forces_rex(src);
            emit(
                out,
                None,
                rex_w(*w),
                &[0x0F, 0xB6],
                dst.number(),
                rm_of(src)?,
                Imm::None,
                force,
            )?
        }
        Inst::Lea { dst, src } => emit(
            out,
            None,
            true,
            &[0x8D],
            dst.number(),
            Rm::Mem(*src),
            Imm::None,
            false,
        )?,
        Inst::Alu { op, w, dst, src } => {
            let (store, load, digit) = alu_opcodes(*op);
            match (dst, src) {
                (d @ (Operand::Reg(_) | Operand::Mem(_)), Operand::Imm(v)) => {
                    if let Ok(v8) = i8::try_from(*v) {
                        emit(
                            out,
                            None,
                            rex_w(*w),
                            &[0x83],
                            digit,
                            rm_of(d)?,
                            Imm::I8(v8),
                            false,
                        )?
                    } else {
                        emit(
                            out,
                            None,
                            rex_w(*w),
                            &[0x81],
                            digit,
                            rm_of(d)?,
                            imm32(*v)?,
                            false,
                        )?
                    }
                }
                (Operand::Reg(d), s @ (Operand::Reg(_) | Operand::Mem(_))) => emit(
                    out,
                    None,
                    rex_w(*w),
                    &[load],
                    d.number(),
                    rm_of(s)?,
                    Imm::None,
                    false,
                )?,
                (Operand::Mem(m), Operand::Reg(s)) => emit(
                    out,
                    None,
                    rex_w(*w),
                    &[store],
                    s.number(),
                    Rm::Mem(*m),
                    Imm::None,
                    false,
                )?,
                _ => return Err(EncodeError::BadOperands("alu")),
            }
        }
        Inst::Test { w, a, b } => match (a, b) {
            (a @ (Operand::Reg(_) | Operand::Mem(_)), Operand::Reg(r)) => emit(
                out,
                None,
                rex_w(*w),
                &[0x85],
                r.number(),
                rm_of(a)?,
                Imm::None,
                false,
            )?,
            (a @ (Operand::Reg(_) | Operand::Mem(_)), Operand::Imm(v)) => emit(
                out,
                None,
                rex_w(*w),
                &[0xF7],
                0,
                rm_of(a)?,
                imm32(*v)?,
                false,
            )?,
            _ => return Err(EncodeError::BadOperands("test")),
        },
        Inst::Imul { w, dst, src } => emit(
            out,
            None,
            rex_w(*w),
            &[0x0F, 0xAF],
            dst.number(),
            rm_of(src)?,
            Imm::None,
            false,
        )?,
        Inst::ImulImm { w, dst, src, imm } => {
            if let Ok(v8) = i8::try_from(*imm) {
                emit(
                    out,
                    None,
                    rex_w(*w),
                    &[0x6B],
                    dst.number(),
                    rm_of(src)?,
                    Imm::I8(v8),
                    false,
                )?
            } else {
                emit(
                    out,
                    None,
                    rex_w(*w),
                    &[0x69],
                    dst.number(),
                    rm_of(src)?,
                    Imm::I32(*imm),
                    false,
                )?
            }
        }
        Inst::Unary { op, w, dst } => {
            let (opc, digit) = match op {
                UnOp::Not => (0xF7, 2),
                UnOp::Neg => (0xF7, 3),
                UnOp::Inc => (0xFF, 0),
                UnOp::Dec => (0xFF, 1),
            };
            emit(
                out,
                None,
                rex_w(*w),
                &[opc],
                digit,
                rm_of(dst)?,
                Imm::None,
                false,
            )?
        }
        Inst::Shift { op, w, dst, count } => {
            let digit = match op {
                ShOp::Shl => 4,
                ShOp::Shr => 5,
                ShOp::Sar => 7,
            };
            match count {
                ShiftCount::Imm(i) => emit(
                    out,
                    None,
                    rex_w(*w),
                    &[0xC1],
                    digit,
                    rm_of(dst)?,
                    Imm::I8(*i as i8),
                    false,
                )?,
                ShiftCount::Cl => emit(
                    out,
                    None,
                    rex_w(*w),
                    &[0xD3],
                    digit,
                    rm_of(dst)?,
                    Imm::None,
                    false,
                )?,
            }
        }
        Inst::Cqo { w } => {
            if rex_w(*w) {
                out.push(0x48);
            }
            out.push(0x99);
        }
        Inst::Idiv { w, src } => emit(
            out,
            None,
            rex_w(*w),
            &[0xF7],
            7,
            rm_of(src)?,
            Imm::None,
            false,
        )?,
        Inst::Push { src } => match src {
            Operand::Reg(r) => {
                let n = r.number();
                if n >= 8 {
                    out.push(0x41);
                }
                out.push(0x50 + (n & 7));
            }
            Operand::Imm(v) => {
                out.push(0x68);
                let v = i32::try_from(*v).map_err(|_| EncodeError::ImmTooLarge(*v))?;
                out.extend_from_slice(&v.to_le_bytes());
            }
            Operand::Mem(m) => emit(out, None, false, &[0xFF], 6, Rm::Mem(*m), Imm::None, false)?,
            _ => return Err(EncodeError::BadOperands("push")),
        },
        Inst::Pop { dst } => match dst {
            Operand::Reg(r) => {
                let n = r.number();
                if n >= 8 {
                    out.push(0x41);
                }
                out.push(0x58 + (n & 7));
            }
            Operand::Mem(m) => emit(out, None, false, &[0x8F], 0, Rm::Mem(*m), Imm::None, false)?,
            _ => return Err(EncodeError::BadOperands("pop")),
        },
        Inst::CallRel { target } => {
            out.push(0xE8);
            rel32(out, addr, 1, *target)?;
        }
        Inst::CallInd { src } => emit(out, None, false, &[0xFF], 2, rm_of(src)?, Imm::None, false)?,
        Inst::Ret => out.push(0xC3),
        Inst::JmpRel { target } => {
            out.push(0xE9);
            rel32(out, addr, 1, *target)?;
        }
        Inst::JmpInd { src } => emit(out, None, false, &[0xFF], 4, rm_of(src)?, Imm::None, false)?,
        Inst::Jcc { cond, target } => {
            out.push(0x0F);
            out.push(0x80 + cond.code());
            rel32(out, addr, 2, *target)?;
        }
        Inst::Setcc { cond, dst } => {
            let force = byte_reg_forces_rex(dst);
            emit(
                out,
                None,
                false,
                &[0x0F, 0x90 + cond.code()],
                0,
                rm_of(dst)?,
                Imm::None,
                force,
            )?
        }
        Inst::MovSd { dst, src } => match (dst, src) {
            (Operand::Xmm(d), s @ (Operand::Xmm(_) | Operand::Mem(_))) => emit(
                out,
                Some(0xF2),
                false,
                &[0x0F, 0x10],
                d.number(),
                rm_of(s)?,
                Imm::None,
                false,
            )?,
            (Operand::Mem(m), Operand::Xmm(s)) => emit(
                out,
                Some(0xF2),
                false,
                &[0x0F, 0x11],
                s.number(),
                Rm::Mem(*m),
                Imm::None,
                false,
            )?,
            _ => return Err(EncodeError::BadOperands("movsd")),
        },
        Inst::MovUpd { dst, src } => match (dst, src) {
            (Operand::Xmm(d), s @ (Operand::Xmm(_) | Operand::Mem(_))) => emit(
                out,
                Some(0x66),
                false,
                &[0x0F, 0x10],
                d.number(),
                rm_of(s)?,
                Imm::None,
                false,
            )?,
            (Operand::Mem(m), Operand::Xmm(s)) => emit(
                out,
                Some(0x66),
                false,
                &[0x0F, 0x11],
                s.number(),
                Rm::Mem(*m),
                Imm::None,
                false,
            )?,
            _ => return Err(EncodeError::BadOperands("movupd")),
        },
        Inst::Sse { op, dst, src } => {
            let (p, opc) = sse_arith(*op);
            emit(
                out,
                Some(p),
                false,
                &[0x0F, opc],
                dst.number(),
                rm_of(src)?,
                Imm::None,
                false,
            )?
        }
        Inst::Ucomisd { a, b } => emit(
            out,
            Some(0x66),
            false,
            &[0x0F, 0x2E],
            a.number(),
            rm_of(b)?,
            Imm::None,
            false,
        )?,
        Inst::Cvtsi2sd { w, dst, src } => emit(
            out,
            Some(0xF2),
            rex_w(*w),
            &[0x0F, 0x2A],
            dst.number(),
            rm_of(src)?,
            Imm::None,
            false,
        )?,
        Inst::Cvttsd2si { w, dst, src } => emit(
            out,
            Some(0xF2),
            rex_w(*w),
            &[0x0F, 0x2C],
            dst.number(),
            rm_of(src)?,
            Imm::None,
            false,
        )?,
        Inst::Nop => out.push(0x90),
        Inst::Ud2 => out.extend_from_slice(&[0x0F, 0x0B]),
    }
    Ok(out.len() - start)
}

/// Encoded length of `inst`, which for this subset never depends on the
/// placement address (branches are always rel32).
pub fn encoded_len(inst: &Inst) -> Result<usize, EncodeError> {
    let mut scratch = Vec::with_capacity(16);
    // Place branch targets next to the (fake) address so rel32 always fits.
    let addr = inst.static_target().unwrap_or(0x1000);
    encode(inst, addr, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::reg::Xmm;

    fn enc(i: Inst) -> Vec<u8> {
        let mut v = Vec::new();
        encode(&i, 0x400000, &mut v).unwrap();
        v
    }

    #[test]
    fn simple_movs() {
        // mov rax, rbx -> REX.W 8B C3
        assert_eq!(
            enc(Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Gpr::Rbx.into()
            }),
            vec![0x48, 0x8B, 0xC3]
        );
        // mov eax, 42 -> C7 C0 2A000000
        assert_eq!(
            enc(Inst::Mov {
                w: Width::W32,
                dst: Gpr::Rax.into(),
                src: Operand::Imm(42)
            }),
            vec![0xC7, 0xC0, 0x2A, 0, 0, 0]
        );
        // movabs r10, 0x1122334455667788
        assert_eq!(
            enc(Inst::MovAbs {
                dst: Gpr::R10,
                imm: 0x1122334455667788
            }),
            vec![0x49, 0xBA, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
    }

    #[test]
    fn mem_forms() {
        // mov rax, [rdi+8] -> 48 8B 47 08
        assert_eq!(
            enc(Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: MemRef::base_disp(Gpr::Rdi, 8).into(),
            }),
            vec![0x48, 0x8B, 0x47, 0x08]
        );
        // mov rax, [rsp] needs SIB -> 48 8B 04 24
        assert_eq!(
            enc(Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: MemRef::base(Gpr::Rsp).into(),
            }),
            vec![0x48, 0x8B, 0x04, 0x24]
        );
        // mov rax, [rbp] must use disp8=0 -> 48 8B 45 00
        assert_eq!(
            enc(Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: MemRef::base(Gpr::Rbp).into(),
            }),
            vec![0x48, 0x8B, 0x45, 0x00]
        );
        // mov rax, [r13] likewise (with REX.B) -> 49 8B 45 00
        assert_eq!(
            enc(Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: MemRef::base(Gpr::R13).into(),
            }),
            vec![0x49, 0x8B, 0x45, 0x00]
        );
        // absolute [0x615100]: 48 8B 04 25 00 51 61 00
        assert_eq!(
            enc(Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: MemRef::abs(0x615100).into(),
            }),
            vec![0x48, 0x8B, 0x04, 0x25, 0x00, 0x51, 0x61, 0x00]
        );
        // mov rax, [rax+rcx*8+0x10] -> 48 8B 44 C8 10
        assert_eq!(
            enc(Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: MemRef::base_index(Gpr::Rax, Gpr::Rcx, 8, 0x10).into(),
            }),
            vec![0x48, 0x8B, 0x44, 0xC8, 0x10]
        );
    }

    #[test]
    fn alu_imm8_vs_imm32() {
        // add rax, 8 -> 48 83 C0 08
        assert_eq!(
            enc(Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Operand::Imm(8),
            }),
            vec![0x48, 0x83, 0xC0, 0x08]
        );
        // sub rsp, 0x200 -> 48 81 EC 00020000
        assert_eq!(
            enc(Inst::Alu {
                op: AluOp::Sub,
                w: Width::W64,
                dst: Gpr::Rsp.into(),
                src: Operand::Imm(0x200),
            }),
            vec![0x48, 0x81, 0xEC, 0x00, 0x02, 0x00, 0x00]
        );
    }

    #[test]
    fn branches_are_rel32() {
        // jmp to next instruction: rel = 0 -> E9 00000000
        let mut v = Vec::new();
        encode(&Inst::JmpRel { target: 0x400005 }, 0x400000, &mut v).unwrap();
        assert_eq!(v, vec![0xE9, 0, 0, 0, 0]);
        // je backward by 0x10 from 0x400000: target = 0x3ffff6, end = 0x400006
        let mut v = Vec::new();
        encode(
            &Inst::Jcc {
                cond: Cond::E,
                target: 0x3FFFF6,
            },
            0x400000,
            &mut v,
        )
        .unwrap();
        assert_eq!(v[..2], [0x0F, 0x84]);
        assert_eq!(i32::from_le_bytes(v[2..6].try_into().unwrap()), -0x10);
    }

    #[test]
    fn sse_forms() {
        // mulsd xmm0, [0x615100] -> F2 0F 59 04 25 ...
        let v = enc(Inst::Sse {
            op: SseOp::Mulsd,
            dst: Xmm::Xmm0,
            src: MemRef::abs(0x615100).into(),
        });
        assert_eq!(&v[..3], &[0xF2, 0x0F, 0x59]);
        // movsd [rsp+8], xmm1 -> F2 0F 11 4C 24 08
        assert_eq!(
            enc(Inst::MovSd {
                dst: MemRef::base_disp(Gpr::Rsp, 8).into(),
                src: Xmm::Xmm1.into(),
            }),
            vec![0xF2, 0x0F, 0x11, 0x4C, 0x24, 0x08]
        );
    }

    #[test]
    fn push_pop_extended_regs() {
        assert_eq!(
            enc(Inst::Push {
                src: Gpr::Rbp.into()
            }),
            vec![0x55]
        );
        assert_eq!(
            enc(Inst::Push {
                src: Gpr::R12.into()
            }),
            vec![0x41, 0x54]
        );
        assert_eq!(
            enc(Inst::Pop {
                dst: Gpr::R15.into()
            }),
            vec![0x41, 0x5F]
        );
    }

    #[test]
    fn setcc_byte_reg_rex() {
        // setne al: no REX. setne dil: needs bare REX 40.
        assert_eq!(
            enc(Inst::Setcc {
                cond: Cond::Ne,
                dst: Gpr::Rax.into()
            }),
            vec![0x0F, 0x95, 0xC0]
        );
        assert_eq!(
            enc(Inst::Setcc {
                cond: Cond::Ne,
                dst: Gpr::Rdi.into()
            }),
            vec![0x40, 0x0F, 0x95, 0xC7]
        );
    }

    #[test]
    fn rsp_index_rejected() {
        let mut v = Vec::new();
        let bad = Inst::Lea {
            dst: Gpr::Rax,
            src: MemRef {
                base: Some(Gpr::Rax),
                index: Some((Gpr::Rsp, 2)),
                disp: 0,
            },
        };
        assert_eq!(encode(&bad, 0, &mut v), Err(EncodeError::RspIndex));
    }

    #[test]
    fn rel_out_of_range() {
        let mut v = Vec::new();
        let err = encode(
            &Inst::JmpRel {
                target: 0x1_0000_0000,
            },
            0,
            &mut v,
        );
        assert!(matches!(err, Err(EncodeError::RelOutOfRange { .. })));
    }

    #[test]
    fn encoded_len_matches_encode() {
        let insts = [
            Inst::Ret,
            Inst::Nop,
            Inst::Cqo { w: Width::W64 },
            Inst::Push {
                src: Gpr::Rbx.into(),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Gpr::Rbx.into(),
            },
            Inst::Lea {
                dst: Gpr::Rcx,
                src: MemRef::base_disp(Gpr::Rsp, -64),
            },
        ];
        for i in insts {
            let mut v = Vec::new();
            let n = encode(&i, 0x400000, &mut v).unwrap();
            assert_eq!(n, encoded_len(&i).unwrap(), "{i}");
            assert_eq!(n, v.len());
        }
    }
}
