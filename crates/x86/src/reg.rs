//! General-purpose and SSE register names for the 64-bit x86 subset.
//!
//! The rewriter, emulator and compiler all address registers through these
//! enums; encodings (the 4-bit register numbers used in ModRM/SIB/REX) are
//! obtained via [`Gpr::number`] / [`Xmm::number`].

use std::fmt;

/// The sixteen 64-bit general-purpose registers.
///
/// Discriminants equal the hardware register numbers (REX.B/R extension bit
/// included), so `Gpr::R8 as u8 == 8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)] // register names are self-describing
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    /// All sixteen registers in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsp,
        Gpr::Rbp,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// Hardware register number (0..16).
    #[inline]
    pub const fn number(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Gpr::number`]; panics on numbers >= 16.
    #[inline]
    pub fn from_number(n: u8) -> Gpr {
        Self::ALL[n as usize]
    }

    /// Integer argument registers in SysV AMD64 order.
    pub const SYSV_ARGS: [Gpr; 6] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx, Gpr::R8, Gpr::R9];

    /// Registers a callee must preserve under the SysV AMD64 ABI.
    pub const SYSV_CALLEE_SAVED: [Gpr; 6] =
        [Gpr::Rbx, Gpr::Rbp, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15];

    /// `true` if a SysV callee must preserve this register (RSP counts:
    /// it must be restored to its entry value before `ret`).
    #[inline]
    pub fn is_callee_saved(self) -> bool {
        matches!(
            self,
            Gpr::Rbx | Gpr::Rbp | Gpr::Rsp | Gpr::R12 | Gpr::R13 | Gpr::R14 | Gpr::R15
        )
    }

    /// 64-bit register name, e.g. `rax`.
    pub fn name64(self) -> &'static str {
        const N: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        N[self.number() as usize]
    }

    /// 32-bit sub-register name, e.g. `eax`.
    pub fn name32(self) -> &'static str {
        const N: [&str; 16] = [
            "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi", "r8d", "r9d", "r10d", "r11d",
            "r12d", "r13d", "r14d", "r15d",
        ];
        N[self.number() as usize]
    }

    /// 8-bit low sub-register name, e.g. `al` (REX form for sil/dil etc.).
    pub fn name8(self) -> &'static str {
        const N: [&str; 16] = [
            "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil", "r8b", "r9b", "r10b", "r11b",
            "r12b", "r13b", "r14b", "r15b",
        ];
        N[self.number() as usize]
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name64())
    }
}

/// The sixteen SSE registers. Discriminants equal hardware numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)] // register names are self-describing
pub enum Xmm {
    Xmm0 = 0,
    Xmm1 = 1,
    Xmm2 = 2,
    Xmm3 = 3,
    Xmm4 = 4,
    Xmm5 = 5,
    Xmm6 = 6,
    Xmm7 = 7,
    Xmm8 = 8,
    Xmm9 = 9,
    Xmm10 = 10,
    Xmm11 = 11,
    Xmm12 = 12,
    Xmm13 = 13,
    Xmm14 = 14,
    Xmm15 = 15,
}

impl Xmm {
    /// All sixteen registers in encoding order.
    pub const ALL: [Xmm; 16] = [
        Xmm::Xmm0,
        Xmm::Xmm1,
        Xmm::Xmm2,
        Xmm::Xmm3,
        Xmm::Xmm4,
        Xmm::Xmm5,
        Xmm::Xmm6,
        Xmm::Xmm7,
        Xmm::Xmm8,
        Xmm::Xmm9,
        Xmm::Xmm10,
        Xmm::Xmm11,
        Xmm::Xmm12,
        Xmm::Xmm13,
        Xmm::Xmm14,
        Xmm::Xmm15,
    ];

    /// Floating-point argument registers in SysV AMD64 order.
    pub const SYSV_ARGS: [Xmm; 8] = [
        Xmm::Xmm0,
        Xmm::Xmm1,
        Xmm::Xmm2,
        Xmm::Xmm3,
        Xmm::Xmm4,
        Xmm::Xmm5,
        Xmm::Xmm6,
        Xmm::Xmm7,
    ];

    /// Hardware register number (0..16).
    #[inline]
    pub const fn number(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Xmm::number`]; panics on numbers >= 16.
    #[inline]
    pub fn from_number(n: u8) -> Xmm {
        Self::ALL[n as usize]
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.number())
    }
}

/// Operand width for integer operations in the supported subset.
///
/// 16-bit operations are deliberately unsupported (neither our compiler nor
/// the rewriter ever produces them); 8-bit exists only for `setcc`/`movzx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// Byte operations (`setcc` destinations, `movzx` sources).
    W8,
    /// 32-bit operations; writes zero-extend into the full register.
    W32,
    /// Full 64-bit operations.
    W64,
}

impl Width {
    /// Size of the operand in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            Width::W8 => 1,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// Size of the operand in bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        (self.bytes() * 8) as u32
    }

    /// Mask selecting the low `bits()` bits of a 64-bit value.
    #[inline]
    pub const fn mask(self) -> u64 {
        match self {
            Width::W8 => 0xFF,
            Width::W32 => 0xFFFF_FFFF,
            Width::W64 => u64::MAX,
        }
    }

    /// Sign bit for this width.
    #[inline]
    pub const fn sign_bit(self) -> u64 {
        1u64 << (self.bits() - 1)
    }

    /// Truncate `v` to this width (no sign extension).
    #[inline]
    pub const fn trunc(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Sign-extend the low `bits()` of `v` to 64 bits.
    #[inline]
    pub const fn sext(self, v: u64) -> u64 {
        match self {
            Width::W8 => v as u8 as i8 as i64 as u64,
            Width::W32 => v as u32 as i32 as i64 as u64,
            Width::W64 => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_numbers_roundtrip() {
        for r in Gpr::ALL {
            assert_eq!(Gpr::from_number(r.number()), r);
        }
    }

    #[test]
    fn xmm_numbers_roundtrip() {
        for r in Xmm::ALL {
            assert_eq!(Xmm::from_number(r.number()), r);
        }
    }

    #[test]
    fn callee_saved_matches_sysv_list() {
        for r in Gpr::SYSV_CALLEE_SAVED {
            assert!(r.is_callee_saved());
        }
        assert!(Gpr::Rsp.is_callee_saved());
        for r in [
            Gpr::Rax,
            Gpr::Rcx,
            Gpr::Rdx,
            Gpr::Rsi,
            Gpr::Rdi,
            Gpr::R8,
            Gpr::R10,
            Gpr::R11,
        ] {
            assert!(!r.is_callee_saved());
        }
    }

    #[test]
    fn width_masks() {
        assert_eq!(Width::W32.trunc(0x1_2345_6789), 0x2345_6789);
        assert_eq!(Width::W32.sext(0xFFFF_FFFF), u64::MAX);
        assert_eq!(Width::W8.sext(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(Width::W64.sext(5), 5);
        assert_eq!(Width::W32.sign_bit(), 0x8000_0000);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = Gpr::ALL.iter().map(|r| r.name64()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }
}
