//! Shared ALU semantics: result and flag computation for the integer subset.
//!
//! Both the concrete emulator (`brew-emu`) and the rewriter's constant
//! folding (`brew-core`) call into this module, so "execute at rewrite time"
//! and "execute at run time" can never disagree — the soundness of partial
//! evaluation depends on that.

use crate::cond::Flags;
use crate::reg::Width;

/// Two-operand ALU operations (`dst = dst op src`); `Cmp` computes `Sub`
/// flags without a result write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Compare: subtraction that only updates flags.
    Cmp,
}

impl AluOp {
    /// Mnemonic, e.g. `"add"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
        }
    }

    /// `true` if the operation writes its destination (everything but `cmp`).
    #[inline]
    pub fn writes_dst(self) -> bool {
        !matches!(self, AluOp::Cmp)
    }
}

/// Single-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement (does not affect flags).
    Not,
    /// Increment (leaves CF unchanged; we model CF as recomputed-from-add
    /// with the carry preserved by the caller).
    Inc,
    /// Decrement (leaves CF unchanged, like `Inc`).
    Dec,
}

impl UnOp {
    /// Mnemonic, e.g. `"neg"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Inc => "inc",
            UnOp::Dec => "dec",
        }
    }
}

/// Shift operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShOp {
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

impl ShOp {
    /// Mnemonic, e.g. `"shl"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShOp::Shl => "shl",
            ShOp::Shr => "shr",
            ShOp::Sar => "sar",
        }
    }
}

/// Parity flag: set if the low byte of `v` has an even number of set bits.
#[inline]
fn parity(v: u64) -> bool {
    (v as u8).count_ones().is_multiple_of(2)
}

/// ZF/SF/PF from a result value at the given width.
#[inline]
fn zsp(w: Width, r: u64) -> (bool, bool, bool) {
    let r = w.trunc(r);
    (r == 0, r & w.sign_bit() != 0, parity(r))
}

/// Execute a two-operand ALU op. Inputs are taken modulo the width; the
/// result is returned zero-extended to 64 bits (callers apply x86's
/// 32-bit-write zero extension themselves).
pub fn alu(op: AluOp, w: Width, a: u64, b: u64) -> (u64, Flags) {
    let a = w.trunc(a);
    let b = w.trunc(b);
    match op {
        AluOp::Add => {
            let r = w.trunc(a.wrapping_add(b));
            let (zf, sf, pf) = zsp(w, r);
            let cf = r < a;
            let of = ((a ^ r) & (b ^ r) & w.sign_bit()) != 0;
            (r, Flags { cf, zf, sf, of, pf })
        }
        AluOp::Sub | AluOp::Cmp => {
            let r = w.trunc(a.wrapping_sub(b));
            let (zf, sf, pf) = zsp(w, r);
            let cf = a < b;
            let of = ((a ^ b) & (a ^ r) & w.sign_bit()) != 0;
            (r, Flags { cf, zf, sf, of, pf })
        }
        AluOp::And | AluOp::Or | AluOp::Xor => {
            let r = match op {
                AluOp::And => a & b,
                AluOp::Or => a | b,
                _ => a ^ b,
            };
            let (zf, sf, pf) = zsp(w, r);
            // Logical ops clear CF and OF.
            (
                r,
                Flags {
                    cf: false,
                    zf,
                    sf,
                    of: false,
                    pf,
                },
            )
        }
    }
}

/// `test a, b`: AND flags without a result.
pub fn test(w: Width, a: u64, b: u64) -> Flags {
    alu(AluOp::And, w, a, b).1
}

/// Two-operand signed multiply (`imul r, r/m`). CF/OF are set when the
/// signed result does not fit the destination width.
pub fn imul(w: Width, a: u64, b: u64) -> (u64, Flags) {
    let (r, overflow) = match w {
        Width::W64 => {
            let full = (w.sext(a) as i64 as i128) * (w.sext(b) as i64 as i128);
            (full as u64, full != full as i64 as i128)
        }
        _ => {
            let full = (w.sext(a) as i64) * (w.sext(b) as i64);
            (w.trunc(full as u64), full != w.sext(full as u64) as i64)
        }
    };
    let (zf, sf, pf) = zsp(w, r);
    (
        r,
        Flags {
            cf: overflow,
            zf,
            sf,
            of: overflow,
            pf,
        },
    )
}

/// Single-operand ops. `Inc`/`Dec` preserve the incoming CF per the ISA;
/// `Not` preserves all flags (the caller should ignore the returned flags
/// for `Not`, which we signal by echoing `prev`).
pub fn unop(op: UnOp, w: Width, v: u64, prev: Flags) -> (u64, Flags) {
    match op {
        UnOp::Neg => {
            let (r, mut f) = alu(AluOp::Sub, w, 0, v);
            f.cf = w.trunc(v) != 0;
            (r, f)
        }
        UnOp::Not => (w.trunc(!v), prev),
        UnOp::Inc => {
            let (r, mut f) = alu(AluOp::Add, w, v, 1);
            f.cf = prev.cf;
            (r, f)
        }
        UnOp::Dec => {
            let (r, mut f) = alu(AluOp::Sub, w, v, 1);
            f.cf = prev.cf;
            (r, f)
        }
    }
}

/// Shift by `count & (bits-1)`. A masked count of zero leaves the flags
/// unchanged (we echo `prev`). The OF definition follows the ISA for
/// single-bit shifts and is left as the last computed value otherwise.
pub fn shift(op: ShOp, w: Width, v: u64, count: u8, prev: Flags) -> (u64, Flags) {
    let mask = (w.bits() - 1) as u8;
    let c = count & mask;
    if c == 0 {
        return (w.trunc(v), prev);
    }
    let v = w.trunc(v);
    let (r, cf) = match op {
        ShOp::Shl => {
            let r = w.trunc(v << c);
            (r, (v >> (w.bits() - c as u32)) & 1 != 0)
        }
        ShOp::Shr => (v >> c, (v >> (c - 1)) & 1 != 0),
        ShOp::Sar => {
            let sv = w.sext(v) as i64;
            (w.trunc((sv >> c) as u64), ((sv >> (c - 1)) & 1) != 0)
        }
    };
    let (zf, sf, pf) = zsp(w, r);
    let of = match op {
        ShOp::Shl => (r & w.sign_bit() != 0) != cf,
        ShOp::Shr => v & w.sign_bit() != 0,
        ShOp::Sar => false,
    };
    (r, Flags { cf, zf, sf, of, pf })
}

/// Signed division of the double-width value `hi:lo` by `div` at width `w`.
/// Returns `(quotient, remainder)` or `None` on divide-by-zero / overflow
/// (which the emulator turns into a fault).
pub fn idiv(w: Width, hi: u64, lo: u64, div: u64) -> Option<(u64, u64)> {
    let d = w.sext(div) as i64 as i128;
    if d == 0 {
        return None;
    }
    let num: i128 = match w {
        Width::W64 => ((hi as i64 as i128) << 64) | lo as i128,
        Width::W32 => ((w.sext(hi) as i64 as i128) << 32) | (w.trunc(lo) as i128),
        Width::W8 => return None, // 8-bit divide unsupported in the subset
    };
    let q = num / d;
    let r = num % d;
    let fits = match w {
        Width::W64 => q >= i64::MIN as i128 && q <= i64::MAX as i128,
        _ => q >= i32::MIN as i128 && q <= i32::MAX as i128,
    };
    if !fits {
        return None;
    }
    Some((w.trunc(q as u64), w.trunc(r as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;

    #[test]
    fn add_carry_and_overflow() {
        let (r, f) = alu(AluOp::Add, Width::W32, 0xFFFF_FFFF, 1);
        assert_eq!(r, 0);
        assert!(f.cf && f.zf && !f.of);

        let (r, f) = alu(AluOp::Add, Width::W32, 0x7FFF_FFFF, 1);
        assert_eq!(r, 0x8000_0000);
        assert!(!f.cf && f.of && f.sf);
    }

    #[test]
    fn sub_borrow_and_signed_compare() {
        let (_, f) = alu(AluOp::Cmp, Width::W64, 3, 5);
        assert!(f.cond(Cond::L) && f.cond(Cond::B) && !f.cond(Cond::E));
        let (_, f) = alu(AluOp::Cmp, Width::W64, 5, 5);
        assert!(f.cond(Cond::E) && f.cond(Cond::Le) && f.cond(Cond::Ge));
        // Signed comparison where unsigned disagrees.
        let (_, f) = alu(AluOp::Cmp, Width::W64, (-1i64) as u64, 1);
        assert!(f.cond(Cond::L) && f.cond(Cond::A));
    }

    #[test]
    fn logic_clears_cf_of() {
        let (r, f) = alu(AluOp::Xor, Width::W64, 0xFF, 0xFF);
        assert_eq!(r, 0);
        assert!(f.zf && !f.cf && !f.of);
    }

    #[test]
    fn imul_overflow_detection() {
        let (r, f) = imul(Width::W64, 1 << 40, 1 << 40);
        assert_eq!(r, 0);
        assert!(f.of && f.cf);
        let (r, f) = imul(Width::W64, 7, 6);
        assert_eq!(r, 42);
        assert!(!f.of);
        let (r, f) = imul(Width::W32, 0x10000, 0x10000);
        assert_eq!(r, 0);
        assert!(f.of);
    }

    #[test]
    fn inc_preserves_carry() {
        let prev = Flags {
            cf: true,
            ..Flags::default()
        };
        let (r, f) = unop(UnOp::Inc, Width::W64, 41, prev);
        assert_eq!(r, 42);
        assert!(f.cf, "inc must leave CF alone");
    }

    #[test]
    fn neg_sets_cf_for_nonzero() {
        let (r, f) = unop(UnOp::Neg, Width::W64, 5, Flags::default());
        assert_eq!(r as i64, -5);
        assert!(f.cf);
        let (_, f) = unop(UnOp::Neg, Width::W64, 0, Flags::default());
        assert!(!f.cf);
    }

    #[test]
    fn shifts() {
        let (r, f) = shift(ShOp::Shl, Width::W64, 1, 3, Flags::default());
        assert_eq!(r, 8);
        assert!(!f.cf);
        let (r, f) = shift(ShOp::Sar, Width::W64, (-16i64) as u64, 2, Flags::default());
        assert_eq!(r as i64, -4);
        assert!(!f.cf);
        let (r, f) = shift(ShOp::Shr, Width::W32, 0x8000_0001, 1, Flags::default());
        assert_eq!(r, 0x4000_0000);
        assert!(f.cf);
        // Masked-to-zero count leaves flags untouched.
        let prev = Flags {
            zf: true,
            ..Flags::default()
        };
        let (r, f) = shift(ShOp::Shl, Width::W64, 7, 64, prev);
        assert_eq!(r, 7);
        assert_eq!(f, prev);
    }

    #[test]
    fn idiv_cases() {
        assert_eq!(idiv(Width::W64, 0, 42, 5), Some((8, 2)));
        // -42 / 5 = -8 rem -2 (C semantics, truncation toward zero).
        let neg42 = (-42i64) as u64;
        assert_eq!(
            idiv(Width::W64, u64::MAX, neg42, 5),
            Some(((-8i64) as u64, (-2i64) as u64))
        );
        assert_eq!(idiv(Width::W64, 0, 1, 0), None);
        // i64::MIN / -1 overflows.
        assert_eq!(
            idiv(Width::W64, u64::MAX, i64::MIN as u64, (-1i64) as u64),
            None
        );
        assert_eq!(idiv(Width::W32, 0, 100, 7), Some((14, 2)));
    }

    #[test]
    fn parity_of_low_byte_only() {
        let (_, f) = alu(AluOp::Add, Width::W64, 0x300, 0x3); // low byte 0x03: two bits
        assert!(f.pf);
        let (_, f) = alu(AluOp::Add, Width::W64, 0, 0x7); // three bits
        assert!(!f.pf);
    }
}
