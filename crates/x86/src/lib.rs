//! # brew-x86 — the x86-64 subset ISA model
//!
//! The common substrate of the BREW toolchain: a decoded instruction model
//! for the 64-bit x86 subset the paper's prototype handles, with a decoder,
//! an encoder, shared ALU/flag semantics, and def/use metadata.
//!
//! Everything downstream — the mini-C compiler (`brew-minic`), the CPU
//! emulator (`brew-emu`) and the runtime rewriter itself (`brew-core`) —
//! speaks this representation, which is what lets "emulate at rewrite time"
//! and "execute at run time" share one set of semantics.
//!
//! ```
//! use brew_x86::prelude::*;
//!
//! // Encode `mulsd xmm0, [0x615100]` (the Figure-6 form: a stencil
//! // coefficient referenced at a fixed data address) and decode it back.
//! let inst = Inst::Sse { op: SseOp::Mulsd, dst: Xmm::Xmm0, src: MemRef::abs(0x615100).into() };
//! let mut bytes = Vec::new();
//! encode(&inst, 0x40_0000, &mut bytes).unwrap();
//! let back = decode(&bytes, 0x40_0000).unwrap();
//! assert_eq!(back.inst, inst);
//! assert_eq!(inst.to_string(), "mulsd xmm0, [0x615100]");
//! ```

#![warn(missing_docs)]

pub mod alu;
pub mod cond;
pub mod decode;
pub mod defuse;
pub mod encode;
pub mod inst;
pub mod operand;
pub mod reg;

/// Convenience re-exports of the whole model.
pub mod prelude {
    pub use crate::alu::{AluOp, ShOp, UnOp};
    pub use crate::cond::{Cond, Flags};
    pub use crate::decode::{decode, decode_all, DecodeError, Decoded};
    pub use crate::defuse::{self, Loc};
    pub use crate::encode::{encode, encoded_len, EncodeError};
    pub use crate::inst::{Inst, ShiftCount, SseOp};
    pub use crate::operand::{MemRef, Operand};
    pub use crate::reg::{Gpr, Width, Xmm};
}

pub use prelude::*;
