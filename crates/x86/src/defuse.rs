//! Def/use analysis over the instruction model.
//!
//! The rewriter's optimization passes (dead-store elimination, redundant-load
//! elimination, liveness for the peephole pass) need to know which locations
//! an instruction reads and writes. Calls and returns are *not* fully modeled
//! here — their register effects depend on the ABI and the rewriter's
//! configuration, so passes must treat them as barriers ([`is_barrier`]
//! returns `true` for them).

use crate::inst::{Inst, ShiftCount};
use crate::operand::Operand;
use crate::reg::{Gpr, Xmm};

/// A register-like location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A general-purpose register.
    Gpr(Gpr),
    /// An SSE register.
    Xmm(Xmm),
}

fn operand_reads(op: &Operand, f: &mut impl FnMut(Loc)) {
    match op {
        Operand::Reg(r) => f(Loc::Gpr(*r)),
        Operand::Xmm(x) => f(Loc::Xmm(*x)),
        Operand::Mem(m) => {
            for r in m.regs() {
                f(Loc::Gpr(r));
            }
        }
        Operand::Imm(_) => {}
    }
}

/// Address registers of a memory operand count as reads even when the
/// operand as a whole is a store destination.
fn operand_addr_reads(op: &Operand, f: &mut impl FnMut(Loc)) {
    if let Operand::Mem(m) = op {
        for r in m.regs() {
            f(Loc::Gpr(r));
        }
    }
}

fn operand_write(op: &Operand, f: &mut impl FnMut(Loc)) {
    match op {
        Operand::Reg(r) => f(Loc::Gpr(*r)),
        Operand::Xmm(x) => f(Loc::Xmm(*x)),
        // Memory writes are tracked separately via `Inst::mem_store`.
        Operand::Mem(_) | Operand::Imm(_) => {}
    }
}

/// Invoke `f` for every register location the instruction reads (including
/// address registers of memory operands and implicit operands).
pub fn for_each_read(inst: &Inst, f: &mut impl FnMut(Loc)) {
    match inst {
        Inst::Mov { w, dst, src } => {
            operand_reads(src, f);
            operand_addr_reads(dst, f);
            // A byte-wide register write merges into the low byte; the
            // other 56 bits of the old value survive, so the destination
            // is semantically read.
            if *w == crate::reg::Width::W8 {
                if let Operand::Reg(r) = dst {
                    f(Loc::Gpr(*r));
                }
            }
        }
        Inst::MovAbs { .. } => {}
        Inst::Movsxd { src, .. } | Inst::Movzx8 { src, .. } => operand_reads(src, f),
        Inst::Lea { src, .. } => {
            for r in src.regs() {
                f(Loc::Gpr(r));
            }
        }
        Inst::Alu { op, dst, src, .. } => {
            operand_reads(src, f);
            if op.writes_dst() {
                operand_reads(dst, f); // read-modify-write
            } else {
                operand_reads(dst, f); // cmp reads both
            }
        }
        Inst::Test { a, b, .. } => {
            operand_reads(a, f);
            operand_reads(b, f);
        }
        Inst::Imul { dst, src, .. } => {
            f(Loc::Gpr(*dst));
            operand_reads(src, f);
        }
        Inst::ImulImm { src, .. } => operand_reads(src, f),
        Inst::Unary { dst, .. } => operand_reads(dst, f),
        Inst::Shift { dst, count, .. } => {
            operand_reads(dst, f);
            if matches!(count, ShiftCount::Cl) {
                f(Loc::Gpr(Gpr::Rcx));
            }
        }
        Inst::Cqo { .. } => f(Loc::Gpr(Gpr::Rax)),
        Inst::Idiv { src, .. } => {
            f(Loc::Gpr(Gpr::Rax));
            f(Loc::Gpr(Gpr::Rdx));
            operand_reads(src, f);
        }
        Inst::Push { src } => {
            f(Loc::Gpr(Gpr::Rsp));
            operand_reads(src, f);
        }
        Inst::Pop { dst } => {
            f(Loc::Gpr(Gpr::Rsp));
            operand_addr_reads(dst, f);
        }
        Inst::CallRel { .. } | Inst::Ret => f(Loc::Gpr(Gpr::Rsp)),
        Inst::CallInd { src } | Inst::JmpInd { src } => {
            f(Loc::Gpr(Gpr::Rsp));
            operand_reads(src, f);
        }
        Inst::JmpRel { .. } | Inst::Jcc { .. } | Inst::Nop | Inst::Ud2 => {}
        Inst::Setcc { dst, .. } => {
            operand_addr_reads(dst, f);
            // setcc writes only the low byte of a register destination.
            if let Operand::Reg(r) = dst {
                f(Loc::Gpr(*r));
            }
        }
        Inst::MovSd { dst, src } => {
            operand_reads(src, f);
            operand_addr_reads(dst, f);
            // Register-to-register movsd keeps the destination's high
            // lane (a memory load zeroes it instead).
            if let (Operand::Xmm(d), Operand::Xmm(_)) = (dst, src) {
                f(Loc::Xmm(*d));
            }
        }
        Inst::MovUpd { dst, src } => {
            operand_reads(src, f);
            operand_addr_reads(dst, f);
        }
        Inst::Sse { dst, src, .. } => {
            f(Loc::Xmm(*dst));
            operand_reads(src, f);
        }
        Inst::Ucomisd { a, b } => {
            f(Loc::Xmm(*a));
            operand_reads(b, f);
        }
        Inst::Cvtsi2sd { src, dst, .. } => {
            operand_reads(src, f);
            // cvtsi2sd writes only the low lane; the high lane survives.
            f(Loc::Xmm(*dst));
        }
        Inst::Cvttsd2si { src, .. } => operand_reads(src, f),
    }
}

/// Invoke `f` for every register location the instruction writes.
pub fn for_each_write(inst: &Inst, f: &mut impl FnMut(Loc)) {
    match inst {
        Inst::Mov { dst, .. } => operand_write(dst, f),
        Inst::MovAbs { dst, .. }
        | Inst::Movsxd { dst, .. }
        | Inst::Movzx8 { dst, .. }
        | Inst::Lea { dst, .. }
        | Inst::Imul { dst, .. }
        | Inst::ImulImm { dst, .. }
        | Inst::Cvttsd2si { dst, .. } => f(Loc::Gpr(*dst)),
        Inst::Alu { op, dst, .. } => {
            if op.writes_dst() {
                operand_write(dst, f);
            }
        }
        Inst::Test { .. } | Inst::Ucomisd { .. } => {}
        Inst::Unary { dst, .. } | Inst::Shift { dst, .. } => operand_write(dst, f),
        Inst::Cqo { .. } => f(Loc::Gpr(Gpr::Rdx)),
        Inst::Idiv { .. } => {
            f(Loc::Gpr(Gpr::Rax));
            f(Loc::Gpr(Gpr::Rdx));
        }
        Inst::Push { .. } => f(Loc::Gpr(Gpr::Rsp)),
        Inst::Pop { dst } => {
            f(Loc::Gpr(Gpr::Rsp));
            operand_write(dst, f);
        }
        Inst::CallRel { .. } | Inst::CallInd { .. } | Inst::Ret => f(Loc::Gpr(Gpr::Rsp)),
        Inst::JmpRel { .. } | Inst::JmpInd { .. } | Inst::Jcc { .. } | Inst::Nop | Inst::Ud2 => {}
        Inst::Setcc { dst, .. } => operand_write(dst, f),
        Inst::MovSd { dst, .. } | Inst::MovUpd { dst, .. } => operand_write(dst, f),
        Inst::Sse { dst, .. } => f(Loc::Xmm(*dst)),
        Inst::Cvtsi2sd { dst, .. } => f(Loc::Xmm(*dst)),
    }
}

/// `true` for instructions whose side effects passes cannot reason about
/// locally (calls, returns, indirect jumps): they must be treated as full
/// barriers for memory and register analyses.
pub fn is_barrier(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::CallRel { .. } | Inst::CallInd { .. } | Inst::Ret | Inst::JmpInd { .. } | Inst::Ud2
    )
}

/// Collected def/use sets (convenience wrapper for tests and simple passes).
pub fn reads(inst: &Inst) -> Vec<Loc> {
    let mut v = Vec::new();
    for_each_read(inst, &mut |l| {
        if !v.contains(&l) {
            v.push(l)
        }
    });
    v
}

/// Collected write set; see [`reads`].
pub fn writes(inst: &Inst) -> Vec<Loc> {
    let mut v = Vec::new();
    for_each_write(inst, &mut |l| {
        if !v.contains(&l) {
            v.push(l)
        }
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alu::AluOp;
    use crate::operand::MemRef;
    use crate::reg::Width;

    #[test]
    fn mov_load_reads_address_regs() {
        let i = Inst::Mov {
            w: Width::W64,
            dst: Gpr::Rax.into(),
            src: MemRef::base_index(Gpr::Rdi, Gpr::Rcx, 8, 0).into(),
        };
        assert_eq!(reads(&i), vec![Loc::Gpr(Gpr::Rdi), Loc::Gpr(Gpr::Rcx)]);
        assert_eq!(writes(&i), vec![Loc::Gpr(Gpr::Rax)]);
    }

    #[test]
    fn store_reads_value_and_address() {
        let i = Inst::Mov {
            w: Width::W64,
            dst: MemRef::base(Gpr::Rsp).into(),
            src: Gpr::Rbx.into(),
        };
        assert_eq!(reads(&i), vec![Loc::Gpr(Gpr::Rbx), Loc::Gpr(Gpr::Rsp)]);
        assert!(writes(&i).is_empty(), "memory writes tracked separately");
    }

    #[test]
    fn rmw_alu_reads_dst() {
        let i = Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            dst: Gpr::Rax.into(),
            src: Gpr::Rbx.into(),
        };
        assert!(reads(&i).contains(&Loc::Gpr(Gpr::Rax)));
        assert!(reads(&i).contains(&Loc::Gpr(Gpr::Rbx)));
        assert_eq!(writes(&i), vec![Loc::Gpr(Gpr::Rax)]);
    }

    #[test]
    fn implicit_operands() {
        let i = Inst::Idiv {
            w: Width::W64,
            src: Gpr::Rcx.into(),
        };
        let r = reads(&i);
        assert!(r.contains(&Loc::Gpr(Gpr::Rax)) && r.contains(&Loc::Gpr(Gpr::Rdx)));
        let w = writes(&i);
        assert!(w.contains(&Loc::Gpr(Gpr::Rax)) && w.contains(&Loc::Gpr(Gpr::Rdx)));

        let i = Inst::Shift {
            op: crate::alu::ShOp::Shl,
            w: Width::W64,
            dst: Gpr::Rax.into(),
            count: ShiftCount::Cl,
        };
        assert!(reads(&i).contains(&Loc::Gpr(Gpr::Rcx)));
    }

    #[test]
    fn sse_dst_is_also_read() {
        use crate::inst::SseOp;
        use crate::reg::Xmm;
        let i = Inst::Sse {
            op: SseOp::Addsd,
            dst: Xmm::Xmm0,
            src: Xmm::Xmm1.into(),
        };
        assert!(reads(&i).contains(&Loc::Xmm(Xmm::Xmm0)));
        assert_eq!(writes(&i), vec![Loc::Xmm(Xmm::Xmm0)]);
    }

    #[test]
    fn partial_register_writes_read_their_destination() {
        use crate::cond::Cond;
        use crate::reg::Xmm;
        // mov r8b, al merges into rbx's low byte.
        let i = Inst::Mov {
            w: Width::W8,
            dst: Gpr::Rbx.into(),
            src: Gpr::Rax.into(),
        };
        assert!(reads(&i).contains(&Loc::Gpr(Gpr::Rbx)));
        // A full-width register mov does not read its destination.
        let i = Inst::Mov {
            w: Width::W64,
            dst: Gpr::Rbx.into(),
            src: Gpr::Rax.into(),
        };
        assert!(!reads(&i).contains(&Loc::Gpr(Gpr::Rbx)));
        // setcc writes only the low byte.
        let i = Inst::Setcc {
            cond: Cond::E,
            dst: Gpr::Rsi.into(),
        };
        assert!(reads(&i).contains(&Loc::Gpr(Gpr::Rsi)));
        // Register movsd keeps the high lane; a load zeroes it.
        let i = Inst::MovSd {
            dst: Xmm::Xmm2.into(),
            src: Xmm::Xmm3.into(),
        };
        assert!(reads(&i).contains(&Loc::Xmm(Xmm::Xmm2)));
        let i = Inst::MovSd {
            dst: Xmm::Xmm2.into(),
            src: MemRef::abs(0x601000).into(),
        };
        assert!(!reads(&i).contains(&Loc::Xmm(Xmm::Xmm2)));
        // cvtsi2sd writes only the low lane.
        let i = Inst::Cvtsi2sd {
            w: Width::W64,
            dst: Xmm::Xmm4,
            src: Gpr::Rax.into(),
        };
        assert!(reads(&i).contains(&Loc::Xmm(Xmm::Xmm4)));
    }

    #[test]
    fn barriers() {
        assert!(is_barrier(&Inst::Ret));
        assert!(is_barrier(&Inst::CallRel { target: 0 }));
        assert!(!is_barrier(&Inst::JmpRel { target: 0 }));
        assert!(!is_barrier(&Inst::Nop));
    }
}
