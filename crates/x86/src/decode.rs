//! Machine-code decoder for the supported x86-64 subset.
//!
//! Decodes everything [`crate::encode()`](crate::encode::encode) can produce plus a few alternate
//! forms a compiler may emit (rel8 branches, `B8+r` immediate moves, both
//! directions of register-register `mov`/ALU). Anything outside the subset
//! yields an error — per the paper (§III.G), an undecodable instruction is a
//! recoverable failure of the rewriting process, never a panic.

use crate::alu::{AluOp, ShOp, UnOp};
use crate::cond::Cond;
use crate::inst::{Inst, ShiftCount, SseOp};
use crate::operand::{MemRef, Operand};
use crate::reg::{Gpr, Width, Xmm};
use std::fmt;

/// A successfully decoded instruction and its encoded length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The decoded instruction (branch targets resolved to absolute).
    pub inst: Inst,
    /// Number of bytes the instruction occupies.
    pub len: usize,
}

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-instruction.
    Truncated,
    /// First (or second) opcode byte not in the subset.
    UnknownOpcode {
        /// Address of the instruction.
        at: u64,
        /// The offending opcode byte.
        byte: u8,
    },
    /// Recognized opcode with an unsupported operand form.
    UnsupportedForm {
        /// Address of the instruction.
        at: u64,
        /// Human-readable description of the unsupported form.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::UnknownOpcode { at, byte } => {
                write!(f, "unknown opcode {byte:#04x} at {at:#x}")
            }
            DecodeError::UnsupportedForm { at, what } => {
                write!(f, "unsupported form at {at:#x}: {what}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    addr: u64,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 4;
        Ok(i32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 8)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn unsupported(&self, what: &'static str) -> DecodeError {
        DecodeError::UnsupportedForm {
            at: self.addr,
            what,
        }
    }
}

/// REX prefix state.
#[derive(Default, Clone, Copy)]
struct Rex {
    present: bool,
    w: bool,
    r: bool,
    x: bool,
    b: bool,
}

/// Decoded ModRM r/m side.
enum Rm {
    Reg(u8),
    Mem(MemRef),
}

/// Parse ModRM (+ SIB + displacement). Returns (reg field, rm).
fn modrm(c: &mut Cursor, rex: Rex) -> Result<(u8, Rm), DecodeError> {
    let byte = c.u8()?;
    let md = byte >> 6;
    let reg = ((byte >> 3) & 7) | ((rex.r as u8) << 3);
    let rm = byte & 7;
    if md == 0b11 {
        return Ok((reg, Rm::Reg(rm | ((rex.b as u8) << 3))));
    }
    // Memory forms.
    let (base, index): (Option<Gpr>, Option<(Gpr, u8)>);
    let mut disp32_forced = false;
    if rm == 0b100 {
        // SIB follows.
        let sib = c.u8()?;
        let scale = 1u8 << (sib >> 6);
        let idx = ((sib >> 3) & 7) | ((rex.x as u8) << 3);
        let bse = (sib & 7) | ((rex.b as u8) << 3);
        index = if idx == 0b100 {
            // "no index" encoding (RSP slot); note REX.X makes r12 a valid index.
            None
        } else {
            Some((Gpr::from_number(idx), scale))
        };
        if md == 0b00 && (bse & 7) == 0b101 {
            // No base, disp32 follows.
            base = None;
            disp32_forced = true;
        } else {
            base = Some(Gpr::from_number(bse));
        }
    } else if md == 0b00 && rm == 0b101 {
        // RIP-relative; outside the subset.
        return Err(c.unsupported("rip-relative addressing"));
    } else {
        base = Some(Gpr::from_number(rm | ((rex.b as u8) << 3)));
        index = None;
    }
    let disp = match md {
        0b00 => {
            if disp32_forced {
                c.i32()?
            } else {
                0
            }
        }
        0b01 => c.i8()? as i32,
        _ => c.i32()?,
    };
    Ok((reg, Rm::Mem(MemRef { base, index, disp })))
}

fn rm_gpr(rm: Rm) -> Operand {
    match rm {
        Rm::Reg(n) => Operand::Reg(Gpr::from_number(n)),
        Rm::Mem(m) => Operand::Mem(m),
    }
}

fn rm_xmm(rm: Rm) -> Operand {
    match rm {
        Rm::Reg(n) => Operand::Xmm(Xmm::from_number(n)),
        Rm::Mem(m) => Operand::Mem(m),
    }
}

fn width(rex: Rex) -> Width {
    if rex.w {
        Width::W64
    } else {
        Width::W32
    }
}

fn alu_from_digit(c: &Cursor, d: u8) -> Result<AluOp, DecodeError> {
    Ok(match d {
        0 => AluOp::Add,
        1 => AluOp::Or,
        4 => AluOp::And,
        5 => AluOp::Sub,
        6 => AluOp::Xor,
        7 => AluOp::Cmp,
        _ => return Err(c.unsupported("adc/sbb immediate form")),
    })
}

/// Byte registers 4..8 without a REX prefix would be AH/CH/DH/BH, which the
/// subset does not model.
fn check_byte_reg(c: &Cursor, rm: &Rm, rex: Rex) -> Result<(), DecodeError> {
    if let Rm::Reg(n) = rm {
        if (4..8).contains(n) && !rex.present {
            return Err(c.unsupported("legacy high-byte register"));
        }
    }
    Ok(())
}

/// Decode one instruction starting at `bytes[0]`, which lives at absolute
/// address `addr` (used to resolve relative branch targets).
pub fn decode(bytes: &[u8], addr: u64) -> Result<Decoded, DecodeError> {
    let mut c = Cursor {
        bytes,
        pos: 0,
        addr,
    };

    // Legacy prefixes we understand: 66 (packed SSE), F2 (scalar double).
    let mut p66 = false;
    let mut pf2 = false;
    loop {
        match c.peek() {
            Some(0x66) => {
                p66 = true;
                c.pos += 1;
            }
            Some(0xF2) => {
                pf2 = true;
                c.pos += 1;
            }
            Some(0xF3) => return Err(c.unsupported("F3-prefixed instruction")),
            _ => break,
        }
    }
    if p66 && pf2 {
        return Err(c.unsupported("conflicting 66 and F2 prefixes"));
    }

    // REX.
    let mut rex = Rex::default();
    if let Some(b) = c.peek() {
        if (0x40..0x50).contains(&b) {
            rex = Rex {
                present: true,
                w: b & 8 != 0,
                r: b & 4 != 0,
                x: b & 2 != 0,
                b: b & 1 != 0,
            };
            c.pos += 1;
        }
    }

    let op = c.u8()?;
    // A legacy 66/F2 prefix is only meaningful on the SSE opcodes of the
    // 0x0F map. Anywhere else it would change operand size (66) or
    // semantics (F2) on real hardware, so decoding the unprefixed form
    // would misrepresent the instruction — reject instead.
    if (p66 || pf2) && op != 0x0F {
        return Err(c.unsupported("66/F2 prefix outside the SSE subset"));
    }
    let inst = match op {
        // ALU, store and load forms.
        0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 => {
            let aop = match op {
                0x01 => AluOp::Add,
                0x09 => AluOp::Or,
                0x21 => AluOp::And,
                0x29 => AluOp::Sub,
                0x31 => AluOp::Xor,
                _ => AluOp::Cmp,
            };
            let (reg, rm) = modrm(&mut c, rex)?;
            Inst::Alu {
                op: aop,
                w: width(rex),
                dst: rm_gpr(rm),
                src: Operand::Reg(Gpr::from_number(reg)),
            }
        }
        0x03 | 0x0B | 0x23 | 0x2B | 0x33 | 0x3B => {
            let aop = match op {
                0x03 => AluOp::Add,
                0x0B => AluOp::Or,
                0x23 => AluOp::And,
                0x2B => AluOp::Sub,
                0x33 => AluOp::Xor,
                _ => AluOp::Cmp,
            };
            let (reg, rm) = modrm(&mut c, rex)?;
            Inst::Alu {
                op: aop,
                w: width(rex),
                dst: Operand::Reg(Gpr::from_number(reg)),
                src: rm_gpr(rm),
            }
        }
        0x50..=0x57 => Inst::Push {
            src: Operand::Reg(Gpr::from_number((op - 0x50) | ((rex.b as u8) << 3))),
        },
        0x58..=0x5F => Inst::Pop {
            dst: Operand::Reg(Gpr::from_number((op - 0x58) | ((rex.b as u8) << 3))),
        },
        0x63 => {
            if !rex.w {
                return Err(c.unsupported("movsxd without REX.W"));
            }
            let (reg, rm) = modrm(&mut c, rex)?;
            Inst::Movsxd {
                dst: Gpr::from_number(reg),
                src: rm_gpr(rm),
            }
        }
        0x68 => Inst::Push {
            src: Operand::Imm(c.i32()? as i64),
        },
        0x69 | 0x6B => {
            let (reg, rm) = modrm(&mut c, rex)?;
            let imm = if op == 0x6B { c.i8()? as i32 } else { c.i32()? };
            Inst::ImulImm {
                w: width(rex),
                dst: Gpr::from_number(reg),
                src: rm_gpr(rm),
                imm,
            }
        }
        0x70..=0x7F => {
            let rel = c.i8()? as i64;
            let target = addr.wrapping_add(c.pos as u64).wrapping_add(rel as u64);
            Inst::Jcc {
                cond: Cond::from_code(op - 0x70),
                target,
            }
        }
        0x81 | 0x83 => {
            let (digit, rm) = modrm(&mut c, rex)?;
            let aop = alu_from_digit(&c, digit & 7)?;
            let imm = if op == 0x83 {
                c.i8()? as i64
            } else {
                c.i32()? as i64
            };
            Inst::Alu {
                op: aop,
                w: width(rex),
                dst: rm_gpr(rm),
                src: Operand::Imm(imm),
            }
        }
        0x85 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            Inst::Test {
                w: width(rex),
                a: rm_gpr(rm),
                b: Operand::Reg(Gpr::from_number(reg)),
            }
        }
        0x88 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            check_byte_reg(&c, &rm, rex)?;
            Inst::Mov {
                w: Width::W8,
                dst: rm_gpr(rm),
                src: Operand::Reg(Gpr::from_number(reg)),
            }
        }
        0x8A => {
            let (reg, rm) = modrm(&mut c, rex)?;
            check_byte_reg(&c, &rm, rex)?;
            Inst::Mov {
                w: Width::W8,
                dst: Operand::Reg(Gpr::from_number(reg)),
                src: rm_gpr(rm),
            }
        }
        0xC6 => {
            let (digit, rm) = modrm(&mut c, rex)?;
            if digit & 7 != 0 {
                return Err(c.unsupported("C6 with nonzero digit"));
            }
            check_byte_reg(&c, &rm, rex)?;
            let imm = c.i8()? as i64;
            Inst::Mov {
                w: Width::W8,
                dst: rm_gpr(rm),
                src: Operand::Imm(imm),
            }
        }
        0x89 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            Inst::Mov {
                w: width(rex),
                dst: rm_gpr(rm),
                src: Operand::Reg(Gpr::from_number(reg)),
            }
        }
        0x8B => {
            let (reg, rm) = modrm(&mut c, rex)?;
            Inst::Mov {
                w: width(rex),
                dst: Operand::Reg(Gpr::from_number(reg)),
                src: rm_gpr(rm),
            }
        }
        0x8D => {
            let (reg, rm) = modrm(&mut c, rex)?;
            match rm {
                Rm::Mem(m) => Inst::Lea {
                    dst: Gpr::from_number(reg),
                    src: m,
                },
                Rm::Reg(_) => return Err(c.unsupported("lea with register source")),
            }
        }
        0x8F => {
            let (digit, rm) = modrm(&mut c, rex)?;
            if digit & 7 != 0 {
                return Err(c.unsupported("8F with nonzero digit"));
            }
            Inst::Pop { dst: rm_gpr(rm) }
        }
        0x90 => Inst::Nop,
        0x99 => Inst::Cqo { w: width(rex) },
        0xB8..=0xBF => {
            let dst = Gpr::from_number((op - 0xB8) | ((rex.b as u8) << 3));
            if rex.w {
                Inst::MovAbs { dst, imm: c.u64()? }
            } else {
                Inst::Mov {
                    w: Width::W32,
                    dst: Operand::Reg(dst),
                    src: Operand::Imm(c.i32()? as u32 as i64),
                }
            }
        }
        0xC1 | 0xD1 | 0xD3 => {
            let (digit, rm) = modrm(&mut c, rex)?;
            let sop = match digit & 7 {
                4 => ShOp::Shl,
                5 => ShOp::Shr,
                7 => ShOp::Sar,
                _ => return Err(c.unsupported("rotate instruction")),
            };
            let count = match op {
                0xC1 => ShiftCount::Imm(c.u8()?),
                0xD1 => ShiftCount::Imm(1),
                _ => ShiftCount::Cl,
            };
            Inst::Shift {
                op: sop,
                w: width(rex),
                dst: rm_gpr(rm),
                count,
            }
        }
        0xC3 => Inst::Ret,
        0xC7 => {
            let (digit, rm) = modrm(&mut c, rex)?;
            if digit & 7 != 0 {
                return Err(c.unsupported("C7 with nonzero digit"));
            }
            let imm = c.i32()? as i64;
            Inst::Mov {
                w: width(rex),
                dst: rm_gpr(rm),
                src: Operand::Imm(imm),
            }
        }
        0xE8 | 0xE9 => {
            let rel = c.i32()? as i64;
            let target = addr.wrapping_add(c.pos as u64).wrapping_add(rel as u64);
            if op == 0xE8 {
                Inst::CallRel { target }
            } else {
                Inst::JmpRel { target }
            }
        }
        0xEB => {
            let rel = c.i8()? as i64;
            let target = addr.wrapping_add(c.pos as u64).wrapping_add(rel as u64);
            Inst::JmpRel { target }
        }
        0xF7 => {
            let (digit, rm) = modrm(&mut c, rex)?;
            match digit & 7 {
                0 => {
                    let imm = c.i32()? as i64;
                    Inst::Test {
                        w: width(rex),
                        a: rm_gpr(rm),
                        b: Operand::Imm(imm),
                    }
                }
                2 => Inst::Unary {
                    op: UnOp::Not,
                    w: width(rex),
                    dst: rm_gpr(rm),
                },
                3 => Inst::Unary {
                    op: UnOp::Neg,
                    w: width(rex),
                    dst: rm_gpr(rm),
                },
                7 => Inst::Idiv {
                    w: width(rex),
                    src: rm_gpr(rm),
                },
                _ => return Err(c.unsupported("F7 mul/div form")),
            }
        }
        0xFF => {
            let (digit, rm) = modrm(&mut c, rex)?;
            match digit & 7 {
                0 => Inst::Unary {
                    op: UnOp::Inc,
                    w: width(rex),
                    dst: rm_gpr(rm),
                },
                1 => Inst::Unary {
                    op: UnOp::Dec,
                    w: width(rex),
                    dst: rm_gpr(rm),
                },
                2 => Inst::CallInd { src: rm_gpr(rm) },
                4 => Inst::JmpInd { src: rm_gpr(rm) },
                6 => Inst::Push { src: rm_gpr(rm) },
                _ => return Err(c.unsupported("FF form")),
            }
        }
        0x0F => {
            let op2 = c.u8()?;
            // Same rule on the 0x0F map: the non-SSE opcodes here never
            // take a 66/F2 prefix in the subset (66 0F AF would be a
            // 16-bit imul, for example).
            if (p66 || pf2) && matches!(op2, 0x0B | 0x80..=0x8F | 0x90..=0x9F | 0xAF | 0xB6) {
                return Err(c.unsupported("66/F2 prefix outside the SSE subset"));
            }
            match op2 {
                0x0B => Inst::Ud2,
                0x10 | 0x11 => {
                    let (reg, rm) = modrm(&mut c, rex)?;
                    let x = Xmm::from_number(reg);
                    let (dst, src) = if op2 == 0x10 {
                        (Operand::Xmm(x), rm_xmm(rm))
                    } else {
                        (rm_xmm(rm), Operand::Xmm(x))
                    };
                    if pf2 {
                        Inst::MovSd { dst, src }
                    } else if p66 {
                        Inst::MovUpd { dst, src }
                    } else {
                        return Err(c.unsupported("movups/movss"));
                    }
                }
                0x14 if p66 => {
                    let (reg, rm) = modrm(&mut c, rex)?;
                    Inst::Sse {
                        op: SseOp::Unpcklpd,
                        dst: Xmm::from_number(reg),
                        src: rm_xmm(rm),
                    }
                }
                0x2A if pf2 => {
                    let (reg, rm) = modrm(&mut c, rex)?;
                    Inst::Cvtsi2sd {
                        w: width(rex),
                        dst: Xmm::from_number(reg),
                        src: rm_gpr(rm),
                    }
                }
                0x2C if pf2 => {
                    let (reg, rm) = modrm(&mut c, rex)?;
                    Inst::Cvttsd2si {
                        w: width(rex),
                        dst: Gpr::from_number(reg),
                        src: rm_xmm(rm),
                    }
                }
                0x2E if p66 => {
                    let (reg, rm) = modrm(&mut c, rex)?;
                    Inst::Ucomisd {
                        a: Xmm::from_number(reg),
                        b: rm_xmm(rm),
                    }
                }
                0x57 if p66 => {
                    let (reg, rm) = modrm(&mut c, rex)?;
                    Inst::Sse {
                        op: SseOp::Xorpd,
                        dst: Xmm::from_number(reg),
                        src: rm_xmm(rm),
                    }
                }
                0x58 | 0x59 | 0x5C | 0x5E if pf2 || p66 => {
                    let (reg, rm) = modrm(&mut c, rex)?;
                    let sop = match (op2, pf2) {
                        (0x58, true) => SseOp::Addsd,
                        (0x59, true) => SseOp::Mulsd,
                        (0x5C, true) => SseOp::Subsd,
                        (0x5E, true) => SseOp::Divsd,
                        (0x58, false) => SseOp::Addpd,
                        (0x59, false) => SseOp::Mulpd,
                        (0x5C, false) => SseOp::Subpd,
                        _ => SseOp::Divpd,
                    };
                    Inst::Sse {
                        op: sop,
                        dst: Xmm::from_number(reg),
                        src: rm_xmm(rm),
                    }
                }
                0x80..=0x8F => {
                    let rel = c.i32()? as i64;
                    let target = addr.wrapping_add(c.pos as u64).wrapping_add(rel as u64);
                    Inst::Jcc {
                        cond: Cond::from_code(op2 - 0x80),
                        target,
                    }
                }
                0x90..=0x9F => {
                    let (_, rm) = modrm(&mut c, rex)?;
                    check_byte_reg(&c, &rm, rex)?;
                    Inst::Setcc {
                        cond: Cond::from_code(op2 - 0x90),
                        dst: rm_gpr(rm),
                    }
                }
                0xAF => {
                    let (reg, rm) = modrm(&mut c, rex)?;
                    Inst::Imul {
                        w: width(rex),
                        dst: Gpr::from_number(reg),
                        src: rm_gpr(rm),
                    }
                }
                0xB6 => {
                    let (reg, rm) = modrm(&mut c, rex)?;
                    check_byte_reg(&c, &rm, rex)?;
                    Inst::Movzx8 {
                        w: width(rex),
                        dst: Gpr::from_number(reg),
                        src: rm_gpr(rm),
                    }
                }
                b => return Err(DecodeError::UnknownOpcode { at: addr, byte: b }),
            }
        }
        b => return Err(DecodeError::UnknownOpcode { at: addr, byte: b }),
    };
    Ok(Decoded { inst, len: c.pos })
}

/// Decode a whole byte range into `(address, instruction)` pairs, stopping
/// at the first error. Useful for disassembly listings.
pub fn decode_all(bytes: &[u8], addr: u64) -> (Vec<(u64, Inst)>, Option<DecodeError>) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match decode(&bytes[pos..], addr + pos as u64) {
            Ok(d) => {
                out.push((addr + pos as u64, d.inst));
                pos += d.len;
            }
            Err(e) => return (out, Some(e)),
        }
    }
    (out, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(i: Inst) {
        let mut v = Vec::new();
        let addr = 0x400000u64;
        encode(&i, addr, &mut v).unwrap();
        let d = decode(&v, addr).unwrap();
        assert_eq!(d.inst, i, "bytes: {v:02x?}");
        assert_eq!(d.len, v.len());
    }

    #[test]
    fn roundtrip_core_forms() {
        use Operand::Imm;
        let m = MemRef::base_index(Gpr::R13, Gpr::R12, 8, -0x40);
        for i in [
            Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Gpr::R15.into(),
            },
            Inst::Mov {
                w: Width::W32,
                dst: Gpr::R9.into(),
                src: Imm(-5),
            },
            Inst::Mov {
                w: Width::W64,
                dst: m.into(),
                src: Gpr::Rdx.into(),
            },
            Inst::MovAbs {
                dst: Gpr::Rsi,
                imm: 0xDEAD_BEEF_CAFE_F00D,
            },
            Inst::Movsxd {
                dst: Gpr::Rcx,
                src: Gpr::Rax.into(),
            },
            Inst::Movzx8 {
                w: Width::W32,
                dst: Gpr::Rax,
                src: Gpr::Rdi.into(),
            },
            Inst::Lea {
                dst: Gpr::Rbp,
                src: MemRef::abs(0x601000),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rsp.into(),
                src: Imm(0x1000),
            },
            Inst::Alu {
                op: AluOp::Cmp,
                w: Width::W32,
                dst: m.into(),
                src: Imm(7),
            },
            Inst::Test {
                w: Width::W64,
                a: Gpr::Rax.into(),
                b: Gpr::Rax.into(),
            },
            Inst::Imul {
                w: Width::W64,
                dst: Gpr::Rbx,
                src: m.into(),
            },
            Inst::ImulImm {
                w: Width::W64,
                dst: Gpr::Rbx,
                src: Gpr::Rbx.into(),
                imm: 500,
            },
            Inst::Unary {
                op: UnOp::Neg,
                w: Width::W64,
                dst: Gpr::Rdi.into(),
            },
            Inst::Shift {
                op: ShOp::Sar,
                w: Width::W64,
                dst: Gpr::Rax.into(),
                count: ShiftCount::Imm(3),
            },
            Inst::Shift {
                op: ShOp::Shl,
                w: Width::W32,
                dst: Gpr::Rdx.into(),
                count: ShiftCount::Cl,
            },
            Inst::Cqo { w: Width::W64 },
            Inst::Idiv {
                w: Width::W64,
                src: Gpr::Rcx.into(),
            },
            Inst::Push {
                src: Gpr::R12.into(),
            },
            Inst::Pop {
                dst: Gpr::Rbp.into(),
            },
            Inst::Push { src: Imm(0x77) },
            Inst::CallRel { target: 0x401000 },
            Inst::CallInd {
                src: Gpr::Rax.into(),
            },
            Inst::Ret,
            Inst::JmpRel { target: 0x3FF000 },
            Inst::JmpInd { src: m.into() },
            Inst::Jcc {
                cond: Cond::G,
                target: 0x400080,
            },
            Inst::Setcc {
                cond: Cond::Ne,
                dst: Gpr::Rsi.into(),
            },
            Inst::MovSd {
                dst: Xmm::Xmm3.into(),
                src: m.into(),
            },
            Inst::MovSd {
                dst: m.into(),
                src: Xmm::Xmm14.into(),
            },
            Inst::MovUpd {
                dst: Xmm::Xmm1.into(),
                src: m.into(),
            },
            Inst::Sse {
                op: SseOp::Mulsd,
                dst: Xmm::Xmm0,
                src: MemRef::abs(0x615100).into(),
            },
            Inst::Sse {
                op: SseOp::Addpd,
                dst: Xmm::Xmm9,
                src: Xmm::Xmm2.into(),
            },
            Inst::Sse {
                op: SseOp::Xorpd,
                dst: Xmm::Xmm5,
                src: Xmm::Xmm5.into(),
            },
            Inst::Sse {
                op: SseOp::Unpcklpd,
                dst: Xmm::Xmm2,
                src: Xmm::Xmm7.into(),
            },
            Inst::Ucomisd {
                a: Xmm::Xmm0,
                b: Xmm::Xmm1.into(),
            },
            Inst::Cvtsi2sd {
                w: Width::W64,
                dst: Xmm::Xmm4,
                src: Gpr::Rax.into(),
            },
            Inst::Cvttsd2si {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Xmm::Xmm4.into(),
            },
            Inst::Nop,
            Inst::Ud2,
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn rel8_branches_decode() {
        // EB FE: jmp to self.
        let d = decode(&[0xEB, 0xFE], 0x400000).unwrap();
        assert_eq!(d.inst, Inst::JmpRel { target: 0x400000 });
        // 74 00: je to next.
        let d = decode(&[0x74, 0x00], 0x400000).unwrap();
        assert_eq!(
            d.inst,
            Inst::Jcc {
                cond: Cond::E,
                target: 0x400002
            }
        );
    }

    #[test]
    fn b8_imm32_decodes_as_mov() {
        // B8 2A000000: mov eax, 42
        let d = decode(&[0xB8, 0x2A, 0, 0, 0], 0).unwrap();
        assert_eq!(
            d.inst,
            Inst::Mov {
                w: Width::W32,
                dst: Gpr::Rax.into(),
                src: Operand::Imm(42)
            }
        );
    }

    #[test]
    fn store_form_mov_decodes() {
        // 48 89 D8: mov rax, rbx (store form).
        let d = decode(&[0x48, 0x89, 0xD8], 0).unwrap();
        assert_eq!(
            d.inst,
            Inst::Mov {
                w: Width::W64,
                dst: Gpr::Rax.into(),
                src: Gpr::Rbx.into()
            }
        );
    }

    #[test]
    fn errors() {
        assert_eq!(decode(&[], 0), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x48], 0), Err(DecodeError::Truncated));
        assert!(matches!(
            decode(&[0x06], 0x123),
            Err(DecodeError::UnknownOpcode {
                at: 0x123,
                byte: 0x06
            })
        ));
        // RIP-relative is unsupported: 48 8B 05 00000000 (mov rax, [rip]).
        assert!(matches!(
            decode(&[0x48, 0x8B, 0x05, 0, 0, 0, 0], 0),
            Err(DecodeError::UnsupportedForm { .. })
        ));
        // F3-prefixed (movss) unsupported.
        assert!(matches!(
            decode(&[0xF3, 0x0F, 0x10, 0xC1], 0),
            Err(DecodeError::UnsupportedForm { .. })
        ));
    }

    #[test]
    fn unconsumed_prefixes_rejected() {
        // 66 01 C8 is a 16-bit add — the subset has no 16-bit ALU, and
        // decoding it as the 32-bit form would be a silent mis-decode.
        assert!(matches!(
            decode(&[0x66, 0x01, 0xC8], 0),
            Err(DecodeError::UnsupportedForm { .. })
        ));
        // F2 on a non-SSE opcode (inc eax).
        assert!(matches!(
            decode(&[0xF2, 0xFF, 0xC0], 0),
            Err(DecodeError::UnsupportedForm { .. })
        ));
        // 66 0F AF C1 is a 16-bit imul.
        assert!(matches!(
            decode(&[0x66, 0x0F, 0xAF, 0xC1], 0),
            Err(DecodeError::UnsupportedForm { .. })
        ));
        // Conflicting 66 and F2 prefixes.
        assert!(matches!(
            decode(&[0x66, 0xF2, 0x0F, 0x58, 0xC1], 0),
            Err(DecodeError::UnsupportedForm { .. })
        ));
        // 66 on a plain conditional branch.
        assert!(matches!(
            decode(&[0x66, 0x0F, 0x84, 0, 0, 0, 0], 0),
            Err(DecodeError::UnsupportedForm { .. })
        ));
    }

    #[test]
    fn decode_all_stops_at_error() {
        let mut v = Vec::new();
        encode(&Inst::Nop, 0, &mut v).unwrap();
        encode(&Inst::Ret, 1, &mut v).unwrap();
        v.push(0x06); // bad
        let (insts, err) = decode_all(&v, 0x500000);
        assert_eq!(insts.len(), 2);
        assert!(err.is_some());
    }
}
