//! The decoded instruction model for the supported x86-64 subset.
//!
//! Instructions are kept in this decoded form throughout the rewriting
//! pipeline ("captured instructions are kept in decoded form", §III.G of the
//! paper); the encoder lowers them back to machine code at emission time.
//! Branch/call targets are stored as *absolute* addresses — the decoder
//! resolves rel8/rel32 and the encoder re-materializes relative forms.

use crate::alu::{AluOp, ShOp, UnOp};
use crate::cond::Cond;
use crate::operand::{MemRef, Operand};
use crate::reg::{Gpr, Width, Xmm};
use std::fmt;

/// Scalar/packed SSE2 double operations of shape `op xmm, xmm/mem`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SseOp {
    /// Scalar double add.
    Addsd,
    /// Scalar double subtract.
    Subsd,
    /// Scalar double multiply.
    Mulsd,
    /// Scalar double divide.
    Divsd,
    /// Packed (2-lane) double add.
    Addpd,
    /// Packed double subtract.
    Subpd,
    /// Packed double multiply.
    Mulpd,
    /// Packed double divide.
    Divpd,
    /// Bitwise XOR of the full 128-bit register (used for zeroing).
    Xorpd,
    /// Interleave low doubles: `dst = [dst.lo, src.lo]`.
    Unpcklpd,
}

impl SseOp {
    /// Mnemonic, e.g. `"mulsd"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SseOp::Addsd => "addsd",
            SseOp::Subsd => "subsd",
            SseOp::Mulsd => "mulsd",
            SseOp::Divsd => "divsd",
            SseOp::Addpd => "addpd",
            SseOp::Subpd => "subpd",
            SseOp::Mulpd => "mulpd",
            SseOp::Divpd => "divpd",
            SseOp::Xorpd => "xorpd",
            SseOp::Unpcklpd => "unpcklpd",
        }
    }

    /// `true` for the packed (128-bit memory access) forms.
    pub fn is_packed(self) -> bool {
        matches!(
            self,
            SseOp::Addpd
                | SseOp::Subpd
                | SseOp::Mulpd
                | SseOp::Divpd
                | SseOp::Xorpd
                | SseOp::Unpcklpd
        )
    }
}

/// Shift count operand: an immediate or the CL register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftCount {
    /// Immediate count (masked by the ISA to the operand width).
    Imm(u8),
    /// Count taken from CL.
    Cl,
}

/// A decoded instruction of the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum Inst {
    /// `mov dst, src` where exactly one side may be memory and `src` may be
    /// a sign-extended 32-bit immediate.
    Mov {
        w: Width,
        dst: Operand,
        src: Operand,
    },
    /// `mov r64, imm64` (movabs).
    MovAbs { dst: Gpr, imm: u64 },
    /// `movsxd r64, r/m32`.
    Movsxd { dst: Gpr, src: Operand },
    /// `movzx r32/r64, r/m8`.
    Movzx8 { w: Width, dst: Gpr, src: Operand },
    /// `lea r64, [mem]`.
    Lea { dst: Gpr, src: MemRef },
    /// Two-operand ALU: `dst op= src` (`cmp` writes only flags).
    Alu {
        op: AluOp,
        w: Width,
        dst: Operand,
        src: Operand,
    },
    /// `test a, b` — `b` is a register or immediate.
    Test { w: Width, a: Operand, b: Operand },
    /// `imul dst, src` (two-operand signed multiply).
    Imul { w: Width, dst: Gpr, src: Operand },
    /// `imul dst, src, imm` (three-operand form).
    ImulImm {
        w: Width,
        dst: Gpr,
        src: Operand,
        imm: i32,
    },
    /// Single-operand ALU: `neg`/`not`/`inc`/`dec`.
    Unary { op: UnOp, w: Width, dst: Operand },
    /// Shift by immediate or CL.
    Shift {
        op: ShOp,
        w: Width,
        dst: Operand,
        count: ShiftCount,
    },
    /// `cqo` (sign-extend RAX into RDX:RAX) / `cdq` for W32.
    Cqo { w: Width },
    /// `idiv src` at the given width.
    Idiv { w: Width, src: Operand },
    /// `push r64/m64/imm32`.
    Push { src: Operand },
    /// `pop r64/m64`.
    Pop { dst: Operand },
    /// `call rel32` with resolved absolute target.
    CallRel { target: u64 },
    /// `call r/m64`.
    CallInd { src: Operand },
    /// `ret`.
    Ret,
    /// `jmp rel8/rel32` with resolved absolute target.
    JmpRel { target: u64 },
    /// `jmp r/m64`.
    JmpInd { src: Operand },
    /// Conditional jump with resolved absolute target.
    Jcc { cond: Cond, target: u64 },
    /// `setcc r/m8`.
    Setcc { cond: Cond, dst: Operand },
    /// `movsd` xmm<->xmm / xmm<->m64 (load and store forms).
    MovSd { dst: Operand, src: Operand },
    /// `movupd` xmm<->m128 / xmm<->xmm (packed, unaligned).
    MovUpd { dst: Operand, src: Operand },
    /// SSE arithmetic `op xmm, xmm/mem`.
    Sse { op: SseOp, dst: Xmm, src: Operand },
    /// `ucomisd a, b` — unordered compare setting ZF/PF/CF.
    Ucomisd { a: Xmm, b: Operand },
    /// `cvtsi2sd xmm, r/m` (integer to double).
    Cvtsi2sd { w: Width, dst: Xmm, src: Operand },
    /// `cvttsd2si r, xmm/m64` (double to integer, truncating).
    Cvttsd2si { w: Width, dst: Gpr, src: Operand },
    /// One-byte `nop`.
    Nop,
    /// `ud2` — deliberate trap; the emulator faults on it.
    Ud2,
}

impl Inst {
    /// `true` if control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Ret | Inst::JmpRel { .. } | Inst::JmpInd { .. } | Inst::Ud2
        )
    }

    /// `true` for any control-transfer instruction (including calls and
    /// conditional jumps).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Ret
                | Inst::JmpRel { .. }
                | Inst::JmpInd { .. }
                | Inst::Jcc { .. }
                | Inst::CallRel { .. }
                | Inst::CallInd { .. }
        )
    }

    /// The statically-known branch/call target, if any.
    pub fn static_target(&self) -> Option<u64> {
        match self {
            Inst::CallRel { target } | Inst::JmpRel { target } | Inst::Jcc { target, .. } => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// Rewrite the statically-known target (used by relocation).
    pub fn set_static_target(&mut self, t: u64) {
        match self {
            Inst::CallRel { target } | Inst::JmpRel { target } | Inst::Jcc { target, .. } => {
                *target = t
            }
            _ => panic!("set_static_target on non-branch {self}"),
        }
    }

    /// `true` if executing the instruction writes the arithmetic flags.
    pub fn writes_flags(&self) -> bool {
        match self {
            Inst::Alu { .. }
            | Inst::Test { .. }
            | Inst::Imul { .. }
            | Inst::ImulImm { .. }
            | Inst::Shift { .. }
            | Inst::Idiv { .. }
            | Inst::Ucomisd { .. } => true,
            Inst::Unary { op, .. } => !matches!(op, UnOp::Not),
            _ => false,
        }
    }

    /// `true` if the instruction's behaviour depends on the flags.
    pub fn reads_flags(&self) -> bool {
        matches!(self, Inst::Jcc { .. } | Inst::Setcc { .. })
    }

    /// The memory reference this instruction loads from, if any.
    pub fn mem_load(&self) -> Option<MemRef> {
        match self {
            Inst::Mov { dst, src, .. } if !dst.is_mem() => src.mem(),
            Inst::Movsxd { src, .. }
            | Inst::Movzx8 { src, .. }
            | Inst::Imul { src, .. }
            | Inst::ImulImm { src, .. }
            | Inst::Idiv { src, .. }
            | Inst::Push { src }
            | Inst::CallInd { src }
            | Inst::JmpInd { src }
            | Inst::Ucomisd { b: src, .. }
            | Inst::Cvtsi2sd { src, .. }
            | Inst::Cvttsd2si { src, .. }
            | Inst::Sse { src, .. } => src.mem(),
            Inst::MovSd { dst, src } | Inst::MovUpd { dst, src } if !dst.is_mem() => src.mem(),
            // Read-modify-write destinations and memory sources both load;
            // at most one side can be memory.
            Inst::Alu { dst, src, .. } => dst.mem().or_else(|| src.mem()),
            Inst::Test { a, b, .. } => a.mem().or_else(|| b.mem()),
            Inst::Unary { dst, .. } | Inst::Shift { dst, .. } => dst.mem(),
            _ => None,
        }
    }

    /// The memory reference this instruction stores to, if any.
    pub fn mem_store(&self) -> Option<MemRef> {
        match self {
            Inst::Mov { dst, .. }
            | Inst::Setcc { dst, .. }
            | Inst::Pop { dst }
            | Inst::Unary { dst, .. }
            | Inst::Shift { dst, .. } => dst.mem(),
            Inst::Alu { op, dst, .. } if op.writes_dst() => dst.mem(),
            Inst::MovSd { dst, .. } | Inst::MovUpd { dst, .. } => dst.mem(),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn wmn(w: Width) -> &'static str {
            match w {
                Width::W8 => "b",
                Width::W32 => "l",
                Width::W64 => "q",
            }
        }
        // Intel-flavoured syntax with a width suffix where the operands are
        // ambiguous (memory/immediate forms).
        match self {
            Inst::Mov { w, dst, src } => write!(f, "mov{} {dst}, {src}", wmn(*w)),
            Inst::MovAbs { dst, imm } => write!(f, "movabs {dst}, {imm:#x}"),
            Inst::Movsxd { dst, src } => write!(f, "movsxd {dst}, {src}"),
            Inst::Movzx8 { w, dst, src } => write!(f, "movzx{} {dst}, {src}", wmn(*w)),
            Inst::Lea { dst, src } => write!(f, "lea {dst}, {src}"),
            Inst::Alu { op, w, dst, src } => {
                write!(f, "{}{} {dst}, {src}", op.mnemonic(), wmn(*w))
            }
            Inst::Test { w, a, b } => write!(f, "test{} {a}, {b}", wmn(*w)),
            Inst::Imul { w, dst, src } => write!(f, "imul{} {dst}, {src}", wmn(*w)),
            Inst::ImulImm { w, dst, src, imm } => {
                write!(f, "imul{} {dst}, {src}, {imm}", wmn(*w))
            }
            Inst::Unary { op, w, dst } => write!(f, "{}{} {dst}", op.mnemonic(), wmn(*w)),
            Inst::Shift { op, w, dst, count } => match count {
                ShiftCount::Imm(i) => write!(f, "{}{} {dst}, {i}", op.mnemonic(), wmn(*w)),
                ShiftCount::Cl => write!(f, "{}{} {dst}, cl", op.mnemonic(), wmn(*w)),
            },
            Inst::Cqo { w } => match w {
                Width::W64 => write!(f, "cqo"),
                _ => write!(f, "cdq"),
            },
            Inst::Idiv { w, src } => write!(f, "idiv{} {src}", wmn(*w)),
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::CallRel { target } => write!(f, "call {target:#x}"),
            Inst::CallInd { src } => write!(f, "call {src}"),
            Inst::Ret => write!(f, "ret"),
            Inst::JmpRel { target } => write!(f, "jmp {target:#x}"),
            Inst::JmpInd { src } => write!(f, "jmp {src}"),
            Inst::Jcc { cond, target } => write!(f, "j{cond} {target:#x}"),
            Inst::Setcc { cond, dst } => write!(f, "set{cond} {dst}"),
            Inst::MovSd { dst, src } => write!(f, "movsd {dst}, {src}"),
            Inst::MovUpd { dst, src } => write!(f, "movupd {dst}, {src}"),
            Inst::Sse { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Inst::Ucomisd { a, b } => write!(f, "ucomisd {a}, {b}"),
            Inst::Cvtsi2sd { w, dst, src } => write!(f, "cvtsi2sd{} {dst}, {src}", wmn(*w)),
            Inst::Cvttsd2si { w, dst, src } => write!(f, "cvttsd2si{} {dst}, {src}", wmn(*w)),
            Inst::Nop => write!(f, "nop"),
            Inst::Ud2 => write!(f, "ud2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::JmpRel { target: 0 }.is_terminator());
        assert!(!Inst::Jcc {
            cond: Cond::E,
            target: 0
        }
        .is_terminator());
        assert!(!Inst::CallRel { target: 0 }.is_terminator());
        assert!(Inst::Jcc {
            cond: Cond::E,
            target: 0
        }
        .is_control());
    }

    #[test]
    fn static_targets() {
        let mut i = Inst::Jcc {
            cond: Cond::Ne,
            target: 0x400100,
        };
        assert_eq!(i.static_target(), Some(0x400100));
        i.set_static_target(0x400200);
        assert_eq!(i.static_target(), Some(0x400200));
        assert_eq!(Inst::Ret.static_target(), None);
    }

    #[test]
    fn mem_load_store_classification() {
        let m = MemRef::base_disp(Gpr::Rdi, 8);
        let load = Inst::Mov {
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rax),
            src: Operand::Mem(m),
        };
        assert_eq!(load.mem_load(), Some(m));
        assert_eq!(load.mem_store(), None);

        let store = Inst::Mov {
            w: Width::W64,
            dst: Operand::Mem(m),
            src: Operand::Reg(Gpr::Rax),
        };
        assert_eq!(store.mem_store(), Some(m));
        assert_eq!(store.mem_load(), None);

        // add [mem], reg both loads and stores.
        let rmw = Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            dst: Operand::Mem(m),
            src: Operand::Reg(Gpr::Rax),
        };
        assert_eq!(rmw.mem_load(), Some(m));
        assert_eq!(rmw.mem_store(), Some(m));

        // cmp [mem], imm loads but does not store.
        let cmp = Inst::Alu {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Operand::Mem(m),
            src: Operand::Imm(0),
        };
        assert_eq!(cmp.mem_load(), Some(m));
        assert_eq!(cmp.mem_store(), None);
    }

    #[test]
    fn flag_classification() {
        assert!(Inst::Test {
            w: Width::W64,
            a: Gpr::Rax.into(),
            b: Gpr::Rax.into()
        }
        .writes_flags());
        assert!(!Inst::Mov {
            w: Width::W64,
            dst: Gpr::Rax.into(),
            src: Gpr::Rbx.into()
        }
        .writes_flags());
        assert!(Inst::Jcc {
            cond: Cond::E,
            target: 0
        }
        .reads_flags());
        assert!(!Inst::Unary {
            op: UnOp::Not,
            w: Width::W64,
            dst: Gpr::Rax.into()
        }
        .writes_flags());
        assert!(Inst::Unary {
            op: UnOp::Inc,
            w: Width::W64,
            dst: Gpr::Rax.into()
        }
        .writes_flags());
    }

    #[test]
    fn display_spot_checks() {
        let i = Inst::Sse {
            op: SseOp::Mulsd,
            dst: Xmm::Xmm0,
            src: Operand::Mem(MemRef::abs(0x615100)),
        };
        assert_eq!(i.to_string(), "mulsd xmm0, [0x615100]");
        let i = Inst::Mov {
            w: Width::W32,
            dst: Operand::Reg(Gpr::Rax),
            src: Operand::Imm(42),
        };
        assert_eq!(i.to_string(), "movl rax, 0x2a");
    }
}
