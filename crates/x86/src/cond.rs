//! Condition codes and the RFLAGS subset tracked by the toolchain.

use std::fmt;

/// The five arithmetic flags the subset tracks.
///
/// (AF is omitted: no supported instruction reads it.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags {
    /// Carry flag.
    pub cf: bool,
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Overflow flag.
    pub of: bool,
    /// Parity flag (of the low result byte).
    pub pf: bool,
}

impl Flags {
    /// Evaluate a condition code against these flags.
    #[inline]
    pub fn cond(&self, c: Cond) -> bool {
        match c {
            Cond::O => self.of,
            Cond::No => !self.of,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::P => self.pf,
            Cond::Np => !self.pf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || (self.sf != self.of),
            Cond::G => !self.zf && (self.sf == self.of),
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}{}]",
            if self.cf { 'C' } else { '-' },
            if self.zf { 'Z' } else { '-' },
            if self.sf { 'S' } else { '-' },
            if self.of { 'O' } else { '-' },
            if self.pf { 'P' } else { '-' },
        )
    }
}

/// x86 condition codes. Discriminants equal the 4-bit condition encoding
/// used in `Jcc`/`SETcc` opcodes (`0F 80+cc`, `0F 90+cc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow.
    O = 0x0,
    /// Not overflow.
    No = 0x1,
    /// Below (unsigned <).
    B = 0x2,
    /// Above or equal (unsigned >=).
    Ae = 0x3,
    /// Equal / zero.
    E = 0x4,
    /// Not equal / not zero.
    Ne = 0x5,
    /// Below or equal (unsigned <=).
    Be = 0x6,
    /// Above (unsigned >).
    A = 0x7,
    /// Sign (negative).
    S = 0x8,
    /// Not sign.
    Ns = 0x9,
    /// Parity even.
    P = 0xA,
    /// Parity odd.
    Np = 0xB,
    /// Less (signed <).
    L = 0xC,
    /// Greater or equal (signed >=).
    Ge = 0xD,
    /// Less or equal (signed <=).
    Le = 0xE,
    /// Greater (signed >).
    G = 0xF,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// 4-bit opcode encoding.
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Cond::code`]; panics on values >= 16.
    #[inline]
    pub fn from_code(c: u8) -> Cond {
        Self::ALL[c as usize]
    }

    /// The logically negated condition (`E` <-> `Ne`, `L` <-> `Ge`, ...).
    #[inline]
    pub fn negate(self) -> Cond {
        Cond::from_code(self.code() ^ 1)
    }

    /// Mnemonic suffix, e.g. `"ne"` for [`Cond::Ne`].
    pub fn mnemonic(self) -> &'static str {
        const M: [&str; 16] = [
            "o", "no", "b", "ae", "e", "ne", "be", "a", "s", "ns", "p", "np", "l", "ge", "le", "g",
        ];
        M[self.code() as usize]
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), c);
        }
    }

    #[test]
    fn negation_is_involutive_and_complementary() {
        // For every flag combination, cond and its negation disagree.
        for bits in 0u8..32 {
            let fl = Flags {
                cf: bits & 1 != 0,
                zf: bits & 2 != 0,
                sf: bits & 4 != 0,
                of: bits & 8 != 0,
                pf: bits & 16 != 0,
            };
            for c in Cond::ALL {
                assert_eq!(c.negate().negate(), c);
                assert_ne!(
                    fl.cond(c),
                    fl.cond(c.negate()),
                    "{c} vs {} on {fl}",
                    c.negate()
                );
            }
        }
    }

    #[test]
    fn signed_conditions() {
        // 3 cmp 5: 3 - 5 borrows and is negative without overflow.
        let fl = Flags {
            cf: true,
            zf: false,
            sf: true,
            of: false,
            pf: false,
        };
        assert!(fl.cond(Cond::L));
        assert!(fl.cond(Cond::Le));
        assert!(fl.cond(Cond::B));
        assert!(!fl.cond(Cond::G));
        assert!(!fl.cond(Cond::E));
    }
}
