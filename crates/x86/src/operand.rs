//! Instruction operands: registers, immediates and memory references.

use crate::reg::{Gpr, Xmm};
use std::fmt;

/// A memory reference `[base + index*scale + disp]`.
///
/// With neither base nor index this is an absolute 32-bit-displacement
/// address — the form the specializer emits when a pointer became a known
/// constant (cf. Figure 6 of the paper, where stencil coefficients are
/// referenced at fixed data addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Optional base register.
    pub base: Option<Gpr>,
    /// Optional `(index, scale)`; scale is 1, 2, 4 or 8. RSP cannot index.
    pub index: Option<(Gpr, u8)>,
    /// Signed 32-bit displacement.
    pub disp: i32,
}

impl MemRef {
    /// `[base]`
    pub fn base(base: Gpr) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            disp: 0,
        }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Gpr, disp: i32) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `[base + index*scale + disp]`
    pub fn base_index(base: Gpr, index: Gpr, scale: u8, disp: i32) -> MemRef {
        debug_assert!(matches!(scale, 1 | 2 | 4 | 8));
        debug_assert!(index != Gpr::Rsp, "rsp cannot be an index register");
        MemRef {
            base: Some(base),
            index: Some((index, scale)),
            disp,
        }
    }

    /// `[index*scale + disp]` (no base).
    pub fn index_disp(index: Gpr, scale: u8, disp: i32) -> MemRef {
        debug_assert!(matches!(scale, 1 | 2 | 4 | 8));
        debug_assert!(index != Gpr::Rsp, "rsp cannot be an index register");
        MemRef {
            base: None,
            index: Some((index, scale)),
            disp,
        }
    }

    /// `[disp32]` — absolute address, as produced by specialization.
    pub fn abs(addr: i32) -> MemRef {
        MemRef {
            base: None,
            index: None,
            disp: addr,
        }
    }

    /// Construct an absolute reference if `addr` fits in a signed 32-bit
    /// displacement as a non-negative address; `None` otherwise.
    pub fn abs_u64(addr: u64) -> Option<MemRef> {
        if addr <= i32::MAX as u64 {
            Some(MemRef::abs(addr as i32))
        } else {
            None
        }
    }

    /// Registers read when computing the effective address.
    pub fn regs(&self) -> impl Iterator<Item = Gpr> + '_ {
        self.base.into_iter().chain(self.index.map(|(r, _)| r))
    }

    /// Returns a copy with the displacement adjusted by `delta`, if the
    /// result still fits in 32 bits.
    pub fn with_disp_added(&self, delta: i64) -> Option<MemRef> {
        let disp = i32::try_from(self.disp as i64 + delta).ok()?;
        Some(MemRef { disp, ..*self })
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some((i, s)) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}*{s}")?;
            first = false;
        }
        if self.disp != 0 || first {
            if first {
                write!(f, "{:#x}", self.disp)?;
            } else if self.disp < 0 {
                write!(f, "-{:#x}", -(self.disp as i64))?;
            } else {
                write!(f, "+{:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// General-purpose register.
    Reg(Gpr),
    /// SSE register.
    Xmm(Xmm),
    /// Immediate. The encoder requires it to fit the instruction's
    /// immediate field (usually a sign-extended 32-bit value).
    Imm(i64),
    /// Memory reference.
    Mem(MemRef),
}

impl Operand {
    /// The GPR if this is a register operand.
    #[inline]
    pub fn gpr(&self) -> Option<Gpr> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The XMM register if this is an SSE register operand.
    #[inline]
    pub fn xmm(&self) -> Option<Xmm> {
        match self {
            Operand::Xmm(x) => Some(*x),
            _ => None,
        }
    }

    /// The memory reference if this is a memory operand.
    #[inline]
    pub fn mem(&self) -> Option<MemRef> {
        match self {
            Operand::Mem(m) => Some(*m),
            _ => None,
        }
    }

    /// The immediate value if this is an immediate operand.
    #[inline]
    pub fn imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(i) => Some(*i),
            _ => None,
        }
    }

    /// `true` for memory operands.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl From<Gpr> for Operand {
    fn from(r: Gpr) -> Operand {
        Operand::Reg(r)
    }
}

impl From<Xmm> for Operand {
    fn from(x: Xmm) -> Operand {
        Operand::Xmm(x)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Operand {
        Operand::Mem(m)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Operand {
        Operand::Imm(i)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Xmm(x) => write!(f, "{x}"),
            Operand::Imm(i) => {
                if *i < 0 {
                    write!(f, "-{:#x}", -i)
                } else {
                    write!(f, "{:#x}", i)
                }
            }
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(MemRef::base(Gpr::Rdi).to_string(), "[rdi]");
        assert_eq!(MemRef::base_disp(Gpr::Rsp, -8).to_string(), "[rsp-0x8]");
        assert_eq!(
            MemRef::base_index(Gpr::Rax, Gpr::Rbx, 8, 16).to_string(),
            "[rax+rbx*8+0x10]"
        );
        assert_eq!(MemRef::abs(0x615100).to_string(), "[0x615100]");
        assert_eq!(Operand::Imm(-1).to_string(), "-0x1");
    }

    #[test]
    fn abs_u64_bounds() {
        assert_eq!(MemRef::abs_u64(0x7FFF_FFFF), Some(MemRef::abs(0x7FFF_FFFF)));
        assert_eq!(MemRef::abs_u64(0x8000_0000), None);
        assert_eq!(MemRef::abs_u64(u64::MAX), None);
    }

    #[test]
    fn disp_adjustment_saturates_to_none() {
        let m = MemRef::base_disp(Gpr::Rax, i32::MAX);
        assert!(m.with_disp_added(1).is_none());
        assert_eq!(m.with_disp_added(-1).unwrap().disp, i32::MAX - 1);
    }

    #[test]
    fn regs_iterates_base_and_index() {
        let m = MemRef::base_index(Gpr::Rax, Gpr::Rcx, 4, 0);
        let regs: Vec<_> = m.regs().collect();
        assert_eq!(regs, vec![Gpr::Rax, Gpr::Rcx]);
        assert_eq!(MemRef::abs(4).regs().count(), 0);
    }
}
