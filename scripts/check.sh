#!/usr/bin/env sh
# The CI gate, runnable locally. Everything is offline by design:
# dev-dependencies resolve to in-tree stubs (DESIGN.md §6).
#
#   scripts/check.sh            # everything
#   scripts/check.sh check      # fmt + clippy + debug build/test
#   scripts/check.sh stress     # examples + release concurrency/differential
#   scripts/check.sh obs        # observability gate: exports well-formed
#   scripts/check.sh lifecycle  # failure/staleness gate: tests + C3 ratio
#   scripts/check.sh verify     # static-verifier gate: 100% mutant
#                               # detection, zero false positives, docs clean
#   scripts/check.sh tier       # adaptive-tiering gate: tests + C4
#                               # convergence onto the oracle hot set
#   scripts/check.sh serve      # serving gate: RCU torture + persistence
#                               # corruption suites + C5 warm-start ratio
#   scripts/check.sh prof       # profiling gate: flight-recorder torture,
#                               # PROF overhead/attribution/symbolization
#                               # gates, brew-inspect smoke
#   scripts/check.sh regalloc   # register-allocation gate: differential
#                               # corpus bit-identical with the pass on/off,
#                               # verifier clean on allocated variants, E2
#                               # body <= 40 insts, A2 ladder monotone
#
# The stress stage reruns the timing-sensitive suites under `--release`
# so single-flight/eviction races get exercised with optimization on.
# The obs stage runs the OBS experiment and the telemetry example; both
# self-validate their JSON/exposition payloads (brew_core::validate_json
# and exposition-shape asserts), so a malformed export fails the stage,
# and the grep below catches a silently missing metric family.
set -eu

cd "$(dirname "$0")/.."

stage="${1:-all}"

if [ "$stage" = "all" ] || [ "$stage" = "check" ]; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check

    echo "==> cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets --offline -- -D warnings

    echo "==> cargo build --release (offline)"
    cargo build --release --workspace --offline

    echo "==> cargo test (offline)"
    cargo test --workspace --offline -q
fi

if [ "$stage" = "all" ] || [ "$stage" = "stress" ]; then
    echo "==> examples (release)"
    cargo build --release --offline --examples
    for ex in quickstart stencil pgas guarded dispatch parallel telemetry; do
        echo "--> example $ex"
        cargo run --release --offline --example "$ex" >/dev/null
    done

    echo "==> concurrency stress (release)"
    cargo test --release --offline -q -p brew-core --test concurrent

    echo "==> differential suite (release, includes the manager path)"
    cargo test --release --offline -q -p brew-suite --test differential
fi

if [ "$stage" = "all" ] || [ "$stage" = "obs" ]; then
    echo "==> observability gate (tables --exp obs + telemetry example)"
    obs_out="$(cargo run --release --offline -p brew-bench --bin tables -- --exp obs)"
    for metric in brew_cache_hits_total brew_cache_misses_total \
        brew_rewrite_trace_ns_bucket brew_guard_hits_total \
        brew_guard_fallthrough_total brew_cache_resident_bytes; do
        if ! printf '%s' "$obs_out" | grep -q "$metric"; then
            echo "FAIL: metric $metric missing from tables --exp obs" >&2
            exit 1
        fi
    done
    if ! printf '%s' "$obs_out" | grep -q '### Explain report'; then
        echo "FAIL: explain report missing from tables --exp obs" >&2
        exit 1
    fi
    cargo run --release --offline --example telemetry >/dev/null
    echo "observability exports well-formed"
fi

if [ "$stage" = "all" ] || [ "$stage" = "lifecycle" ]; then
    echo "==> lifecycle gate (negative cache, invalidation, panic containment)"
    cargo test --release --offline -q -p brew-core --test lifecycle

    # The C3 experiment must show the denied path amortizing the doomed
    # rewrite by >= 100x (the lifecycle acceptance bar, EXPERIMENTS.md C3).
    life_out="$(cargo run --release --offline -p brew-bench --bin tables -- --exp life)"
    ratio="$(printf '%s' "$life_out" | sed -n 's/.*(\([0-9][0-9]*\)x cheaper.*/\1/p')"
    if [ -z "$ratio" ]; then
        echo "FAIL: no amortization ratio in tables --exp life output" >&2
        exit 1
    fi
    if [ "$ratio" -lt 100 ]; then
        echo "FAIL: denied re-request only ${ratio}x cheaper than re-tracing (need >= 100x)" >&2
        exit 1
    fi
    if ! printf '%s' "$life_out" | grep -q '2 variants dropped by the sweep'; then
        echo "FAIL: revalidate sweep did not drop the mutated variants" >&2
        exit 1
    fi
    echo "lifecycle gate passed (denied path ${ratio}x cheaper)"
fi

if [ "$stage" = "all" ] || [ "$stage" = "verify" ]; then
    echo "==> static-verifier gate (translation validation, V1)"
    cargo test --release --offline -q -p brew-verify

    # The V1 experiment is the acceptance bar: every seeded mutant caught,
    # no clean variant rejected, and the manager gate publishing everything.
    ver_out="$(cargo run --release --offline -p brew-bench --bin tables -- --exp verify)"
    if ! printf '%s' "$ver_out" | grep -q 'mutant escape count       : 0'; then
        echo "FAIL: a seeded mutant escaped the verifier" >&2
        printf '%s\n' "$ver_out" >&2
        exit 1
    fi
    if ! printf '%s' "$ver_out" | grep -q ' 0 false positives'; then
        echo "FAIL: the verifier rejected a clean variant" >&2
        printf '%s\n' "$ver_out" >&2
        exit 1
    fi
    if ! printf '%s' "$ver_out" | grep -q 'across 13/13 kinds'; then
        echo "FAIL: the corpus no longer exercises every mutation kind" >&2
        printf '%s\n' "$ver_out" >&2
        exit 1
    fi
    if ! printf '%s' "$ver_out" | grep -q ', 0 rejected,'; then
        echo "FAIL: the publish gate rejected a clean variant" >&2
        printf '%s\n' "$ver_out" >&2
        exit 1
    fi

    echo "==> cargo doc (warnings are errors)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline >/dev/null
    echo "static-verifier gate passed (100% detection, 0 false positives)"
fi

if [ "$stage" = "all" ] || [ "$stage" = "tier" ]; then
    echo "==> adaptive-tiering gate (tiering tests + C4 convergence)"
    cargo test --release --offline -q -p brew-core --test tiering

    # The C4 experiment must re-converge the resident set onto the oracle
    # hot set (>= 90% overlap) within every drift phase's round budget,
    # with no operator input (the tiering acceptance bar, EXPERIMENTS.md C4).
    tier_out="$(cargo run --release --offline -p brew-bench --bin tables -- --exp tier)"
    if ! printf '%s' "$tier_out" | grep -q 'all phases converged: yes'; then
        echo "FAIL: tiering did not re-converge on every drift phase" >&2
        printf '%s\n' "$tier_out" >&2
        exit 1
    fi
    if printf '%s' "$tier_out" | grep -q 'never'; then
        echo "FAIL: a drift phase never reached 90% oracle overlap" >&2
        printf '%s\n' "$tier_out" >&2
        exit 1
    fi
    echo "adaptive-tiering gate passed (resident set tracks the drifting hot set)"
fi

if [ "$stage" = "all" ] || [ "$stage" = "serve" ]; then
    echo "==> serving gate (RCU torture, persistence corruption, C5)"
    cargo test --release --offline -q -p brew-core --test serving
    cargo test --release --offline -q -p brew-verify --test persist_corruption
    cargo test --release --offline -q -p brew-suite --test persist_roundtrip

    # The C5 experiment is the acceptance bar (EXPERIMENTS.md C5): warm
    # start >= 5x faster than the gated cold start, every serving dispatch
    # a lock-free hit, and the corruption sweep rejecting 100% of the
    # tampered checkpoints with zero false accepts.
    serve_out="$(cargo run --release --offline -p brew-bench --bin tables -- --exp serve)"
    if ! printf '%s' "$serve_out" | grep -q 'warm start >= 5x faster than cold: yes'; then
        echo "FAIL: warm start no longer amortizes the cold gated rewrite" >&2
        printf '%s\n' "$serve_out" >&2
        exit 1
    fi
    if ! printf '%s' "$serve_out" | grep -q 'all serving dispatches hit the lock-free read path: yes'; then
        echo "FAIL: a serving dispatch fell off the hit path" >&2
        printf '%s\n' "$serve_out" >&2
        exit 1
    fi
    if ! printf '%s' "$serve_out" | grep -q '26/26 rejected, 0 false accepts'; then
        echo "FAIL: the corruption sweep accepted or missed a tampered checkpoint" >&2
        printf '%s\n' "$serve_out" >&2
        exit 1
    fi
    echo "serving gate passed (warm start amortized, hit path lock-free, corruption rejected)"
fi

if [ "$stage" = "all" ] || [ "$stage" = "prof" ]; then
    echo "==> profiling gate (flight torture, PROF gates, brew-inspect smoke)"
    cargo test --release --offline -q -p brew-core --test flight

    # The PROF experiment carries its own machine-checkable gate lines
    # (EXPERIMENTS.md PROF): always-on recorder overhead under the bar,
    # a tear-free at-rest dump, one perf-map symbol per resident variant,
    # and a strict-validated merged chrome export.
    prof_out="$(cargo run --release --offline -p brew-bench --bin tables -- --exp prof)"
    if ! printf '%s' "$prof_out" | grep -q 'gate <= 100: ok'; then
        echo "FAIL: flight record overhead exceeds the 100 ns/event gate" >&2
        printf '%s\n' "$prof_out" >&2
        exit 1
    fi
    if ! printf '%s' "$prof_out" | grep -q 'torn entries in dump    :          0'; then
        echo "FAIL: the at-rest flight dump has torn entries" >&2
        printf '%s\n' "$prof_out" >&2
        exit 1
    fi
    if ! printf '%s' "$prof_out" | grep -q 'match: yes'; then
        echo "FAIL: perf-map symbols disagree with the resident variant set" >&2
        printf '%s\n' "$prof_out" >&2
        exit 1
    fi
    if ! printf '%s' "$prof_out" | grep -q 'bytes of valid JSON'; then
        echo "FAIL: merged span+flight chrome export missing" >&2
        printf '%s\n' "$prof_out" >&2
        exit 1
    fi

    # brew-inspect smoke: the demo generates a dump + perf map through a
    # real manager and must cross-reference every live publish.
    inspect_out="$(cargo run --release --offline -p brew-bench --bin brew-inspect -- --demo)"
    if ! printf '%s' "$inspect_out" | grep -q '# flight timeline'; then
        echo "FAIL: brew-inspect --demo rendered no timeline" >&2
        printf '%s\n' "$inspect_out" >&2
        exit 1
    fi
    if ! printf '%s' "$inspect_out" | grep -Eq '([1-9][0-9]*)/\1 live publishes match a map line'; then
        echo "FAIL: brew-inspect cross-reference mismatch (live publishes vs perf map)" >&2
        printf '%s\n' "$inspect_out" >&2
        exit 1
    fi
    echo "profiling gate passed (recorder under the bar, symbols consistent)"
fi

if [ "$stage" = "all" ] || [ "$stage" = "regalloc" ]; then
    echo "==> register-allocation gate (differential corpus, E2 size, A2 monotonicity)"
    # The soundness contract: every generator-corpus program runs
    # bit-identically with PassConfig::regalloc on and off, and the static
    # verifier accepts every allocated variant with zero findings
    # (including the stencil and grouped §V workload variants).
    cargo test --release --offline -q -p brew-suite --test regalloc_differential
    cargo test --release --offline -q -p brew-suite --test differential

    # E2: the allocated stencil body must stay within the issue's budget
    # (paper ~20 insts; pre-allocation we measured 74, now 31, gate <= 40).
    e2_out="$(cargo run --release --offline -p brew-bench --bin tables -- --exp e2)"
    e2_insts="$(printf '%s' "$e2_out" | sed -n 's/^\([0-9][0-9]*\) instructions.*/\1/p' | head -n 1)"
    if [ -z "$e2_insts" ]; then
        echo "FAIL: no instruction count in tables --exp e2 output" >&2
        exit 1
    fi
    if [ "$e2_insts" -gt 40 ]; then
        echo "FAIL: E2 specialized body is ${e2_insts} instructions (gate <= 40)" >&2
        printf '%s\n' "$e2_out" >&2
        exit 1
    fi

    # A2: each added pass may never make the code slower — the ladder's
    # model-cycle column must be monotone non-increasing, with the
    # register-allocation row (the last) as the floor.
    a2_out="$(cargo run --release --offline -p brew-bench --bin tables -- --exp a2)"
    a2_cycles="$(printf '%s\n' "$a2_out" | awk 'NF >= 4 && $(NF-2) ~ /^[0-9]+$/ { print $(NF-2) }')"
    rows="$(printf '%s\n' "$a2_cycles" | wc -l)"
    if [ "$rows" -lt 7 ]; then
        echo "FAIL: A2 ladder has ${rows} rows (expected 7 incl. register allocation)" >&2
        printf '%s\n' "$a2_out" >&2
        exit 1
    fi
    prev=""
    for c in $a2_cycles; do
        if [ -n "$prev" ] && [ "$c" -gt "$prev" ]; then
            echo "FAIL: A2 ladder regressed: ${prev} -> ${c} model cycles" >&2
            printf '%s\n' "$a2_out" >&2
            exit 1
        fi
        prev="$c"
    done
    echo "register-allocation gate passed (E2 ${e2_insts} insts, A2 monotone over ${rows} rows)"
fi

echo "All checks passed ($stage)."
