#!/usr/bin/env sh
# The CI gate, runnable locally. Everything is offline by design:
# dev-dependencies resolve to in-tree stubs (DESIGN.md §6).
#
#   scripts/check.sh          # everything
#   scripts/check.sh check    # fmt + clippy + debug build/test
#   scripts/check.sh stress   # examples + release concurrency/differential
#   scripts/check.sh obs      # observability gate: exports well-formed
#
# The stress stage reruns the timing-sensitive suites under `--release`
# so single-flight/eviction races get exercised with optimization on.
# The obs stage runs the OBS experiment and the telemetry example; both
# self-validate their JSON/exposition payloads (brew_core::validate_json
# and exposition-shape asserts), so a malformed export fails the stage,
# and the grep below catches a silently missing metric family.
set -eu

cd "$(dirname "$0")/.."

stage="${1:-all}"

if [ "$stage" = "all" ] || [ "$stage" = "check" ]; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check

    echo "==> cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets --offline -- -D warnings

    echo "==> cargo build --release (offline)"
    cargo build --release --workspace --offline

    echo "==> cargo test (offline)"
    cargo test --workspace --offline -q
fi

if [ "$stage" = "all" ] || [ "$stage" = "stress" ]; then
    echo "==> examples (release)"
    cargo build --release --offline --examples
    for ex in quickstart stencil pgas guarded dispatch parallel telemetry; do
        echo "--> example $ex"
        cargo run --release --offline --example "$ex" >/dev/null
    done

    echo "==> concurrency stress (release)"
    cargo test --release --offline -q -p brew-core --test concurrent

    echo "==> differential suite (release, includes the manager path)"
    cargo test --release --offline -q -p brew-suite --test differential
fi

if [ "$stage" = "all" ] || [ "$stage" = "obs" ]; then
    echo "==> observability gate (tables --exp obs + telemetry example)"
    obs_out="$(cargo run --release --offline -p brew-bench --bin tables -- --exp obs)"
    for metric in brew_cache_hits_total brew_cache_misses_total \
        brew_rewrite_trace_ns_bucket brew_guard_hits_total \
        brew_guard_fallthrough_total brew_cache_resident_bytes; do
        if ! printf '%s' "$obs_out" | grep -q "$metric"; then
            echo "FAIL: metric $metric missing from tables --exp obs" >&2
            exit 1
        fi
    done
    if ! printf '%s' "$obs_out" | grep -q '### Explain report'; then
        echo "FAIL: explain report missing from tables --exp obs" >&2
        exit 1
    fi
    cargo run --release --offline --example telemetry >/dev/null
    echo "observability exports well-formed"
fi

echo "All checks passed ($stage)."
