#!/usr/bin/env sh
# The CI gate, runnable locally. Everything is offline by design:
# dev-dependencies resolve to in-tree stubs (DESIGN.md §6).
#
#   scripts/check.sh          # everything
#   scripts/check.sh check    # fmt + clippy + debug build/test
#   scripts/check.sh stress   # examples + release concurrency/differential
#
# The stress stage reruns the timing-sensitive suites under `--release`
# so single-flight/eviction races get exercised with optimization on.
set -eu

cd "$(dirname "$0")/.."

stage="${1:-all}"

if [ "$stage" = "all" ] || [ "$stage" = "check" ]; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check

    echo "==> cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets --offline -- -D warnings

    echo "==> cargo build --release (offline)"
    cargo build --release --workspace --offline

    echo "==> cargo test (offline)"
    cargo test --workspace --offline -q
fi

if [ "$stage" = "all" ] || [ "$stage" = "stress" ]; then
    echo "==> examples (release)"
    cargo build --release --offline --examples
    for ex in quickstart stencil pgas guarded dispatch parallel; do
        echo "--> example $ex"
        cargo run --release --offline --example "$ex" >/dev/null
    done

    echo "==> concurrency stress (release)"
    cargo test --release --offline -q -p brew-core --test concurrent

    echo "==> differential suite (release, includes the manager path)"
    cargo test --release --offline -q -p brew-suite --test differential
fi

echo "All checks passed ($stage)."
