#!/usr/bin/env sh
# The CI gate, runnable locally. Everything is offline by design:
# dev-dependencies resolve to in-tree stubs (DESIGN.md §6).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test (offline)"
cargo test --workspace --offline -q

echo "All checks passed."
