//! Memoized specialization + N-way guarded dispatch.
//!
//! The guarded example specializes for *one* hot value. Real call
//! profiles are skewed over several: here the specialization manager
//! memoizes one rewrite per distinct hot value (re-requests are cache
//! hits — no re-trace), then a single dispatch stub guards every cached
//! variant and falls through to the original for the long tail.
//!
//! ```sh
//! cargo run --example dispatch
//! ```

use brew_suite::prelude::*;
use std::collections::HashMap;

fn main() {
    let img = Image::new();
    let prog = compile_into(
        r#"
        int poly(int x, int n) {
            int r = 1;
            for (int i = 0; i < n; i++) r *= x;
            return r;
        }
        "#,
        &img,
    )
    .unwrap();
    let poly = prog.func("poly").unwrap();

    // A skewed call profile: n is 12 in 70% of calls, 7 in 20%, 3 in 5%,
    // and a long tail of one-off values in the rest.
    let profile: Vec<(i64, i64)> = (0..400)
        .map(|i| {
            let n = match i % 20 {
                0..=13 => 12,
                14..=17 => 7,
                18 => 3,
                _ => 1 + (i / 20) % 9,
            };
            (2 + i % 3, n)
        })
        .collect();

    // Replay against the original for the baseline and expected results.
    let mut m = Machine::new();
    let mut base_cycles = 0;
    let mut expect = Vec::new();
    for &(x, n) in &profile {
        let out = m.call(&img, poly, &CallArgs::new().int(x).int(n)).unwrap();
        base_cycles += out.stats.cycles;
        expect.push(out.ret_int);
    }

    // Every call whose n has been seen often enough *requests* a
    // specialization. Only the first request per value pays for a rewrite;
    // the manager answers the rest from its variant cache.
    let mgr = SpecializationManager::new();
    let mut seen: HashMap<i64, u32> = HashMap::new();
    for &(_, n) in &profile {
        let count = seen.entry(n).or_insert(0);
        *count += 1;
        if *count >= 8 {
            let req = SpecRequest::new()
                .unknown_int()
                .known_int(n)
                .ret(RetKind::Int);
            mgr.get_or_rewrite(&img, poly, &req).unwrap();
        }
    }
    let st = mgr.stats();
    println!(
        "{} specialization requests: {} rewrites, {} cache hits \
         ({} guest insts traced — once per variant, never again)",
        st.hits + st.misses,
        st.misses,
        st.hits,
        st.traced_total
    );

    // One stub guards all cached variants; unknown n falls through to the
    // original, so the stub is a drop-in replacement for poly.
    let dispatch = mgr.build_dispatcher(&img, poly, poly).unwrap();
    println!(
        "dispatch stub at {:#x} over {} variants ({} code bytes resident)\n",
        dispatch,
        mgr.variants_of(poly).len(),
        mgr.stats().resident_bytes
    );

    let mut spec_cycles = 0;
    for (i, &(x, n)) in profile.iter().enumerate() {
        let out = m
            .call(&img, dispatch, &CallArgs::new().int(x).int(n))
            .unwrap();
        assert_eq!(out.ret_int, expect[i], "dispatcher must match the original");
        spec_cycles += out.stats.cycles;
    }
    println!(
        "replayed {} calls: original {} cycles, dispatched {} cycles ({:.0}%)",
        profile.len(),
        base_cycles,
        spec_cycles,
        spec_cycles as f64 / base_cycles as f64 * 100.0
    );
    assert!(spec_cycles < base_cycles);
}
