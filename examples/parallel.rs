//! Domain-decomposed stencil across simulated nodes.
//!
//! The paper's motivation is HPC: codes that distribute data, exchange
//! halos, and need their per-node inner loops to be fast. This example
//! decomposes the matrix into row slabs, gives every worker thread its own
//! process image with its own BREW-specialized sweep (runtime rewriting is
//! per-process — each "node" specializes for its own slab geometry), runs
//! the workers with scoped threads, and exchanges halo rows through the
//! host between iterations.
//!
//! ```sh
//! cargo run --release --example parallel
//! ```

use brew_suite::prelude::*;

struct Worker {
    stencil: Stencil,
    entry: u64,
    /// First global interior row this worker owns.
    start: usize,
    /// One past the last global row this worker owns.
    end: usize,
    cycles: u64,
}

fn main() {
    let (xs, ys, iters, nworkers) = (48usize, 49usize, 4u32, 4usize);
    println!(
        "{xs}x{ys} stencil, {iters} iterations, {nworkers} simulated nodes \
         (row-slab decomposition, halo exchange via host)\n"
    );

    // Host-side global matrices.
    let init = |x: usize, y: usize| -> f64 {
        if x == 0 || y == 0 || x == xs - 1 || y == ys - 1 {
            100.0
        } else {
            ((x as i64 * 7 + y as i64 * 13) % 11) as f64
        }
    };
    let mut cur: Vec<f64> = (0..ys)
        .flat_map(|y| (0..xs).map(move |x| init(x, y)))
        .collect();
    let mut next = cur.clone();

    // Partition interior rows [1, ys-1) into slabs.
    let interior = ys - 2;
    let per = interior.div_ceil(nworkers);
    let mut workers: Vec<Worker> = (0..nworkers)
        .filter_map(|w| {
            let start = 1 + w * per;
            let end = (start + per).min(ys - 1);
            if start >= end {
                return None;
            }
            let slab_ys = end - start + 2; // plus two halo rows
            let mut stencil = Stencil::new(xs as i64, slab_ys as i64);
            let entry = stencil
                .specialize_sweep(2)
                .expect("each node rewrites its own sweep")
                .entry;
            Some(Worker {
                stencil,
                entry,
                start,
                end,
                cycles: 0,
            })
        })
        .collect();
    println!("each node rewrote its sweep for its own slab geometry:");
    for (i, w) in workers.iter().enumerate() {
        println!(
            "  node {i}: rows {}..{} (slab of {} rows)",
            w.start,
            w.end,
            w.end - w.start + 2
        );
    }

    for _ in 0..iters {
        // Parallel phase: every node computes its slab with its own image,
        // machine and specialized code.
        std::thread::scope(|scope| {
            let cur = &cur;
            let next_slabs: Vec<_> = workers
                .iter_mut()
                .map(|w| {
                    scope.spawn(move || {
                        // Scatter: slab rows (with halos) into the node's m1.
                        for (sy, gy) in (w.start - 1..=w.end).enumerate() {
                            for x in 0..xs {
                                w.stencil
                                    .img
                                    .write_f64(
                                        w.stencil.m1 + ((sy * xs + x) * 8) as u64,
                                        cur[gy * xs + x],
                                    )
                                    .unwrap();
                            }
                        }
                        let mut m = Machine::new();
                        let st = w
                            .stencil
                            .run(&mut m, Variant::SpecializedSweep(w.entry), 1)
                            .expect("node sweep");
                        w.cycles += st.cycles;
                        // Gather: interior slab rows from the node's m2.
                        let mut out = vec![0.0f64; (w.end - w.start) * xs];
                        for (sy, gy) in (w.start..w.end).enumerate() {
                            let _ = gy;
                            for x in 0..xs {
                                out[sy * xs + x] = w
                                    .stencil
                                    .img
                                    .read_f64(w.stencil.m2 + (((sy + 1) * xs + x) * 8) as u64)
                                    .unwrap();
                            }
                        }
                        (w.start, w.end, out)
                    })
                })
                .collect();
            for h in next_slabs {
                let (start, end, out) = h.join().expect("worker");
                for (sy, gy) in (start..end).enumerate() {
                    for x in 1..xs - 1 {
                        next[gy * xs + x] = out[sy * xs + x];
                    }
                }
            }
        });
        std::mem::swap(&mut cur, &mut next);
        next.copy_from_slice(&cur);
    }

    // Sequential host reference.
    let mut a: Vec<f64> = (0..ys)
        .flat_map(|y| (0..xs).map(move |x| init(x, y)))
        .collect();
    let mut b = a.clone();
    for _ in 0..iters {
        for y in 1..ys - 1 {
            for x in 1..xs - 1 {
                let i = y * xs + x;
                b[i] = 0.25 * (a[i - 1] + a[i + 1] + a[i - xs] + a[i + xs]) - a[i];
            }
        }
        std::mem::swap(&mut a, &mut b);
        b.copy_from_slice(&a);
    }
    assert_eq!(cur, a, "decomposed result equals the sequential reference");

    println!("\nresult matches the sequential host reference bit-for-bit");
    let total: u64 = workers.iter().map(|w| w.cycles).sum();
    let max: u64 = workers.iter().map(|w| w.cycles).max().unwrap_or(1);
    println!("per-node model cycles:");
    for (i, w) in workers.iter().enumerate() {
        println!("  node {i}: {:>9}", w.cycles);
    }
    println!(
        "total {total}, critical path {max} -> parallel efficiency {:.0}% on {} nodes",
        total as f64 / (max as f64 * workers.len() as f64) * 100.0,
        workers.len()
    );
}
