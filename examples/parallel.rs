//! Domain-decomposed stencil across worker threads sharing one manager.
//!
//! The paper's motivation is HPC: codes that distribute data, exchange
//! halos, and need their per-node inner loops to be fast. This example
//! decomposes the matrix into row slabs and runs the workers as scoped
//! threads over **one shared process image and one shared
//! `SpecializationManager`**: every worker requests a sweep specialized
//! for its own slab geometry, workers with the same geometry coalesce on
//! (or hit) the same cached variant instead of tracing it again, and each
//! worker executes on a private emulator stack. Halo rows are exchanged
//! through the host between iterations.
//!
//! ```sh
//! cargo run --release --example parallel
//! ```

use brew_suite::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

struct Worker {
    /// First global interior row this worker owns.
    start: usize,
    /// One past the last global row this worker owns.
    end: usize,
    /// Slab height including the two halo rows.
    slab_ys: i64,
    /// Slab matrices allocated in the *shared* image.
    m1: u64,
    m2: u64,
    cycles: AtomicU64,
}

/// The whole-sweep request for one slab geometry (the Figure-5 recipe with
/// the slab's height baked in). Same geometry => same fingerprint => the
/// shared manager rewrites it once for all workers that need it.
fn slab_request(sweep: u64, s5: u64, xs: i64, slab_ys: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int() // src matrix
        .unknown_int() // dst matrix
        .known_int(xs)
        .known_int(slab_ys)
        .known_mem(s5..s5 + brew_stencil::S_SIZE)
        .ret(RetKind::Void)
        .func(sweep, |o| {
            o.branch_unknown = true;
            o.max_variants = 2;
        })
        .max_code_bytes(1 << 22)
        .max_trace_insts(16_000_000)
}

fn main() {
    let (xs, ys, iters, nworkers) = (48usize, 49usize, 4u32, 4usize);
    println!(
        "{xs}x{ys} stencil, {iters} iterations, {nworkers} workers \
         (row-slab decomposition, one shared image + shared manager)\n"
    );

    // One shared image: program, descriptor and every worker's slabs.
    let img = Image::new();
    let prog = compile_into(brew_stencil::programs::STENCIL_PROGRAM, &img)
        .expect("stencil program compiles");
    let sweep = prog.func("sweep_generic").expect("sweep_generic");
    let s5 = prog.global("s5").expect("s5");
    let mgr = SpecializationManager::new();

    // Host-side global matrices.
    let init = |x: usize, y: usize| -> f64 {
        if x == 0 || y == 0 || x == xs - 1 || y == ys - 1 {
            100.0
        } else {
            ((x as i64 * 7 + y as i64 * 13) % 11) as f64
        }
    };
    let mut cur: Vec<f64> = (0..ys)
        .flat_map(|y| (0..xs).map(move |x| init(x, y)))
        .collect();
    let mut next = cur.clone();

    // Partition interior rows [1, ys-1) into slabs, each with two halo
    // rows, and give every worker its own matrices in the shared heap.
    let interior = ys - 2;
    let per = interior.div_ceil(nworkers);
    let workers: Vec<Worker> = (0..nworkers)
        .filter_map(|w| {
            let start = 1 + w * per;
            let end = (start + per).min(ys - 1);
            if start >= end {
                return None;
            }
            let slab_ys = (end - start + 2) as i64;
            let bytes = (xs as i64 * slab_ys * 8) as u64;
            Some(Worker {
                start,
                end,
                slab_ys,
                m1: img.alloc_heap(bytes, 16),
                m2: img.alloc_heap(bytes, 16),
                cycles: AtomicU64::new(0),
            })
        })
        .collect();

    for _ in 0..iters {
        // Parallel phase: scoped threads share the image and the manager;
        // each requests the variant for its slab geometry (a rewrite only
        // the first time any worker asks for that geometry) and runs it on
        // a private emulator stack.
        std::thread::scope(|scope| {
            let next_slabs: Vec<_> = workers
                .iter()
                .enumerate()
                .map(|(tid, w)| {
                    let (img, mgr, cur) = (&img, &mgr, &cur);
                    scope.spawn(move || {
                        // Scatter: slab rows (with halos) into this slab's m1.
                        for (sy, gy) in (w.start - 1..=w.end).enumerate() {
                            for x in 0..xs {
                                img.write_f64(w.m1 + ((sy * xs + x) * 8) as u64, cur[gy * xs + x])
                                    .unwrap();
                            }
                        }
                        let req = slab_request(sweep, s5, xs as i64, w.slab_ys);
                        let v = mgr.get_or_rewrite(img, sweep, &req).expect("slab rewrite");
                        let mut m = Machine::new();
                        m.set_stack_top(img.stack_top() - (tid as u64) * 0x4_0000);
                        let args = CallArgs::new()
                            .ptr(w.m1)
                            .ptr(w.m2)
                            .int(xs as i64)
                            .int(w.slab_ys);
                        let out = m.call(img, v.entry, &args).expect("slab sweep");
                        w.cycles.fetch_add(out.stats.cycles, Ordering::Relaxed);
                        // Gather: interior slab rows from this slab's m2.
                        let mut out_rows = vec![0.0f64; (w.end - w.start) * xs];
                        for sy in 0..w.end - w.start {
                            for x in 0..xs {
                                out_rows[sy * xs + x] = img
                                    .read_f64(w.m2 + (((sy + 1) * xs + x) * 8) as u64)
                                    .unwrap();
                            }
                        }
                        (w.start, w.end, out_rows)
                    })
                })
                .collect();
            for h in next_slabs {
                let (start, end, out) = h.join().expect("worker");
                for (sy, gy) in (start..end).enumerate() {
                    for x in 1..xs - 1 {
                        next[gy * xs + x] = out[sy * xs + x];
                    }
                }
            }
        });
        std::mem::swap(&mut cur, &mut next);
        next.copy_from_slice(&cur);
    }

    let st = mgr.stats();
    let geometries: std::collections::BTreeSet<i64> = workers.iter().map(|w| w.slab_ys).collect();
    println!(
        "shared manager: {} distinct slab geometries -> {} traces \
         ({} hits, {} coalesced across {} requests)",
        geometries.len(),
        st.misses,
        st.hits,
        st.coalesced,
        st.hits + st.coalesced + st.misses,
    );
    assert_eq!(
        st.misses,
        geometries.len() as u64,
        "single-flight: one trace per geometry"
    );

    // Sequential host reference.
    let mut a: Vec<f64> = (0..ys)
        .flat_map(|y| (0..xs).map(move |x| init(x, y)))
        .collect();
    let mut b = a.clone();
    for _ in 0..iters {
        for y in 1..ys - 1 {
            for x in 1..xs - 1 {
                let i = y * xs + x;
                b[i] = 0.25 * (a[i - 1] + a[i + 1] + a[i - xs] + a[i + xs]) - a[i];
            }
        }
        std::mem::swap(&mut a, &mut b);
        b.copy_from_slice(&a);
    }
    assert_eq!(cur, a, "decomposed result equals the sequential reference");

    println!("result matches the sequential host reference bit-for-bit\n");
    let cycles: Vec<u64> = workers
        .iter()
        .map(|w| w.cycles.load(Ordering::Relaxed))
        .collect();
    let total: u64 = cycles.iter().sum();
    let max: u64 = cycles.iter().copied().max().unwrap_or(1);
    println!("per-worker model cycles:");
    for (i, (w, c)) in workers.iter().zip(&cycles).enumerate() {
        println!(
            "  worker {i}: rows {:>2}..{:<2} (slab_ys {:>2})  {:>9}",
            w.start, w.end, w.slab_ys, c
        );
    }
    println!(
        "total {total}, critical path {max} -> parallel efficiency {:.0}% on {} workers",
        total as f64 / (max as f64 * workers.len() as f64) * 100.0,
        workers.len()
    );
}
