//! The paper's §V stencil study, end to end:
//! generic vs manual vs runtime-specialized, plus the grouped-coefficient
//! variant and the Figure-6 listing of the generated code.
//!
//! ```sh
//! cargo run --release --example stencil
//! ```

use brew_suite::prelude::*;

fn main() {
    // The paper uses 500^2 and 1000 iterations of wall-clock time; the
    // emulated substrate uses a smaller grid and reports model cycles —
    // the *ratios* are the result (see EXPERIMENTS.md).
    let (xs, ys, iters) = (64, 64, 3u32);
    println!("5-point stencil, {xs}x{ys}, {iters} sweeps\n");

    let host = Stencil::new(xs, ys).host_checksum(iters);
    let mut rows: Vec<(&str, u64, f64)> = Vec::new();

    // Generic (Figure 4).
    let mut s = Stencil::new(xs, ys);
    let mut m = Machine::new();
    let st = s.run(&mut m, Variant::Generic, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    let generic_cycles = st.cycles;
    rows.push(("generic apply (Fig. 4)", st.cycles, 1.0));

    // Manual, via function pointer (separate compilation unit).
    let mut s = Stencil::new(xs, ys);
    let st = s.run(&mut m, Variant::Manual, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    rows.push((
        "manual stencil (fn ptr)",
        st.cycles,
        st.cycles as f64 / generic_cycles as f64,
    ));

    // Runtime-specialized apply (Figure 5).
    let mut s = Stencil::new(xs, ys);
    let spec = s.specialize_apply().expect("rewrite");
    let st = s.run_with_apply(&mut m, spec.entry, false, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    rows.push((
        "BREW-specialized apply",
        st.cycles,
        st.cycles as f64 / generic_cycles as f64,
    ));

    // Grouped generic and grouped specialized (§V.B).
    let mut s = Stencil::new(xs, ys);
    let st = s.run(&mut m, Variant::Grouped, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    rows.push((
        "grouped generic",
        st.cycles,
        st.cycles as f64 / generic_cycles as f64,
    ));

    let mut s = Stencil::new(xs, ys);
    let specg = s.specialize_apply_grouped().expect("rewrite");
    let st = s.run_with_apply(&mut m, specg.entry, true, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    rows.push((
        "BREW-specialized grouped",
        st.cycles,
        st.cycles as f64 / generic_cycles as f64,
    ));

    // Manual inlined into the sweep (same compilation unit).
    let mut s = Stencil::new(xs, ys);
    let st = s.run(&mut m, Variant::ManualInline, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    rows.push((
        "manual, same comp. unit",
        st.cycles,
        st.cycles as f64 / generic_cycles as f64,
    ));

    // Whole-sweep rewrite with 4x controlled unrolling.
    let mut s = Stencil::new(xs, ys);
    let sweep = s.specialize_sweep(4).expect("sweep rewrite");
    let st = s
        .run(&mut m, Variant::SpecializedSweep(sweep.entry), iters)
        .unwrap();
    assert_eq!(s.checksum(iters), host);
    rows.push((
        "BREW whole-sweep rewrite",
        st.cycles,
        st.cycles as f64 / generic_cycles as f64,
    ));

    println!(
        "{:<28} {:>14}  {:>9}",
        "variant", "model cycles", "vs generic"
    );
    for (name, cycles, ratio) in &rows {
        println!("{name:<28} {cycles:>14}  {:>8.0}%", ratio * 100.0);
    }

    // Figure 6: the generated code of the specialized single-point apply.
    let mut s = Stencil::new(xs, ys);
    let spec = s.specialize_apply().unwrap();
    println!("\nFigure 6 — specialized apply ({} bytes):", spec.code_len);
    for line in disasm_result(&s.img, &spec) {
        println!("  {line}");
    }
}
