//! Profile-driven guarded specialization (§III.D):
//!
//! *"it may be observed that a parameter to a function often is 42. In this
//! case, a specific variant can be generated which is called after a check
//! for the parameter actually being 42."*
//!
//! The value profiler watches calls, finds the dominant argument value,
//! BREW specializes for it, and a guard stub dispatches between the
//! specialized and the original function.
//!
//! ```sh
//! cargo run --example guarded
//! ```

use brew_suite::prelude::*;

fn main() {
    let img = Image::new();
    let prog = compile_into(
        r#"
        int poly(int x, int n) {
            // x^n by repeated multiplication: expensive for large n,
            // trivial once n is a known constant.
            int r = 1;
            for (int i = 0; i < n; i++) r *= x;
            return r;
        }
        int driver(int x, int n) { return poly(x, n); }
        "#,
        &img,
    )
    .unwrap();
    let poly = prog.func("poly").unwrap();
    let driver = prog.func("driver").unwrap();

    // Phase 1: profile. The workload almost always asks for n == 42... the
    // paper's number, of course.
    let mut profile = ValueProfile::new(2);
    {
        let mut m = Machine::new();
        m.set_call_observer(Box::new(|_site, target, cpu| profile.record(target, cpu)));
        for i in 0..200 {
            let n = if i % 10 == 0 { (i % 7) as i64 } else { 42 };
            m.call(&img, driver, &CallArgs::new().int(2).int(n))
                .unwrap();
        }
    }
    println!("observed {} calls to poly", profile.call_count(poly));
    let hot = profile.hot_value(poly, 1, 0.75).expect("dominant value");
    println!("parameter 1 is {hot} in >=75% of calls\n");

    // Phase 2: specialize for the hot value and install a guard.
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(hot as i64)
        .ret(RetKind::Int);
    let mut rw = Rewriter::new(&img);
    let spec = rw.rewrite(poly, &req).expect("rewrite");
    let guard = rw.guard(1, hot as i64, spec.entry, poly).expect("guard");
    println!(
        "specialized poly for n={hot}: {} bytes (loop fully unrolled), guard stub at {:#x}\n",
        spec.code_len, guard
    );

    // Phase 3: the guard is a drop-in replacement for poly.
    let mut m = Machine::new();
    let hot_path = m
        .call(&img, guard, &CallArgs::new().int(2).int(42))
        .unwrap();
    let cold_path = m.call(&img, guard, &CallArgs::new().int(2).int(5)).unwrap();
    let orig = m.call(&img, poly, &CallArgs::new().int(2).int(42)).unwrap();
    println!(
        "poly(2, 42) via guard : {:>20} in {:>4} cycles (hot path)",
        hot_path.ret_int, hot_path.stats.cycles
    );
    println!(
        "poly(2, 5)  via guard : {:>20} in {:>4} cycles (fallback)",
        cold_path.ret_int, cold_path.stats.cycles
    );
    println!(
        "poly(2, 42) original  : {:>20} in {:>4} cycles",
        orig.ret_int, orig.stats.cycles
    );
    assert_eq!(hot_path.ret_int, orig.ret_int);
    assert_eq!(cold_path.ret_int, 32);
    assert!(hot_path.stats.cycles * 2 < orig.stats.cycles);
}
