//! The PGAS use case (§V intro, §VI, §VIII): specialize the global-to-local
//! translation of a distributed array, detect remote accesses via injected
//! handler calls, and re-specialize after a redistribution.
//!
//! ```sh
//! cargo run --example pgas
//! ```

use brew_suite::prelude::*;

fn main() {
    let (n, nnodes, mynode) = (240i64, 4i64, 1i64);
    let mut arr = PgasArray::new(n, nnodes, mynode);
    let mut m = Machine::new();
    println!(
        "block-distributed array: {n} doubles over {nnodes} nodes, viewed from node {mynode}\n"
    );

    // Generic access path: full translation + locality check per element.
    let (v, generic) = arr.gsum_generic(&mut m).unwrap();
    assert_eq!(v, arr.host_sum());
    println!(
        "generic gsum      : {:>9} cycles, {:>6} calls",
        generic.cycles, generic.calls
    );

    // Hand-written local sum (the abstraction-free bound).
    let (_, manual) = arr.lsum_manual(&mut m).unwrap();
    println!(
        "manual lsum       : {:>9} cycles, {:>6} calls",
        manual.cycles, manual.calls
    );

    // BREW-specialized: descriptor baked in, gread/remote_fetch inlined.
    let spec = arr.specialize_gsum().expect("rewrite");
    let (v2, specialized) = arr.gsum_with(&mut m, spec.entry).unwrap();
    assert_eq!(v2, arr.host_sum());
    println!(
        "specialized gsum  : {:>9} cycles, {:>6} calls   ({} calls inlined away)",
        specialized.cycles, specialized.calls, spec.stats.inlined_calls
    );

    // §VIII: remote-access detection through injected handler calls.
    let inst = arr.instrument_remote_detection().expect("instrument");
    let (v3, _) = arr.gsum_with(&mut m, inst.entry).unwrap();
    assert_eq!(v3, arr.host_sum());
    let remote = arr.remote_count();
    println!(
        "\nremote detection  : {} hook sites injected, {} remote accesses observed \
         (expected {})",
        inst.stats.hooks_injected,
        remote,
        n - n / nnodes
    );

    // §VI: the domain map changes — re-specialize, stay correct.
    arr.redistribute(6, 3);
    let spec2 = arr.specialize_gsum().expect("re-specialize");
    let (v4, _) = arr.gsum_with(&mut m, spec2.entry).unwrap();
    assert_eq!(v4, arr.host_sum());
    println!(
        "\nafter redistribution to 6 nodes: fresh specialization at {:#x}, sum still {v4}",
        spec2.entry
    );
}
