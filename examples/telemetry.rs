//! End-to-end telemetry: the always-on metrics registry, a self-counting
//! dispatch stub, the structured rewrite trace with its explain report,
//! the flight-recorder timeline, and the perf map external profilers
//! consume.
//!
//! No event sink is attached anywhere in this example — the point is
//! that the manager's lock-free registry observes everything anyway,
//! and that a counting stub measures its *own* dispatch rates in guest
//! code.
//!
//! ```sh
//! cargo run --example telemetry
//! ```

use brew_suite::core::telemetry::metrics::{Ctr, Hst};
use brew_suite::prelude::*;

fn main() {
    let img = Image::new();
    let prog = compile_into(
        r#"
        int poly(int x, int n) {
            int r = 1;
            for (int i = 0; i < n; i++) r *= x;
            return r;
        }
        "#,
        &img,
    )
    .unwrap();
    let poly = prog.func("poly").unwrap();

    // Cache three variants through the manager. Note: no sink attached.
    let mgr = SpecializationManager::new();
    for n in [12i64, 7, 3] {
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(n)
            .ret(RetKind::Int);
        mgr.get_or_rewrite(&img, poly, &req).unwrap();
        mgr.get_or_rewrite(&img, poly, &req).unwrap(); // cache hit
    }

    // A *self-counting* dispatch stub: each case bumps a counter slot in
    // guest memory on its way to the variant, the fall-through bumps the
    // last slot.
    let (dispatch, page) = mgr.build_dispatcher_counting(&img, poly, poly).unwrap();
    let mut m = Machine::new();
    for i in 0..300u32 {
        let n = match i % 20 {
            0..=13 => 12,
            14..=17 => 7,
            18 => 3,
            _ => 1 + (i / 20) as i64 % 9, // long tail -> fall-through
        };
        let out = m
            .call(&img, dispatch, &CallArgs::new().int(2).int(n))
            .unwrap();
        let orig = m.call(&img, poly, &CallArgs::new().int(2).int(n)).unwrap();
        assert_eq!(out.ret_int, orig.ret_int);
    }
    let slots = page.snapshot(&img).unwrap();
    println!("counter page after 300 calls (fall-through last): {slots:?}");
    assert_eq!(slots.iter().sum::<u64>(), 300, "every call counted once");

    // Feed the measured dispatch rates into the registry and export.
    let reg = mgr.metrics();
    reg.count(Ctr::GuardHits, 300 - page.fallthrough_hits(&img).unwrap());
    reg.count(Ctr::GuardFallthrough, page.fallthrough_hits(&img).unwrap());

    println!(
        "\nregistry (no sink was ever attached): {} misses, {} hits, \
         {} guest insts traced, {} rewrites timed",
        reg.counter(Ctr::CacheMisses).get(),
        reg.counter(Ctr::CacheHits).get(),
        reg.counter(Ctr::TracedInsts).get(),
        reg.histogram(Hst::TotalNs).count(),
    );
    assert_eq!(reg.counter(Ctr::CacheMisses).get(), 3);
    assert_eq!(reg.counter(Ctr::CacheHits).get(), 3);

    let json = reg.snapshot_json();
    validate_json(&json).expect("snapshot JSON must be valid");
    println!("\nJSON snapshot ({} bytes, validated)", json.len());
    let prom = reg.render_prometheus();
    println!("Prometheus exposition, guard section:");
    for line in prom.lines().filter(|l| l.contains("guard")) {
        println!("  {line}");
    }

    // A traced rewrite: the span tree renders as chrome://tracing JSON
    // and as the human-readable explain report (paper Figure 6).
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(12)
        .ret(RetKind::Int);
    let (res, rec) = Rewriter::new(&img).rewrite_with_trace(poly, &req).unwrap();
    let chrome = rec.to_chrome_json();
    validate_json(&chrome).expect("chrome trace must be valid JSON");
    println!(
        "\ntraced rewrite: {} span events, chrome trace {} bytes (validated)\n",
        rec.events().len(),
        chrome.len()
    );
    println!("{}", explain_report(&img, poly, &res, &rec));

    // The flight recorder journaled every decision above — dump the tail
    // of the timeline (the format `brew-inspect` renders and
    // cross-references).
    let dump = mgr.flight().dump();
    assert_eq!(dump.torn, 0, "at-rest dump must be tear-free");
    println!(
        "flight recorder: {} events journaled ({} dropped); last 8:",
        dump.recorded, dump.dropped
    );
    let text = dump.render_text();
    let lines: Vec<&str> = text.lines().skip(1).collect();
    for line in &lines[lines.len().saturating_sub(8)..] {
        println!("  {line}");
    }

    // Every resident variant has a live symbol an external profiler can
    // resolve: the perf-map render (plus the dispatch stub).
    let symbols = mgr.symbols();
    let map = symbols.render_perf_map();
    println!(
        "\nperf map (write to {} for `perf report`):",
        SymbolTable::perf_map_path().display()
    );
    for line in map.lines() {
        println!("  {line}");
    }
    assert_eq!(
        symbols.live_count(SymbolKind::Variant),
        mgr.len(),
        "one live symbol per resident variant"
    );

    // One timeline: the rewrite's span tree merged with the flight
    // events around it, strict-validated like every export.
    let merged = merged_chrome_json(&rec, &dump);
    validate_json(&merged).expect("merged export must be valid JSON");
    println!(
        "\nmerged span+flight chrome trace: {} bytes (open in Perfetto)",
        merged.len()
    );
}
