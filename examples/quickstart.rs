//! Quickstart — the paper's Figure 2/3 experience.
//!
//! Compile a function, call it, rewrite it with a parameter declared
//! `BREW_KNOWN`, and call the specialized drop-in replacement.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use brew_suite::prelude::*;

fn main() {
    // A process image stands in for the live process: code, data, heap,
    // stack, and a JIT region for rewritten functions.
    let img = Image::new();

    // `func` from Figure 2, compiled by the mini-C substrate the way a
    // static compiler would have produced it.
    let prog = compile_into(
        r#"
        int func(int a, int b) {
            int acc = 0;
            for (int i = 0; i < b; i++) acc += a * i;
            return acc;
        }
        "#,
        &img,
    )
    .expect("compiles");
    let func = prog.func("func").unwrap();

    // Call the original: int x = func(3, 10);
    let mut machine = Machine::new();
    let x = machine
        .call(&img, func, &CallArgs::new().int(3).int(10))
        .unwrap();
    println!(
        "func(3, 10)            = {:4}   [{} insts, {} cycles]",
        x.ret_int as i64, x.stats.insts, x.stats.cycles
    );

    // Figure 3: declare parameter 2 known and rewrite. In the paper's C
    // spelling this is
    //   brew_initConf(rConf);
    //   brew_setpar(rConf, 2, BREW_KNOWN);
    //   newfunc = (func_t) brew_rewrite(rConf, func, 42, 10);
    // (still available verbatim in `brew_core::compat`); the request
    // builder binds each parameter's treatment and trace value in one step.
    let req = SpecRequest::new()
        .unknown_int() // a: varies at runtime
        .known_int(10) // b: baked in
        .ret(RetKind::Int);
    let newfunc = Rewriter::new(&img)
        .rewrite(func, &req)
        .expect("rewrite succeeds");

    // The new function is a drop-in replacement: same signature. The loop
    // bound 10 is baked in — the loop is fully unrolled and folded.
    let x2 = machine
        .call(&img, newfunc.entry, &CallArgs::new().int(3).int(10))
        .unwrap();
    println!(
        "newfunc(3, 10)         = {:4}   [{} insts, {} cycles]",
        x2.ret_int as i64, x2.stats.insts, x2.stats.cycles
    );
    assert_eq!(x.ret_int, x2.ret_int);

    println!(
        "\nrewrite: {} guest insts traced, {} emitted, {} evaluated away, {} bytes generated",
        newfunc.stats.traced, newfunc.stats.emitted, newfunc.stats.elided, newfunc.code_len
    );
    println!("\nspecialized code:");
    for line in disasm_result(&img, &newfunc) {
        println!("  {line}");
    }
}
